#![deny(missing_docs)]

//! `hrdm` — the hierarchical relational data model, assembled.
//!
//! A faithful, production-quality reproduction of H. V. Jagadish,
//! *Incorporating Hierarchy in a Relational Model of Data* (SIGMOD
//! 1989). This facade re-exports the workspace crates:
//!
//! * [`hierarchy`] — class-DAG substrate (node elimination, products,
//!   preference edges, preemption variants),
//! * [`core`] — the hierarchical relational model itself (truth-valued
//!   tuples, inheritance with exceptions, consolidate/explicate, the
//!   standard operators),
//! * [`storage`] — the from-scratch flat baseline engine (footnote 1's
//!   "traditional approach"),
//! * [`datalog`] — semi-naive Datalog with stratified negation over
//!   hierarchical EDBs (§2.1's "more powerful inference mechanism"),
//! * [`hql`] — a textual interface (DDL, assertions, queries, the
//!   consolidate/explicate operators) over the model, including the
//!   concurrent [`Engine`](hql::Engine) (snapshot reads, serialized
//!   writes) that `hrdm-server` serves over TCP,
//! * [`persist`] — a binary snapshot format plus write-ahead journal
//!   for whole catalogs,
//! * [`obs`] — spans, metrics, and query traces across all layers.
//!
//! Failures from any layer fold into one [`Error`] with stable
//! [`Error::kind`] codes (the same codes the `hrdm-server` wire
//! protocol sends in `ERR` replies).
//!
//! See `examples/` for runnable walkthroughs of the paper's scenarios
//! and `crates/bench` for the full experiment harness (every figure and
//! quantitative claim).
//!
//! ```
//! use hrdm::prelude::*;
//! use std::sync::Arc;
//!
//! let mut g = hrdm::hierarchy::HierarchyGraph::new("Animal");
//! let bird = g.add_class("Bird", g.root()).unwrap();
//! g.add_instance("Tweety", bird).unwrap();
//!
//! let schema = Arc::new(Schema::single("Creature", Arc::new(g)));
//! let mut flies = HRelation::new(schema);
//! flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
//! assert!(flies.holds(&flies.item(&["Tweety"]).unwrap()));
//! ```

pub use hrdm_core as core;
pub use hrdm_datalog as datalog;
pub use hrdm_hierarchy as hierarchy;
pub use hrdm_hql as hql;
pub use hrdm_obs as obs;
pub use hrdm_persist as persist;
pub use hrdm_storage as storage;

mod error;

pub use error::{Error, Result};

/// One-stop imports: the model types, the HQL engine/session layer,
/// the location-transparent execution surface, persistence handles,
/// and the unified error.
///
/// Programs that execute HQL should depend on
/// [`ExecutorHandle`](hrdm_hql::ExecutorHandle) rather than a concrete
/// backend: the embedded [`Engine`](hrdm_hql::Engine), the sharded
/// coordinator ([`ShardedEngine`](hrdm_hql::ShardedEngine)), a
/// WAL-fed read [`Replica`](hrdm_hql::Replica), and `hrdm-server`'s
/// wire `Client` all implement it with byte-identical rendered
/// responses, so the choice of deployment (embedded, sharded, remote,
/// replicated) is a wiring decision, not an API one.
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use hrdm_core::prelude::*;
    pub use hrdm_hql::{
        default_shard, render, Engine, ExecError, ExecResult, ExecutorHandle, HqlError, ReadView,
        Replica, Response, Session, ShardedEngine, Statement, StatementKind, World,
    };
    pub use hrdm_persist::{Image, Journal, PersistError, ShipEvent, WalTailer};
}
