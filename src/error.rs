//! The unified error surface of the `hrdm` facade.
//!
//! Every workspace crate keeps its own structured error type; this
//! module folds them into one [`Error`] enum with **lossless** `From`
//! conversions (the original error rides along, `source()` chains to
//! it) and a single stable [`Error::kind`] code. The kind codes are the
//! vocabulary of the `hrdm-server` wire protocol's `ERR <kind>`
//! replies, so their meanings must never change.

use std::fmt;

/// Result alias over the unified [`Error`].
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Any error the `hrdm` stack can produce, one level per layer.
#[derive(Debug)]
pub enum Error {
    /// From the class-DAG substrate ([`hrdm_hierarchy`]).
    Hierarchy(hrdm_hierarchy::HierarchyError),
    /// From the hierarchical relational model ([`hrdm_core`]).
    Core(hrdm_core::CoreError),
    /// From the HQL language layer ([`hrdm_hql`]).
    Hql(hrdm_hql::HqlError),
    /// From the persistence layer ([`hrdm_persist`]).
    Persist(hrdm_persist::PersistError),
}

impl Error {
    /// Stable machine-readable error-kind code.
    ///
    /// Structured layers forward their own codes
    /// ([`CoreError::kind`](hrdm_core::CoreError::kind),
    /// [`HqlError::kind`](hrdm_hql::HqlError::kind),
    /// [`PersistError::kind`](hrdm_persist::PersistError::kind));
    /// hierarchy errors all classify as `"hierarchy"`. The
    /// `hrdm-server` wire protocol sends these verbatim in `ERR`
    /// replies.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Hierarchy(_) => "hierarchy",
            Error::Core(e) => e.kind(),
            Error::Hql(e) => e.kind(),
            Error::Persist(e) => e.kind(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Hierarchy(e) => write!(f, "{e}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Hql(e) => write!(f, "{e}"),
            Error::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Hierarchy(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Hql(e) => Some(e),
            Error::Persist(e) => Some(e),
        }
    }
}

impl From<hrdm_hierarchy::HierarchyError> for Error {
    fn from(e: hrdm_hierarchy::HierarchyError) -> Error {
        Error::Hierarchy(e)
    }
}

impl From<hrdm_core::CoreError> for Error {
    fn from(e: hrdm_core::CoreError) -> Error {
        Error::Core(e)
    }
}

impl From<hrdm_hql::HqlError> for Error {
    fn from(e: hrdm_hql::HqlError) -> Error {
        Error::Hql(e)
    }
}

impl From<hrdm_persist::PersistError> for Error {
    fn from(e: hrdm_persist::PersistError) -> Error {
        Error::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_lossless_and_chain_sources() {
        let e: Error = hrdm_core::CoreError::SchemaMismatch.into();
        assert!(matches!(
            e,
            Error::Core(hrdm_core::CoreError::SchemaMismatch)
        ));
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = hrdm_hierarchy::HierarchyError::NoParent.into();
        assert_eq!(e.kind(), "hierarchy");
        let e: Error = hrdm_persist::PersistError::BadMagic.into();
        assert_eq!(e.kind(), "bad-magic");
        let e: Error = hrdm_hql::HqlError::Execution("boom".into()).into();
        assert_eq!(e.kind(), "execution");
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn kinds_delegate_to_each_layer() {
        // One representative per layer: the facade must forward the
        // layer's own stable code, not invent its own.
        let core: Error = hrdm_core::CoreError::NoJoinAttributes.into();
        assert_eq!(core.kind(), "join");
        let hql: Error = hrdm_hql::HqlError::Parse {
            found: "X".into(),
            expected: "Y".into(),
        }
        .into();
        assert_eq!(hql.kind(), "parse");
        // A persist error that travelled through HQL keeps its code.
        let nested: Error = hrdm_hql::HqlError::from(hrdm_persist::PersistError::BadMagic).into();
        assert_eq!(nested.kind(), "bad-magic");
    }
}
