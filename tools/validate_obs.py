#!/usr/bin/env python3
"""Validate the observability export artifacts in CI.

Usage:
    validate_obs.py --chrome-trace trace.json --obs-json BENCH_obs.json \
        [--schema tests/golden/bench_obs.schema.json]

Checks that the Chrome trace the figures binary emitted is well-formed
chrome://tracing JSON (complete "X" events with the required keys) and
that BENCH_obs.json conforms to the checked-in schema. The schema
checker implements the small JSON-Schema subset the schema file uses
(type, required, properties, additionalProperties, enum, const,
minimum, oneOf, items, minItems) so CI needs no third-party packages.
"""

import argparse
import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is a subclass of int in Python; a schema "integer" must not
    # accept true/false.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def check(value, schema, path):
    """Return a list of error strings for `value` against `schema`."""
    errors = []
    if "oneOf" in schema:
        branches = [check(value, s, path) for s in schema["oneOf"]]
        if not any(not b for b in branches):
            flat = "; ".join(e for b in branches for e in b)
            errors.append(f"{path}: matched no oneOf branch ({flat})")
        return errors
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    t = schema.get("type")
    if t is not None and not TYPE_CHECKS[t](value):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return errors
    if "minimum" in schema and TYPE_CHECKS["number"](value) and value < schema["minimum"]:
        errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if t == "object":
        props = schema.get("properties", {})
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                errors.extend(check(sub, props[key], f"{path}.{key}"))
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                errors.extend(check(sub, extra, f"{path}.{key}"))
    if t == "array":
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                f"{path}: {len(value)} items below minItems {schema['minItems']}"
            )
        if "items" in schema:
            for i, item in enumerate(value):
                errors.extend(check(item, schema["items"], f"{path}[{i}]"))
    return errors


def validate_obs_json(path, schema_path):
    with open(schema_path) as f:
        schema = json.load(f)
    with open(path) as f:
        doc = json.load(f)
    errors = check(doc, schema, "$")
    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        return False
    n = len(doc["metrics"])
    if n == 0:
        print(f"{path}: metrics registry is empty", file=sys.stderr)
        return False
    print(f"{path}: ok ({n} metrics, label {doc['label']!r})")
    return True


def validate_chrome_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"{path}: traceEvents missing or empty", file=sys.stderr)
        return False
    for i, e in enumerate(events):
        for key, kind in [
            ("name", str),
            ("ph", str),
            ("ts", (int, float)),
            ("dur", (int, float)),
            ("pid", int),
            ("tid", int),
        ]:
            if not isinstance(e.get(key), kind):
                print(f"{path}: event {i} has bad {key!r}: {e.get(key)!r}", file=sys.stderr)
                return False
        if e["ph"] != "X":
            print(f"{path}: event {i} is not a complete event: {e['ph']!r}", file=sys.stderr)
            return False
    print(f"{path}: ok ({len(events)} complete events)")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--chrome-trace", help="chrome://tracing JSON to validate")
    ap.add_argument("--obs-json", help="BENCH_obs.json to validate")
    ap.add_argument(
        "--schema",
        default="tests/golden/bench_obs.schema.json",
        help="schema for --obs-json (default: %(default)s)",
    )
    args = ap.parse_args()
    if not args.chrome_trace and not args.obs_json:
        ap.error("nothing to validate: pass --chrome-trace and/or --obs-json")
    ok = True
    if args.chrome_trace:
        ok = validate_chrome_trace(args.chrome_trace) and ok
    if args.obs_json:
        ok = validate_obs_json(args.obs_json, args.schema) and ok
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
