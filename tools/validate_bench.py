#!/usr/bin/env python3
"""Validate and gate benchmark artifacts in CI.

Usage:
    validate_bench.py BENCH_columnar.json [--schema path/to.schema.json]
    validate_bench.py BENCH_ivm.json

Two layers of checking, dispatched on the artifact's "label" field:

1. Schema: the artifact conforms to the checked-in JSON schema for its
   label (tests/golden/bench_<label>.schema.json by default — the same
   no-dependency JSON-Schema subset as validate_obs.py: type, required,
   properties, additionalProperties, enum, const, minimum, oneOf).
2. Gates, per label:

   * columnar — the batch-at-a-time executor must not be slower than
     the tuple-at-a-time executor on any figure (batch_ns <= tuple_ns
     for B2-B4), and the measured cost model must have chosen at least
     one index-backed access path.
   * ivm — a maintained view's one-row update must beat re-deriving the
     view from scratch on the large-catalog fixture, and growing the
     catalog must inflate the incremental cost strictly less than it
     inflates full recomputation (per-update cost tracks the delta, not
     the catalog). The published delta must stay small (row-level, not
     a wholesale reset).
   * server — the serving-tier load harness completed every request in
     every phase with zero errors, percentiles are ordered and nonzero
     (p50 <= p95 <= p99), throughput is positive, the server-side
     counters moved (queries served, bytes in both directions, epochs
     published by the write phase), request pipelining pays (the
     deepest sweep point at depth >= 8 must beat the depth-1 point on
     throughput), and sharding pays: the 4-shard closed-loop phase
     must beat the 1-shard baseline on read throughput.

A regression in either layer fails CI here rather than silently
shipping a slower engine.
"""

import argparse
import json
import sys

from validate_obs import check

COLUMNAR_FIGURES = ("B2", "B3", "B4")

# The incremental figure is a committed engine write: one asserted row
# plus the view's maintained row. Anything larger means maintenance
# stopped being row-level.
IVM_MAX_DELTA_ROWS = 8


def gate_columnar(path, doc):
    ok = True
    for name in COLUMNAR_FIGURES:
        fig = doc["figures"][name]
        tuple_ns, batch_ns = fig["tuple_ns"], fig["batch_ns"]
        if batch_ns > tuple_ns:
            print(
                f"{path}: {name}: batch executor is slower than tuple "
                f"({batch_ns} ns > {tuple_ns} ns)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"{path}: {name}: ok ({tuple_ns / batch_ns:.2f}x, {fig['access_path']})")
    if doc["cost_model"]["index_choices"] < 1:
        print(f"{path}: cost model never chose an index access path", file=sys.stderr)
        ok = False
    if not doc["cost_model"]["measured"]:
        print(f"{path}: cost model was not measured from the obs registry", file=sys.stderr)
        ok = False
    return ok


def gate_ivm(path, doc):
    ok = True
    large = doc["figures"]["large"]
    if large["incremental_ns"] >= large["full_ns"]:
        print(
            f"{path}: large: incremental maintenance does not beat full "
            f"recomputation ({large['incremental_ns']} ns >= "
            f"{large['full_ns']} ns)",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"{path}: large: ok (incremental {large['incremental_ns']} ns, "
            f"{large['full_ns'] / large['incremental_ns']:.2f}x faster than full)"
        )
    scaling = doc["scaling"]
    if scaling["incremental_ratio"] >= scaling["full_ratio"]:
        print(
            f"{path}: catalog growth inflates incremental cost as much as "
            f"full recomputation ({scaling['incremental_ratio']:.2f}x >= "
            f"{scaling['full_ratio']:.2f}x) — update cost is tracking the "
            f"catalog, not the delta",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"{path}: scaling: ok (catalog {scaling['catalog_ratio']:.1f}x -> "
            f"incremental {scaling['incremental_ratio']:.2f}x, "
            f"full {scaling['full_ratio']:.2f}x)"
        )
    for name in ("small", "large"):
        delta_rows = doc["figures"][name]["delta_rows"]
        if delta_rows > IVM_MAX_DELTA_ROWS:
            print(
                f"{path}: {name}: published delta has {delta_rows} rows "
                f"(> {IVM_MAX_DELTA_ROWS}) — the one-row write is not being "
                f"maintained row-level",
                file=sys.stderr,
            )
            ok = False
    return ok


SERVER_PHASES = ("writes", "closed", "rate", "sharded_1", "sharded_4")

# Phases that ran against the telemetered main server (the sharded
# phases run against their own per-shard servers, whose counters are
# not in the trailer).
MAIN_SERVER_PHASES = ("writes", "closed", "rate")


def gate_server(path, doc):
    ok = True
    for name in SERVER_PHASES:
        phase = doc["phases"][name]
        if phase["requests"] < 1:
            print(f"{path}: {name}: zero completed requests", file=sys.stderr)
            ok = False
            continue
        if phase["errors"]:
            print(f"{path}: {name}: {phase['errors']} request errors", file=sys.stderr)
            ok = False
        p50, p95, p99 = phase["p50_ns"], phase["p95_ns"], phase["p99_ns"]
        if not (0 < p50 <= p95 <= p99):
            print(
                f"{path}: {name}: percentiles are missing or unordered "
                f"(p50={p50} p95={p95} p99={p99})",
                file=sys.stderr,
            )
            ok = False
        if phase["throughput_rps"] <= 0:
            print(f"{path}: {name}: nonpositive throughput", file=sys.stderr)
            ok = False
        if ok:
            print(
                f"{path}: {name}: ok ({phase['requests']} requests, "
                f"{phase['throughput_rps']:.0f} rps, p50 {p50} ns, p99 {p99} ns)"
            )
    pipeline = doc["pipeline"]
    for point in pipeline:
        name = f"pipeline@{point['depth']}"
        if point["errors"]:
            print(f"{path}: {name}: {point['errors']} request errors", file=sys.stderr)
            ok = False
        p50, p95, p99 = point["p50_ns"], point["p95_ns"], point["p99_ns"]
        if not (0 < p50 <= p95 <= p99):
            print(
                f"{path}: {name}: percentiles are missing or unordered "
                f"(p50={p50} p95={p95} p99={p99})",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"{path}: {name}: ok ({point['requests']} requests, "
                f"{point['throughput_rps']:.0f} rps, burst p50 {p50} ns)"
            )
    shallow = next((p for p in pipeline if p["depth"] == 1), None)
    # The sweep's best deep point must beat depth 1: pipelining has to
    # pay somewhere at depth >= 8 (the deepest point may legitimately
    # oversaturate per-connection serial execution).
    deep = max(
        (p for p in pipeline if p["depth"] >= 8),
        key=lambda p: p["throughput_rps"],
        default=None,
    )
    if shallow is None or deep is None:
        print(
            f"{path}: pipeline sweep must include depth 1 and a depth >= 8 "
            f"(got {[p['depth'] for p in pipeline]})",
            file=sys.stderr,
        )
        ok = False
    elif deep["throughput_rps"] <= shallow["throughput_rps"]:
        print(
            f"{path}: pipelining does not pay: depth {deep['depth']} reached "
            f"{deep['throughput_rps']:.0f} rps <= depth 1 at "
            f"{shallow['throughput_rps']:.0f} rps",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"{path}: pipeline: ok (depth {deep['depth']} at "
            f"{deep['throughput_rps']:.0f} rps, "
            f"{deep['throughput_rps'] / shallow['throughput_rps']:.2f}x depth 1)"
        )
    one, four = doc["phases"]["sharded_1"], doc["phases"]["sharded_4"]
    if four["throughput_rps"] <= one["throughput_rps"]:
        print(
            f"{path}: sharding does not pay: 4 shards reached "
            f"{four['throughput_rps']:.0f} rps <= 1 shard at "
            f"{one['throughput_rps']:.0f} rps",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"{path}: sharded: ok (4 shards at {four['throughput_rps']:.0f} rps, "
            f"{four['throughput_rps'] / one['throughput_rps']:.2f}x 1 shard)"
        )
    server = doc["server"]
    total = sum(doc["phases"][n]["requests"] for n in MAIN_SERVER_PHASES) + sum(
        p["requests"] for p in pipeline
    )
    if server["queries"] < total:
        print(
            f"{path}: server counted {server['queries']} queries but the "
            f"harness completed {total}",
            file=sys.stderr,
        )
        ok = False
    if server["bytes_in"] < 1 or server["bytes_out"] < 1:
        print(f"{path}: no bytes accounted on the wire", file=sys.stderr)
        ok = False
    if server["epoch"] < 1:
        print(f"{path}: the write phase published no epochs", file=sys.stderr)
        ok = False
    return ok


GATES = {"columnar": gate_columnar, "ivm": gate_ivm, "server": gate_server}


def validate(path, schema_path):
    with open(path) as f:
        doc = json.load(f)
    label = doc.get("label")
    if label not in GATES:
        print(f"{path}: unknown artifact label {label!r}", file=sys.stderr)
        return False
    if schema_path is None:
        schema_path = f"tests/golden/bench_{label}.schema.json"
    with open(schema_path) as f:
        schema = json.load(f)
    errors = check(doc, schema, "$")
    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        return False
    return GATES[label](path, doc)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("artifact", help="benchmark artifact to validate")
    ap.add_argument(
        "--schema",
        default=None,
        help="schema for the artifact (default: tests/golden/bench_<label>.schema.json)",
    )
    args = ap.parse_args()
    sys.exit(0 if validate(args.artifact, args.schema) else 1)


if __name__ == "__main__":
    main()
