#!/usr/bin/env python3
"""Validate and gate the columnar benchmark artifact in CI.

Usage:
    validate_bench.py BENCH_columnar.json \
        [--schema tests/golden/bench_columnar.schema.json]

Two layers of checking:

1. Schema: the artifact conforms to the checked-in JSON schema (the
   same no-dependency JSON-Schema subset as validate_obs.py — type,
   required, properties, additionalProperties, enum, const, minimum,
   oneOf).
2. Gate: the batch-at-a-time executor must not be slower than the
   tuple-at-a-time executor on any figure (batch_ns <= tuple_ns for
   B2-B4), and the measured cost model must have chosen at least one
   index-backed access path. A regression in the columnar layer fails
   CI here rather than silently shipping a slower engine.
"""

import argparse
import json
import sys

from validate_obs import check

FIGURES = ("B2", "B3", "B4")


def validate(path, schema_path):
    with open(schema_path) as f:
        schema = json.load(f)
    with open(path) as f:
        doc = json.load(f)
    errors = check(doc, schema, "$")
    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        return False

    ok = True
    for name in FIGURES:
        fig = doc["figures"][name]
        tuple_ns, batch_ns = fig["tuple_ns"], fig["batch_ns"]
        if batch_ns > tuple_ns:
            print(
                f"{path}: {name}: batch executor is slower than tuple "
                f"({batch_ns} ns > {tuple_ns} ns)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"{path}: {name}: ok ({tuple_ns / batch_ns:.2f}x, {fig['access_path']})")
    if doc["cost_model"]["index_choices"] < 1:
        print(f"{path}: cost model never chose an index access path", file=sys.stderr)
        ok = False
    if not doc["cost_model"]["measured"]:
        print(f"{path}: cost model was not measured from the obs registry", file=sys.stderr)
        ok = False
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("artifact", help="BENCH_columnar.json to validate")
    ap.add_argument(
        "--schema",
        default="tests/golden/bench_columnar.schema.json",
        help="schema for the artifact (default: %(default)s)",
    )
    args = ap.parse_args()
    sys.exit(0 if validate(args.artifact, args.schema) else 1)


if __name__ == "__main__":
    main()
