//! The whole paper as one HQL script: every figure scenario driven
//! through the textual interface, end to end.

use hrdm::hql::{Response, Session};

fn truth(responses: Vec<Response>) -> Option<bool> {
    match responses.into_iter().next().expect("one response") {
        Response::Truth { value, .. } => value,
        other => panic!("expected a truth, got {other:?}"),
    }
}

#[test]
fn figures_1_and_10_through_hql() {
    let mut s = Session::new();
    s.execute(
        r#"
        -- Fig. 1a
        CREATE DOMAIN Animal;
        CREATE CLASS Bird UNDER Animal;
        CREATE CLASS Canary UNDER Bird;
        CREATE CLASS Penguin UNDER Bird;
        CREATE CLASS "Galapagos Penguin" UNDER Penguin;
        CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
        CREATE INSTANCE Tweety OF Canary;
        CREATE INSTANCE Paul OF "Galapagos Penguin";
        CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
        CREATE INSTANCE Pamela OF "Amazing Flying Penguin";
        CREATE INSTANCE Peter OF "Amazing Flying Penguin";

        -- Fig. 1b
        CREATE RELATION Flies (Creature: Animal);
        ASSERT Flies (ALL Bird);
        ASSERT NOT Flies (ALL Penguin);
        ASSERT Flies (ALL "Amazing Flying Penguin");
        ASSERT Flies (Peter);
        "#,
    )
    .expect("DDL and assertions");

    for (name, flies) in [
        ("Tweety", true),
        ("Paul", false),
        ("Patricia", true),
        ("Pamela", true),
        ("Peter", true),
    ] {
        assert_eq!(
            truth(s.execute(&format!("HOLDS Flies ({name});")).unwrap()),
            Some(flies),
            "{name}"
        );
    }

    // Fig. 10: Jack and Jill.
    s.execute(
        r#"
        CREATE RELATION JackLoves (Creature: Animal);
        ASSERT JackLoves (ALL Bird);
        ASSERT NOT JackLoves (ALL Penguin);
        ASSERT JackLoves (Peter);
        CREATE RELATION JillLoves (Creature: Animal);
        ASSERT JillLoves (ALL Penguin);
        LET BetweenThem = UNION JackLoves JillLoves;
        LET Both = INTERSECT JackLoves JillLoves;
        LET OnlyJack = DIFFERENCE JackLoves JillLoves;
        LET OnlyJill = DIFFERENCE JillLoves JackLoves;
        "#,
    )
    .expect("Fig. 10 pipeline");
    assert_eq!(truth(s.execute("HOLDS Both (Peter);").unwrap()), Some(true));
    assert_eq!(truth(s.execute("HOLDS Both (Paul);").unwrap()), Some(false));
    assert_eq!(
        truth(s.execute("HOLDS OnlyJack (Tweety);").unwrap()),
        Some(true)
    );
    assert_eq!(
        truth(s.execute("HOLDS OnlyJill (Pamela);").unwrap()),
        Some(true)
    );
    assert_eq!(
        truth(s.execute("HOLDS BetweenThem (Paul);").unwrap()),
        Some(true)
    );
    let count = s.execute("COUNT BetweenThem;").unwrap().remove(0);
    assert!(count.to_string().contains("5 atom(s)"), "{count}");
}

#[test]
fn figures_2_through_9_through_hql() {
    let mut s = Session::new();
    // Figs. 2–3.
    s.execute(
        r#"
        CREATE DOMAIN Student;
        CREATE CLASS "Obsequious Student" UNDER Student;
        CREATE INSTANCE John OF "Obsequious Student";
        CREATE INSTANCE Mary OF Student;
        CREATE DOMAIN Teacher;
        CREATE CLASS "Incoherent Teacher" UNDER Teacher;
        CREATE INSTANCE Smith OF "Incoherent Teacher";
        CREATE INSTANCE Jones OF Teacher;
        CREATE RELATION Respects (Student: Student, Teacher: Teacher);
        ASSERT Respects (ALL "Obsequious Student", ALL Teacher);
        ASSERT NOT Respects (ALL Student, ALL "Incoherent Teacher");
        "#,
    )
    .expect("Fig. 3 setup");

    // The Fig. 3 conflict is visible...
    match s.execute("CHECK Respects;").unwrap().remove(0) {
        Response::Conflicts(items) => assert!(!items.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
    // ...and resolved the paper's way.
    s.execute(r#"ASSERT Respects (ALL "Obsequious Student", ALL "Incoherent Teacher");"#)
        .unwrap();
    match s.execute("CHECK Respects;").unwrap().remove(0) {
        Response::Conflicts(items) => assert!(items.is_empty()),
        other => panic!("unexpected {other:?}"),
    }

    // Figs. 7–8 selections.
    s.execute(r#"LET WhoObsequious = SELECT Respects WHERE Student IS ALL "Obsequious Student";"#)
        .unwrap();
    assert_eq!(
        truth(s.execute("HOLDS WhoObsequious (John, Smith);").unwrap()),
        Some(true)
    );
    s.execute("LET JohnView = SELECT Respects WHERE Student IS John;")
        .unwrap();
    assert_eq!(
        truth(s.execute("HOLDS JohnView (John, Jones);").unwrap()),
        Some(true)
    );
    assert_eq!(
        truth(s.execute("HOLDS JohnView (Mary, Jones);").unwrap()),
        Some(false)
    );

    // Fig. 6: consolidation to the unique minimum.
    let msg = s.execute("CONSOLIDATE Respects;").unwrap().remove(0);
    assert!(msg.to_string().contains("removed 2"), "{msg}");
    assert_eq!(
        truth(s.execute("HOLDS Respects (John, Smith);").unwrap()),
        Some(true),
        "extension preserved"
    );

    // Fig. 9: justification via WHY.
    let why = s.execute("WHY Respects (John, Smith);").unwrap().remove(0);
    let text = why.to_string();
    assert!(text.contains("Obsequious Student"), "{text}");
}

#[test]
fn fig11_join_and_projection_through_hql() {
    let mut s = Session::new();
    s.execute(
        r#"
        CREATE DOMAIN Animal;
        CREATE CLASS Elephant UNDER Animal;
        CREATE CLASS "Royal Elephant" UNDER Elephant;
        CREATE CLASS "Indian Elephant" UNDER Elephant;
        CREATE INSTANCE Appu OF "Royal Elephant", "Indian Elephant";
        CREATE INSTANCE Clyde OF "Royal Elephant";
        CREATE DOMAIN Color;
        CREATE INSTANCE Grey OF Color;
        CREATE INSTANCE White OF Color;
        CREATE INSTANCE Dappled OF Color;
        CREATE DOMAIN Size;
        CREATE INSTANCE 3000 OF Size;
        CREATE INSTANCE 2000 OF Size;

        CREATE RELATION Colors (Animal: Animal, Color: Color);
        ASSERT Colors (ALL Elephant, Grey);
        ASSERT NOT Colors (ALL "Royal Elephant", Grey);
        ASSERT Colors (ALL "Royal Elephant", White);
        ASSERT NOT Colors (Clyde, White);
        ASSERT Colors (Clyde, Dappled);

        CREATE RELATION Enclosures (Animal: Animal, Size: Size);
        ASSERT Enclosures (ALL Elephant, 3000);
        ASSERT NOT Enclosures (ALL "Indian Elephant", 3000);
        ASSERT Enclosures (ALL "Indian Elephant", 2000);

        LET Profile = JOIN Enclosures Colors;
        LET Back = PROJECT Profile (Animal, Color);
        "#,
    )
    .expect("Fig. 11 pipeline");

    assert_eq!(
        truth(s.execute("HOLDS Profile (Appu, 2000, White);").unwrap()),
        Some(true)
    );
    assert_eq!(
        truth(s.execute("HOLDS Profile (Appu, 3000, White);").unwrap()),
        Some(false)
    );
    assert_eq!(
        truth(s.execute("HOLDS Profile (Clyde, 3000, Dappled);").unwrap()),
        Some(true)
    );
    // "No loss of information": projection back agrees with Colors.
    for (animal, color, expect) in [
        ("Clyde", "Dappled", true),
        ("Clyde", "Grey", false),
        ("Appu", "White", true),
        ("Appu", "Grey", false),
    ] {
        assert_eq!(
            truth(
                s.execute(&format!("HOLDS Back ({animal}, {color});"))
                    .unwrap()
            ),
            Some(expect),
            "{animal} {color}"
        );
    }
}
