//! Golden snapshot of crash-recovery reports: checkpoint LSN, records
//! replayed, torn-tail accounting, and the recovered catalog, byte for
//! byte. The fixture is a fixed mutation script, so every field —
//! including the truncated byte count, which pins the WAL frame
//! encoding — is deterministic. Re-bless deliberate format changes
//! with `UPDATE_GOLDEN=1 cargo test recovery_report`.

use std::path::{Path, PathBuf};

use hrdm_core::mutation::CatalogMutation;
use hrdm_core::prelude::*;
use hrdm_persist::{recover, DurableCatalog};

/// A fixed Fig. 1-flavoured mutation history exercising every record
/// kind that appears in the report.
fn fixture() -> Vec<CatalogMutation> {
    use CatalogMutation::*;
    vec![
        CreateDomain {
            name: "Animal".into(),
        },
        AddClass {
            domain: "Animal".into(),
            name: "Bird".into(),
            parents: vec!["Animal".into()],
        },
        AddClass {
            domain: "Animal".into(),
            name: "Penguin".into(),
            parents: vec!["Bird".into()],
        },
        AddInstance {
            domain: "Animal".into(),
            name: "Tweety".into(),
            parents: vec!["Bird".into()],
        },
        AddInstance {
            domain: "Animal".into(),
            name: "Paul".into(),
            parents: vec!["Penguin".into()],
        },
        CreateRelation {
            name: "Flies".into(),
            attributes: vec![("Creature".into(), "Animal".into())],
        },
        Assert {
            relation: "Flies".into(),
            values: vec!["Bird".into()],
            truth: Truth::Positive,
        },
        Assert {
            relation: "Flies".into(),
            values: vec!["Penguin".into()],
            truth: Truth::Negative,
        },
        SetPreemption {
            relation: "Flies".into(),
            mode: Preemption::OffPath,
        },
        Retract {
            relation: "Flies".into(),
            values: vec!["Penguin".into()],
        },
        Assert {
            relation: "Flies".into(),
            values: vec!["Penguin".into()],
            truth: Truth::Negative,
        },
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hrdm_golden_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a store holding the fixture: checkpoint after the first six
/// mutations, the remaining five in the WAL tail.
fn build_store(dir: &Path) {
    let mut dc = DurableCatalog::open_with_group(dir, 4).unwrap();
    let script = fixture();
    for m in &script[..6] {
        dc.mutate(m.clone()).unwrap();
    }
    dc.checkpoint().unwrap();
    for m in &script[6..] {
        dc.mutate(m.clone()).unwrap();
    }
    dc.sync().unwrap();
}

fn report() -> String {
    let mut out = String::new();

    // A clean store: image at lsn 6, five WAL records on top.
    let dir = temp_dir("clean");
    build_store(&dir);
    let clean = recover(&dir).unwrap();
    out.push_str("== clean recovery ==\n");
    out.push_str(&clean.report.render_stable());

    out.push_str("\n== recovered catalog ==\n");
    out.push_str(&clean.catalog.render_stable());
    std::fs::remove_dir_all(&dir).ok();

    // The same store with a torn WAL tail: the last 7 bytes never made
    // it to disk, so the final record is discarded and its surviving
    // prefix counted as truncated.
    let dir = temp_dir("torn");
    build_store(&dir);
    let wal = hrdm_persist::store::wal_path(&dir, 6);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&wal, &bytes).unwrap();
    let torn = recover(&dir).unwrap();
    out.push_str("\n== torn tail ==\n");
    out.push_str(&torn.report.render_stable());
    std::fs::remove_dir_all(&dir).ok();

    // A forged, unreadable newest checkpoint: recovery must skip it and
    // fall back to the previous generation. (The WAL bound to the bad
    // checkpoint does not exist, so the good generation's log replays.)
    let dir = temp_dir("skip");
    build_store(&dir);
    std::fs::write(
        hrdm_persist::store::checkpoint_path(&dir, 999),
        b"HRDMCKP1 not really",
    )
    .unwrap();
    let skip = recover(&dir).unwrap();
    out.push_str("\n== corrupt checkpoint skipped ==\n");
    out.push_str(&skip.report.render_stable());
    std::fs::remove_dir_all(&dir).ok();

    out
}

/// Golden snapshot of the recovery reports over three deterministic
/// scenarios (clean, torn tail, corrupt checkpoint). Re-bless with
/// `UPDATE_GOLDEN=1 cargo test recovery_report`.
#[test]
fn recovery_report_matches_golden() {
    let actual = report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/recovery.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, expected,
        "recovery report drifted from tests/golden/recovery.txt; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}
