//! Cross-crate integration: the hierarchical core, the flat storage
//! baseline, and the Datalog layer must agree on the same world.

use std::sync::Arc;

use hrdm::core::flat::flatten;
use hrdm::datalog::{Engine, Program};
use hrdm::prelude::*;
use hrdm::storage::membership::MembershipTable;
use hrdm::storage::Table;
use hrdm_bench::workloads::{class_workload, explicated_table, footnote1_baseline};

#[test]
fn hierarchical_and_flat_engines_agree_on_every_instance() {
    for (members, exceptions) in [(50usize, 0usize), (50, 5), (200, 20)] {
        let w = class_workload(members, exceptions);
        let flat_table = explicated_table(&w);
        let baseline = footnote1_baseline(&w);
        assert_eq!(flat_table.len(), members - exceptions);
        for inst in w.graph.instances() {
            let item = Item::new(vec![inst]);
            let truth = w.relation.holds(&item);
            let id = inst.index() as u32;
            assert_eq!(
                !flat_table.lookup(0, id).is_empty(),
                truth,
                "flat table disagrees at {id}"
            );
            assert_eq!(
                baseline.holds(id),
                truth,
                "footnote-1 join disagrees at {id}"
            );
        }
        // Listing queries agree too.
        let mut joined = baseline.list();
        joined.sort_unstable();
        let mut flat: Vec<u32> = flatten(&w.relation)
            .iter()
            .map(|i| i.component(0).index() as u32)
            .collect();
        flat.sort_unstable();
        assert_eq!(joined, flat);
    }
}

#[test]
fn membership_integrity_constraint_round_trip() {
    let w = class_workload(100, 0);
    let m = MembershipTable::materialize(&w.graph);
    m.check_integrity(&w.graph).unwrap();
    // Membership rows: class C0 has 100, the domain root has 100.
    assert_eq!(m.len(), 200);
}

#[test]
fn datalog_over_catalog_matches_direct_binding() {
    // Build a catalog world, run a Datalog rule, and check the derived
    // facts against direct binding evaluation.
    let mut g = hrdm::hierarchy::HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).unwrap();
    g.add_instance("Tweety", bird).unwrap();
    let penguin = g.add_class("Penguin", bird).unwrap();
    g.add_instance("Paul", penguin).unwrap();
    let mut cat = Catalog::new();
    let dom = cat.add_domain("Animal", g);
    let schema = Arc::new(Schema::single("Creature", dom.clone()));
    let mut flies = HRelation::new(schema.clone());
    flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
    flies.assert_fact(&["Penguin"], Truth::Negative).unwrap();
    let mut creature = HRelation::new(schema.clone());
    creature.assert_fact(&["Animal"], Truth::Positive).unwrap();
    cat.add_relation("flies", flies.clone());
    cat.add_relation("creature", creature);

    let mut engine = Engine::new();
    engine.add_catalog(&cat);
    let program = Program::parse(
        "travels_far(X) :- flies(X).\n\
         grounded(X) :- creature(X), !flies(X).",
    )
    .unwrap();
    let travels = engine.run_pretty(&program, "travels_far").unwrap();
    let grounded = engine.run_pretty(&program, "grounded").unwrap();

    for name in ["Tweety", "Paul"] {
        let item = flies.item(&[name]).unwrap();
        let flies_direct = flies.holds(&item);
        assert_eq!(
            travels.contains(&vec![name.to_string()]),
            flies_direct,
            "{name} travels_far"
        );
        assert_eq!(
            grounded.contains(&vec![name.to_string()]),
            !flies_direct,
            "{name} grounded"
        );
    }
}

#[test]
fn operator_results_can_feed_the_flat_engine() {
    // A hierarchical query result explicated into the baseline engine:
    // the end-to-end path a downstream system would take.
    let mut g = hrdm::hierarchy::HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).unwrap();
    for n in ["b1", "b2", "b3"] {
        g.add_instance(n, bird).unwrap();
    }
    let schema = Arc::new(Schema::single("Creature", Arc::new(g)));
    let mut r = HRelation::new(schema.clone());
    r.assert_fact(&["Bird"], Truth::Positive).unwrap();
    r.assert_fact(&["b2"], Truth::Negative).unwrap();

    let selected = hrdm::core::ops::select(&r, &schema.universal_item()).unwrap();
    let flat = flatten(&selected);
    let mut table = Table::new("result", 1);
    for atom in flat.iter() {
        table.insert(&[atom.component(0).index() as u32]).unwrap();
    }
    table.create_index(0).unwrap();
    assert_eq!(table.len(), 2);
    let b2 = schema.domain(0).node("b2").unwrap().index() as u32;
    assert!(table.lookup(0, b2).is_empty(), "the exception is excluded");
}

#[test]
fn facade_reexports_are_usable() {
    // The doc example from src/lib.rs, inlined.
    let mut g = hrdm::hierarchy::HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).unwrap();
    g.add_instance("Tweety", bird).unwrap();
    let schema = Arc::new(Schema::single("Creature", Arc::new(g)));
    let mut flies = HRelation::new(schema);
    flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
    assert!(flies.holds(&flies.item(&["Tweety"]).unwrap()));
}

#[test]
fn catalog_round_trips_through_a_persisted_image() {
    use hrdm::persist::Image;
    let mut g = hrdm::hierarchy::HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).unwrap();
    g.add_instance("Tweety", bird).unwrap();
    let mut cat = Catalog::new();
    let dom = cat.add_domain("Animal", g);
    let schema = Arc::new(Schema::single("Creature", dom));
    let mut flies = HRelation::new(schema);
    flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
    cat.add_relation("Flies", flies);

    let bytes = Image::from_catalog(&cat).to_bytes().unwrap();
    let restored = Image::from_bytes(&bytes).unwrap().into_catalog();
    let flies = restored.relation("Flies").unwrap();
    assert!(flies.holds(&flies.item(&["Tweety"]).unwrap()));
    // The restored catalog's domain handle matches the relation's.
    assert!(Arc::ptr_eq(
        restored.domain("Animal").unwrap(),
        flies.schema().attribute(0).domain()
    ));
    // And the Datalog layer accepts the restored catalog directly.
    let mut engine = hrdm::datalog::Engine::new();
    engine.add_catalog(&restored);
    let p = hrdm::datalog::Program::parse("f(X) :- Flies(X).");
    // Predicate names are case-sensitive; catalog name is "Flies".
    let out = engine.run(&p.unwrap()).unwrap();
    assert_eq!(out["f"].len(), 1);
}
