//! The `kind()` wire vocabulary of the unified error surface.
//!
//! `hrdm-server` sends `ERR <kind>` replies built from
//! [`hrdm::Error::kind`], so every leaf error variant across the
//! wrapped crates must map to a **stable** code, and two different
//! failure conditions must never silently collapse onto the same code
//! unless that sharing is deliberate. This test enumerates one
//! representative of every variant, pins its code against a golden
//! table, and checks cross-variant collisions against an explicit
//! allowlist — adding a variant without extending the table fails here,
//! as does changing any existing code.

use std::collections::BTreeMap;

use hrdm::core::{CoreError, Item};
use hrdm::hierarchy::{HierarchyError, NodeId};
use hrdm::hql::HqlError;
use hrdm::persist::PersistError;
use hrdm::Error;

fn item() -> Item {
    Item::new(vec![NodeId::ROOT])
}

/// One representative per leaf variant, with its golden kind code.
/// Order: hierarchy, core, hql, persist — the facade's own variants.
fn representatives() -> Vec<(&'static str, Error, &'static str)> {
    vec![
        // hrdm-hierarchy: every variant classifies as "hierarchy".
        (
            "Hierarchy::UnknownNode",
            HierarchyError::UnknownNode(NodeId::ROOT).into(),
            "hierarchy",
        ),
        (
            "Hierarchy::UnknownName",
            HierarchyError::UnknownName("x".into()).into(),
            "hierarchy",
        ),
        (
            "Hierarchy::DuplicateName",
            HierarchyError::DuplicateName("x".into()).into(),
            "hierarchy",
        ),
        (
            "Hierarchy::WouldCreateCycle",
            HierarchyError::WouldCreateCycle {
                from: NodeId::ROOT,
                to: NodeId::ROOT,
            }
            .into(),
            "hierarchy",
        ),
        (
            "Hierarchy::DuplicateEdge",
            HierarchyError::DuplicateEdge {
                from: NodeId::ROOT,
                to: NodeId::ROOT,
            }
            .into(),
            "hierarchy",
        ),
        (
            "Hierarchy::SelfEdge",
            HierarchyError::SelfEdge(NodeId::ROOT).into(),
            "hierarchy",
        ),
        (
            "Hierarchy::InstanceHasChildren",
            HierarchyError::InstanceHasChildren(NodeId::ROOT).into(),
            "hierarchy",
        ),
        (
            "Hierarchy::NoParent",
            HierarchyError::NoParent.into(),
            "hierarchy",
        ),
        // hrdm-core.
        (
            "Core::Hierarchy",
            CoreError::Hierarchy(HierarchyError::NoParent).into(),
            "hierarchy",
        ),
        (
            "Core::ArityMismatch",
            CoreError::ArityMismatch {
                expected: 1,
                got: 2,
            }
            .into(),
            "arity",
        ),
        (
            "Core::SchemaMismatch",
            CoreError::SchemaMismatch.into(),
            "schema",
        ),
        (
            "Core::UnknownAttribute",
            CoreError::UnknownAttribute("x".into()).into(),
            "unknown",
        ),
        (
            "Core::ContradictoryAssertion",
            CoreError::ContradictoryAssertion(item()).into(),
            "contradiction",
        ),
        (
            "Core::Inconsistent",
            CoreError::Inconsistent(vec![item()]).into(),
            "conflict",
        ),
        (
            "Core::InputInconsistent",
            CoreError::InputInconsistent(vec![item()]).into(),
            "conflict",
        ),
        (
            "Core::AttributeIndexOutOfRange",
            CoreError::AttributeIndexOutOfRange(9).into(),
            "attr-index",
        ),
        (
            "Core::DuplicateAttributeIndex",
            CoreError::DuplicateAttributeIndex(0).into(),
            "attr-index",
        ),
        (
            "Core::NoJoinAttributes",
            CoreError::NoJoinAttributes.into(),
            "join",
        ),
        (
            "Core::ConstraintViolations",
            CoreError::ConstraintViolations(vec!["v".into()]).into(),
            "constraint",
        ),
        (
            "Core::DuplicateName",
            CoreError::DuplicateName {
                kind: "relation",
                name: "R".into(),
            }
            .into(),
            "duplicate",
        ),
        (
            "Core::NotFound",
            CoreError::NotFound {
                kind: "relation",
                name: "R".into(),
            }
            .into(),
            "not-found",
        ),
        (
            "Core::InUse",
            CoreError::InUse {
                kind: "domain",
                name: "D".into(),
                by: "R".into(),
            }
            .into(),
            "in-use",
        ),
        // hrdm-hql.
        (
            "Hql::Lex",
            HqlError::Lex {
                position: 0,
                message: "m".into(),
            }
            .into(),
            "lex",
        ),
        (
            "Hql::Parse",
            HqlError::Parse {
                found: "x".into(),
                expected: "y".into(),
            }
            .into(),
            "parse",
        ),
        (
            "Hql::Unknown",
            HqlError::Unknown {
                kind: "relation",
                name: "R".into(),
            }
            .into(),
            "unknown",
        ),
        (
            "Hql::Duplicate",
            HqlError::Duplicate {
                kind: "relation",
                name: "R".into(),
            }
            .into(),
            "duplicate",
        ),
        (
            "Hql::Core",
            HqlError::Core(CoreError::NoJoinAttributes).into(),
            "join",
        ),
        (
            "Hql::Persist",
            HqlError::Persist {
                kind: "corrupt",
                message: "m".into(),
            }
            .into(),
            "corrupt",
        ),
        (
            "Hql::Execution",
            HqlError::Execution("m".into()).into(),
            "execution",
        ),
        (
            "Hql::Inconsistent",
            HqlError::Inconsistent {
                relation: "R".into(),
                conflicts: vec![],
            }
            .into(),
            "conflict",
        ),
        // hrdm-persist.
        (
            "Persist::Io",
            PersistError::Io(std::io::Error::other("io")).into(),
            "io",
        ),
        (
            "Persist::BadMagic",
            PersistError::BadMagic.into(),
            "bad-magic",
        ),
        (
            "Persist::UnsupportedVersion",
            PersistError::UnsupportedVersion(99).into(),
            "unsupported-version",
        ),
        (
            "Persist::Corrupt",
            PersistError::Corrupt("c".into()).into(),
            "corrupt",
        ),
        (
            "Persist::Rebuild",
            PersistError::Rebuild("r".into()).into(),
            "rebuild",
        ),
        (
            "Persist::NotFound",
            PersistError::NotFound("n".into()).into(),
            "not-found",
        ),
    ]
}

/// Codes that more than one distinct failure condition may share, and
/// why. Anything else colliding is a protocol regression.
///
/// * `hierarchy` — every graph-level failure, from any layer, is one
///   category on the wire.
/// * `conflict` — ambiguity-constraint violations, wherever detected.
/// * `attr-index` — both bad-attribute-index shapes of an operator call.
/// * `unknown` / `duplicate` / `not-found` — name-resolution outcomes
///   reported identically by the catalog, HQL, and image layers.
/// * `join`, `corrupt` — forwarding variants (`Hql::Core`,
///   `Hql::Persist`) exist so lower-layer codes pass through unchanged;
///   the representatives above pick codes also produced directly.
const SHARED_KINDS: &[&str] = &[
    "hierarchy",
    "conflict",
    "attr-index",
    "unknown",
    "duplicate",
    "not-found",
    "join",
    "corrupt",
];

#[test]
fn every_variant_has_its_golden_kind() {
    for (variant, error, expected) in representatives() {
        assert_eq!(
            error.kind(),
            expected,
            "{variant} must keep its stable wire code"
        );
    }
}

#[test]
fn kinds_collide_only_on_the_allowlist() {
    let mut by_kind: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (variant, error, _) in representatives() {
        by_kind.entry(error.kind()).or_default().push(variant);
    }
    for (kind, variants) in &by_kind {
        if variants.len() > 1 && !SHARED_KINDS.contains(kind) {
            panic!(
                "kind {kind:?} is shared by {variants:?} but is not on the \
                 intentional-sharing allowlist — HRDM/1 clients can no \
                 longer tell these failures apart"
            );
        }
    }
}

#[test]
fn kind_codes_are_wire_safe() {
    // `ERR <kind>` is a single space-delimited token on the wire.
    for (variant, error, _) in representatives() {
        let kind = error.kind();
        assert!(
            !kind.is_empty()
                && kind
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
            "{variant}: kind {kind:?} is not a wire-safe token"
        );
    }
}
