//! Integration tests pinning every worked example of the paper,
//! end to end through the public facade (`hrdm`).
//!
//! These mirror the `figures` binary's assertions as a test suite, so a
//! regression in any crate that would change a paper figure fails CI.

use std::sync::Arc;

use hrdm::core::conflict::{find_conflicts, is_consistent};
use hrdm::core::consolidate::consolidate;
use hrdm::core::flat::{equivalent, flatten};
use hrdm::core::justify::justify;
use hrdm::core::ops::{difference, intersection, join, project_names, select, select_eq, union};
use hrdm::core::subsumption::SubsumptionGraph;
use hrdm::prelude::*;
use hrdm_bench::fixtures::*;

#[test]
fn fig1_all_five_creatures() {
    let tax = fig1_taxonomy();
    let flying = fig1_relation(&tax);
    let expect = [
        ("Tweety", true),
        ("Paul", false),
        ("Patricia", true),
        ("Pamela", true),
        ("Peter", true),
    ];
    for (name, flies) in expect {
        assert_eq!(
            flying.holds(&flying.item(&[name]).unwrap()),
            flies,
            "{name}"
        );
    }
    // Fig. 1c: the subsumption graph is the 4-tuple chain.
    let sub = SubsumptionGraph::build(&flying);
    assert_eq!(sub.node_count(), 5);
    // Fig. 1d: Patricia binds only through Amazing Flying Penguin.
    let patricia = flying.item(&["Patricia"]).unwrap();
    let (tbg, qi) = SubsumptionGraph::build_for_item(&flying, &patricia);
    assert_eq!(tbg.parents(qi).len(), 1);
}

#[test]
fn fig2_product_diamond() {
    let (students, teachers) = fig2_graphs();
    let product = hrdm::hierarchy::ProductHierarchy::new(vec![students.clone(), teachers.clone()]);
    let corner = vec![
        students.expect("Obsequious Student"),
        teachers.expect("Incoherent Teacher"),
    ];
    assert_eq!(product.parents(&corner).len(), 2, "the Fig. 2c diamond");
}

#[test]
fn fig3_conflict_and_resolution() {
    let (students, teachers) = fig2_graphs();
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Student", students.clone()),
        Attribute::new("Teacher", teachers.clone()),
    ]));
    let mut partial = HRelation::new(schema);
    partial
        .assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
        .unwrap();
    partial
        .assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
        .unwrap();
    assert!(!is_consistent(&partial));
    let conflicts = find_conflicts(&partial);
    assert!(conflicts.iter().any(|c| c.item
        == partial
            .item(&["Obsequious Student", "Incoherent Teacher"])
            .unwrap()));
    let full = fig3_respects(&students, &teachers);
    assert!(is_consistent(&full));
}

#[test]
fn fig4_elephant_colors() {
    let (animals, colors) = fig4_graphs();
    let rel = fig4_colors(&animals, &colors);
    for (animal, color, expect) in [
        ("Clyde", "Dappled", true),
        ("Clyde", "White", false),
        ("Clyde", "Grey", false),
        ("Appu", "White", true),
        ("Appu", "Grey", false),
    ] {
        assert_eq!(rel.holds(&rel.item(&[animal, color]).unwrap()), expect);
    }
}

#[test]
fn fig6_consolidation() {
    let (students, teachers) = fig2_graphs();
    let full = fig3_respects(&students, &teachers);
    let cons = consolidate(&full);
    assert_eq!(cons.relation.len(), 1);
    assert_eq!(cons.removed.len(), 2);
    assert!(equivalent(&full, &cons.relation));
    // The negation falls first (topological order), then the resolver.
    assert_eq!(cons.removed[0].truth, Truth::Negative);
}

#[test]
fn figs7_8_selections() {
    let (students, teachers) = fig2_graphs();
    let respects = fig3_respects(&students, &teachers);
    let region = respects.item(&["Obsequious Student", "Teacher"]).unwrap();
    let who = select(&respects, &region).unwrap();
    let flat = flatten(&who);
    assert!(flat.contains(&respects.item(&["John", "Smith"]).unwrap()));
    assert!(flat.contains(&respects.item(&["John", "Jones"]).unwrap()));
    assert!(!flat.contains(&respects.item(&["Mary", "Jones"]).unwrap()));

    let john = select_eq(&respects, "Student", "John").unwrap();
    assert_eq!(flatten(&john).len(), 2);
}

#[test]
fn fig9_justification() {
    let (animals, colors) = fig4_graphs();
    let rel = fig4_colors(&animals, &colors);
    let clyde_grey = rel.item(&["Clyde", "Grey"]).unwrap();
    let j = justify(&rel, &clyde_grey);
    assert_eq!(j.binding.truth(), Some(Truth::Negative));
    assert_eq!(j.applicable.len(), 2);
    assert_eq!(
        j.decisive[0].item,
        rel.item(&["Royal Elephant", "Grey"]).unwrap()
    );
}

#[test]
fn fig10_set_operations() {
    let tax = fig1_taxonomy();
    let schema = Arc::new(Schema::single("Creature", tax));
    let mut jack = HRelation::new(schema.clone());
    jack.assert_fact(&["Bird"], Truth::Positive).unwrap();
    jack.assert_fact(&["Penguin"], Truth::Negative).unwrap();
    jack.assert_fact(&["Peter"], Truth::Positive).unwrap();
    let mut jill = HRelation::new(schema.clone());
    jill.assert_fact(&["Penguin"], Truth::Positive).unwrap();

    let u = union(&jack, &jill).unwrap();
    assert_eq!(flatten(&u).len(), 5, "all five creatures");
    let i = intersection(&jack, &jill).unwrap();
    let fi = flatten(&i);
    assert_eq!(fi.len(), 1);
    assert!(fi.contains(&schema.item(&["Peter"]).unwrap()));
    let d1 = difference(&jack, &jill).unwrap();
    assert!(flatten(&d1).contains(&schema.item(&["Tweety"]).unwrap()));
    let d2 = difference(&jill, &jack).unwrap();
    assert_eq!(flatten(&d2).len(), 3, "Paul, Patricia, Pamela");
}

#[test]
fn fig11_join_and_projection() {
    let (animals, colors) = fig4_graphs();
    let color_rel = fig4_colors(&animals, &colors);
    let (_enc, size_rel) = fig11_enclosures(&animals);
    let joined = join(&size_rel, &color_rel).unwrap();
    // Appu: white and in a 2000 enclosure (the Indian-elephant size
    // exception composes with the royal-elephant colour exception).
    let appu = joined.item(&["Appu", "2000", "White"]).unwrap();
    assert!(flatten(&joined).contains(&appu));
    // Projection back recovers the colour relation's model.
    let back = project_names(&joined, &["Animal", "Color"]).unwrap();
    assert_eq!(flatten(&back).atoms(), flatten(&color_rel).atoms());
}

#[test]
fn appendix_preemption_modes() {
    let tax = fig1_taxonomy();
    let mut flying = fig1_relation(&tax);
    let patricia = flying.item(&["Patricia"]).unwrap();

    flying.set_preemption(Preemption::OffPath);
    assert_eq!(flying.bind(&patricia).truth(), Some(Truth::Positive));
    flying.set_preemption(Preemption::OnPath);
    assert!(flying.bind(&patricia).is_conflict());
    flying.set_preemption(Preemption::NoPreemption);
    assert!(flying.bind(&patricia).is_conflict());
}

/// Golden snapshot of the full figure report: every paper table, dot
/// rendering, subsumption edge, and derived truth value, byte for byte.
/// `UPDATE_GOLDEN=1 cargo test figures_report` re-blesses the snapshot
/// after a deliberate output change.
#[test]
fn figures_report_matches_golden() {
    let actual = hrdm_bench::figures::report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/figures.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, expected,
        "figure report drifted from tests/golden/figures.txt; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

/// Golden snapshot of the TRACE report: the executed span trees of one
/// worked query on both engines, stable fields only (node kinds, rows,
/// cache attribution — wall times elided). Deterministic because each
/// engine runs against freshly built fixture graphs, whose cache
/// entries cannot pre-exist. Re-bless with
/// `UPDATE_GOLDEN=1 cargo test trace_report`.
#[test]
fn trace_report_matches_golden() {
    let actual = hrdm_bench::figures::trace_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, expected,
        "TRACE report drifted from tests/golden/trace.txt; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

/// Golden snapshot of the EXPLAIN renderings for the worked queries —
/// the optimized plan trees and which rewrite rules fired, byte for
/// byte. Re-bless with `UPDATE_GOLDEN=1 cargo test explain_report`.
#[test]
fn explain_report_matches_golden() {
    let actual = hrdm_bench::figures::explain_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/explain.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, expected,
        "EXPLAIN report drifted from tests/golden/explain.txt; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}
