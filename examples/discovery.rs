//! Mechanical hierarchy discovery (§4) with snapshot persistence.
//!
//! ```sh
//! cargo run --example discovery
//! ```
//!
//! Starts from a *flat* relation — the set of products each warehouse
//! stocks, item by item — and lets the system mechanically reorganize it
//! into a hierarchical relation over the product taxonomy, "with
//! 'classes' being defined in such a way that storage is minimized"
//! (§4). The discovered relation is then saved to and reloaded from an
//! `HRDM1` snapshot image to show the compact form is what persists.

use std::collections::BTreeSet;
use std::sync::Arc;

use hrdm::core::discover::discover;
use hrdm::core::flat::{flatten, FlatRelation};
use hrdm::core::render::render_table_titled;
use hrdm::hierarchy::HierarchyGraph;
use hrdm::persist::Image;
use hrdm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A product taxonomy.
    let mut g = HierarchyGraph::new("Product");
    let produce = g.add_class("Produce", g.root())?;
    let fruit = g.add_class("Fruit", produce)?;
    let vegetable = g.add_class("Vegetable", produce)?;
    let dairy = g.add_class("Dairy", g.root())?;
    for name in ["Apple", "Banana", "Cherry", "Mango", "Pear"] {
        g.add_instance(name, fruit)?;
    }
    for name in ["Carrot", "Potato", "Leek"] {
        g.add_instance(name, vegetable)?;
    }
    for name in ["Milk", "Butter", "Yogurt"] {
        g.add_instance(name, dairy)?;
    }
    let product = Arc::new(g);
    let schema = Arc::new(Schema::single("Product", product.clone()));

    // The warehouse's stock list arrives flat: every fruit except
    // mangoes, all vegetables, and milk.
    let stocked = [
        "Apple", "Banana", "Cherry", "Pear", // fruit minus Mango
        "Carrot", "Potato", "Leek", // all vegetables
        "Milk",
    ];
    let atoms: BTreeSet<Item> = stocked
        .iter()
        .map(|n| schema.item(&[n]))
        .collect::<Result<_, _>>()?;
    let flat = FlatRelation::from_atoms(schema.clone(), atoms);
    println!("flat stock list: {} tuples", flat.len());

    // §4: let the system organize it.
    let d = discover(&flat);
    println!(
        "discovered: {} tuples ({} classes, {} exceptions) — {:.1}x smaller",
        d.stats.hierarchical_tuples,
        d.stats.classes_used,
        d.stats.exceptions,
        d.stats.flat_tuples as f64 / d.stats.hierarchical_tuples as f64
    );
    println!(
        "{}",
        render_table_titled(&d.relation, Some("discovered hierarchical relation"))
    );

    // Equivalence is guaranteed, not hoped for.
    assert_eq!(flatten(&d.relation).atoms(), flat.atoms());

    // Persist the compact form; reload; verify.
    let mut image = Image::new();
    image.add_domain("Product", product);
    image.add_relation("Stocked", d.relation);
    let path = std::env::temp_dir().join("hrdm_discovery_example.hrdm");
    image.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("snapshot written: {bytes} bytes at {}", path.display());

    let restored = Image::load(&path)?;
    let stocked_rel = restored.relation("Stocked")?;
    assert_eq!(flatten(stocked_rel).atoms(), flat.atoms());
    println!(
        "reloaded and verified: Mango stocked = {}",
        stocked_rel.holds(&stocked_rel.item(&["Mango"])?)
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
