//! A frame-style knowledge base over the hierarchical model.
//!
//! ```sh
//! cargo run --example animal_kb
//! ```
//!
//! §1 pitches the model as a back-end "for, say, a frame-based knowledge
//! representation system". This example plays that front end: slots
//! (colour, enclosure size) become two-attribute relations over a shared
//! animal taxonomy (the paper's Fig. 4 "Clyde the royal elephant"
//! world), updates go through transactions that auto-resolve exceptions
//! by explicit cancellation, and slot reads are justified lookups.

use std::sync::Arc;

use hrdm::core::integrity::Transaction;
use hrdm::core::justify::justify;
use hrdm::core::ops::join;
use hrdm::core::render::render_table_titled;
use hrdm::hierarchy::HierarchyGraph;
use hrdm::prelude::*;

/// The front end: unique-value slots with explicit cancellation.
struct Frame {
    relation: HRelation,
}

impl Frame {
    fn new(relation: HRelation) -> Frame {
        Frame { relation }
    }

    /// Assert `subject.slot = value` with the paper's *explicit
    /// cancellation* (§2.2): when an inherited value exists, the update
    /// negates it ("it is not enough to say that royal elephants are
    /// white … royal elephants are not grey but white").
    fn set(&mut self, subject: &str, value: &str) -> Result<(), CoreError> {
        let item = self.relation.item(&[subject, value])?;
        let mut tx = Transaction::begin(&mut self.relation);
        // Cancel every inherited value that differs.
        let schema = tx.relation().schema().clone();
        let subject_node = schema.domain(0).node(subject)?;
        let cancellations: Vec<Item> = schema
            .domain(1)
            .instances()
            .filter(|&v| v != item.component(1))
            .map(|v| Item::new(vec![subject_node, v]))
            .filter(|other| tx.relation().holds(other))
            .collect();
        for other in cancellations {
            tx.insert(other, Truth::Negative)?;
        }
        tx.assert_item(item, Truth::Positive)?;
        // Resolve any remaining multiple-inheritance conflicts in favour
        // of the new assertion's truth (a left-precedence-style policy).
        loop {
            let pending = tx.pending_conflicts();
            if pending.is_empty() {
                break;
            }
            for c in pending {
                tx.insert(c.item, Truth::Negative)?;
            }
        }
        tx.commit()
    }

    /// Read the slot value(s) for a subject, with justification.
    fn get(&self, subject: &str) -> Result<Vec<String>, CoreError> {
        let schema = self.relation.schema();
        let subject_node = schema.domain(0).node(subject)?;
        let mut out = Vec::new();
        for v in schema.domain(1).instances() {
            let item = Item::new(vec![subject_node, v]);
            if self.relation.holds(&item) {
                out.push(schema.domain(1).name(v).to_string());
            }
        }
        Ok(out)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The taxonomy (Fig. 4) plus a colour domain.
    let mut a = HierarchyGraph::new("Animal");
    let elephant = a.add_class("Elephant", a.root())?;
    let royal = a.add_class("Royal Elephant", elephant)?;
    let indian = a.add_class("Indian Elephant", elephant)?;
    a.add_instance_multi("Appu", &[royal, indian])?;
    a.add_instance("Clyde", royal)?;
    a.add_instance("Dumbo", indian)?;
    let animals = Arc::new(a);

    let mut c = HierarchyGraph::new("Color");
    for color in ["Grey", "White", "Dappled"] {
        c.add_instance(color, c.root())?;
    }
    let colors = Arc::new(c);

    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Animal", animals.clone()),
        Attribute::new("Color", colors),
    ]));
    let mut color_slot = Frame::new(HRelation::new(schema));

    // The KB is populated through the front end; cancellations appear
    // automatically.
    color_slot.set("Elephant", "Grey")?;
    color_slot.set("Royal Elephant", "White")?;
    color_slot.set("Clyde", "Dappled")?;

    println!(
        "{}",
        render_table_titled(
            &color_slot.relation,
            Some("colour slot (with cancellations)")
        )
    );

    for subject in ["Dumbo", "Appu", "Clyde"] {
        println!("{subject:6} colour: {:?}", color_slot.get(subject)?);
    }

    // Justified read: why is Appu white?
    let appu_white = color_slot.relation.item(&["Appu", "White"])?;
    let j = justify(&color_slot.relation, &appu_white);
    println!("\nwhy is Appu white?");
    for t in &j.decisive {
        println!(
            "    {} {}",
            t.truth.sign(),
            color_slot.relation.schema().display_item(&t.item)
        );
    }

    // A second slot joins naturally on the shared Animal attribute.
    let mut e = HierarchyGraph::new("Enclosure");
    e.add_instance("Large", e.root())?;
    e.add_instance("Small", e.root())?;
    let enclosure_schema = Arc::new(Schema::new(vec![
        Attribute::new("Animal", animals),
        Attribute::new("Enclosure", Arc::new(e)),
    ]));
    let mut enclosure = HRelation::new(enclosure_schema);
    enclosure.assert_fact(&["Elephant", "Large"], Truth::Positive)?;
    let profile = join(&enclosure, &color_slot.relation)?;
    println!(
        "{}",
        render_table_titled(&profile, Some("joined animal profile (Enclosure ⋈ Color)"))
    );
    Ok(())
}
