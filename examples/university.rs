//! A multi-attribute university database with Datalog rules on top.
//!
//! ```sh
//! cargo run --example university
//! ```
//!
//! Models the paper's Figs. 2–3 Respects scenario at a realistic size:
//! student and teacher taxonomies, a Respects relation with a
//! class-level default, exceptions, and a conflict resolved the §3.1
//! way; then selections (Figs. 7–8) and Datalog rules (§2.1's "more
//! powerful inference mechanism") over the same data.

use std::sync::Arc;

use hrdm::core::integrity::Transaction;
use hrdm::core::ops::{select, select_eq};
use hrdm::core::render::render_table_titled;
use hrdm::datalog::{Engine, Program};
use hrdm::hierarchy::HierarchyGraph;
use hrdm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Taxonomies.
    let mut s = HierarchyGraph::new("Student");
    let grad = s.add_class("Graduate Student", s.root())?;
    let obsequious = s.add_class("Obsequious Student", s.root())?;
    for name in ["John", "Jane"] {
        s.add_instance_multi(name, &[obsequious, grad])?;
    }
    for name in ["Mary", "Mike"] {
        s.add_instance(name, grad)?;
    }
    s.add_instance("Rebel Rick", s.root())?;
    let students = Arc::new(s);

    let mut t = HierarchyGraph::new("Teacher");
    let incoherent = t.add_class("Incoherent Teacher", t.root())?;
    let tenured = t.add_class("Tenured Teacher", t.root())?;
    t.add_instance_multi("Smith", &[incoherent, tenured])?;
    t.add_instance("Jones", tenured)?;
    t.add_instance("Brown", t.root())?;
    let teachers = Arc::new(t);

    // The Respects relation, populated through a §3.1 transaction: the
    // two defaults conflict at (Obsequious, Incoherent) and the commit
    // is only accepted with the resolving tuple.
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Student", students.clone()),
        Attribute::new("Teacher", teachers.clone()),
    ]));
    let mut respects = HRelation::new(schema);
    let mut tx = Transaction::begin(&mut respects);
    tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)?;
    tx.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)?;
    let pending = tx.pending_conflicts();
    println!("conflicts before resolution: {}", pending.len());
    tx.assert_fact(
        &["Obsequious Student", "Incoherent Teacher"],
        Truth::Positive,
    )?;
    // A second default: graduate students respect tenured teachers.
    // Smith is both tenured and incoherent, so this conflicts with the
    // incoherent-teacher negation; the §3.1 loop resolves every conflict
    // (department policy: benefit of the doubt → positive) until the
    // batch satisfies the ambiguity constraint.
    tx.assert_fact(&["Graduate Student", "Tenured Teacher"], Truth::Positive)?;
    loop {
        let pending = tx.pending_conflicts();
        if pending.is_empty() {
            break;
        }
        println!("resolving {} conflict(s) positively…", pending.len());
        for c in pending {
            tx.insert(c.item, Truth::Positive)?;
        }
    }
    // Instance-level exception on top.
    tx.assert_fact(&["Mike", "Jones"], Truth::Negative)?;
    tx.commit()?;

    println!("{}", render_table_titled(&respects, Some("Respects")));

    // Fig. 7-style selection.
    let region = respects.item(&["Obsequious Student", "Teacher"])?;
    let who = select(&respects, &region)?;
    println!(
        "{}",
        render_table_titled(&who, Some("who do obsequious students respect?"))
    );

    // Fig. 8-style selection.
    let mike = select_eq(&respects, "Student", "Mike")?;
    println!(
        "{}",
        render_table_titled(&mike, Some("who does Mike respect?"))
    );

    // Datalog rules over the same data: derived predicates the flat
    // model would need views + recursion for.
    let mut engine = Engine::new();
    engine.add_relation("respects", &respects);
    engine.add_isa("isa", &students);
    let program = Program::parse(
        r#"
        % a student is discerning if there is some teacher they do not respect
        enrolled(S, T) :- respects(S, T).
        respects_everyone(S) :- isa(S, "Obsequious Student").
        discerning(S) :- enrolled(S, T), !respects_everyone(S).
        "#,
    )?;
    let mut rows = engine.run_pretty(&program, "discerning")?;
    rows.sort();
    println!("discerning students (respect someone, but not everyone):");
    for row in rows {
        println!("    {}", row.join(", "));
    }
    Ok(())
}
