//! An interactive HQL shell with snapshot persistence.
//!
//! ```sh
//! cargo run --example hql_repl
//! ```
//!
//! Starts with the paper's Fig. 1 world preloaded; type HQL statements
//! (`SHOW Flies;`, `HOLDS Flies (Patricia);`, `WHY Flies (Paul);`,
//! `CHECK Flies;`, `CONSOLIDATE Flies;`, …) or `.help` / `.quit`.
//! When stdin is not a TTY (e.g. piped input), the shell runs the piped
//! script and exits — which is how this example doubles as an
//! integration check.

use std::io::{BufRead, Write};

use hrdm::hql::Session;

const PRELUDE: &str = r#"
CREATE DOMAIN Animal;
CREATE CLASS Bird UNDER Animal;
CREATE CLASS Canary UNDER Bird;
CREATE CLASS Penguin UNDER Bird;
CREATE CLASS "Galapagos Penguin" UNDER Penguin;
CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
CREATE INSTANCE Tweety OF Canary;
CREATE INSTANCE Paul OF "Galapagos Penguin";
CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
CREATE INSTANCE Pamela OF "Amazing Flying Penguin";
CREATE INSTANCE Peter OF "Amazing Flying Penguin";
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (ALL Bird);
ASSERT NOT Flies (ALL Penguin);
ASSERT Flies (ALL "Amazing Flying Penguin");
ASSERT Flies (Peter);
"#;

const HELP: &str = "\
HQL statements (see crates/hql for the full grammar):
  CREATE DOMAIN d; CREATE CLASS c UNDER p; CREATE INSTANCE i OF c;
  CREATE RELATION r (attr: domain, ...);
  ASSERT [NOT] r (ALL Class, instance, ...); RETRACT r (...);
  HOLDS r (...); WHY r (...); CHECK r; SHOW r; SHOW DOMAIN d;
  CONSOLIDATE r; EXPLICATE r [ON attr]; SET PREEMPTION r ON-PATH;
  LET x = UNION a b | INTERSECT a b | DIFFERENCE a b | JOIN a b
        | PROJECT a (attrs) | SELECT a WHERE attr IS value;
Shell commands: .help  .relations  .quit";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    session.execute(PRELUDE)?;
    println!("hrdm HQL shell — Fig. 1 world preloaded ('.help' for help)");

    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("hql> ");
        } else {
            print!(" ...> ");
        }
        std::io::stdout().flush()?;
        line.clear();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        match trimmed {
            ".quit" | ".exit" => break,
            ".help" => {
                println!("{HELP}");
                continue;
            }
            ".relations" => {
                for name in session.relation_names() {
                    println!("  {name}");
                }
                continue;
            }
            "" => continue,
            _ => {}
        }
        buffer.push_str(&line);
        // Execute once the statement is terminated.
        if !trimmed.ends_with(';') {
            continue;
        }
        match session.execute(&buffer) {
            Ok(responses) => {
                for r in responses {
                    println!("{r}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
        buffer.clear();
    }
    Ok(())
}
