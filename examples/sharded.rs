//! Location transparency in one program.
//!
//! ```sh
//! cargo run --example sharded
//! ```
//!
//! The same function — `report`, written once against
//! [`ExecutorHandle`] — runs unchanged against three deployments:
//!
//! 1. an embedded [`Engine`] (one process, one partition),
//! 2. a [`ShardedEngine`] hash-partitioning the catalog across four
//!    in-process shards (domain DDL broadcast, reads scatter-gathered
//!    under an epoch floor),
//! 3. a WAL-fed [`Replica`] tailing a primary's store directory and
//!    serving the same reads from its own snapshot.
//!
//! Which backend a program talks to is a wiring decision, not an API
//! one — exactly the contract the serving tier (`hrdm-serve` +
//! `hrdm_server::WireRouter`) extends across processes.

use hrdm::prelude::{Engine, ExecutorHandle, Replica, ShardedEngine};

const WORLD: &str = "
    CREATE DOMAIN Animal;
    CREATE CLASS Bird UNDER Animal;
    CREATE CLASS Penguin UNDER Bird;
    CREATE INSTANCE Tweety OF Bird;
    CREATE INSTANCE Paul OF Penguin;
    CREATE RELATION Flies (Creature: Animal);
    ASSERT Flies (ALL Bird);
    ASSERT NOT Flies (ALL Penguin);
";

const QUESTIONS: &str = "
    HOLDS Flies (Tweety);
    HOLDS Flies (Paul);
    COUNT Flies;
    CHECK Flies;
";

/// Everything below this line is backend-agnostic.
fn report(name: &str, handle: &dyn ExecutorHandle) {
    // Pin reads at the backend's current epoch: any snapshot at least
    // this fresh may serve them.
    let epoch = handle.last_epoch().expect("epoch");
    println!("── {name} ──");
    for line in handle.execute_read(QUESTIONS, epoch).expect("reads") {
        println!("  {line}");
    }
    let probe = handle.probe().expect("probe");
    println!("  [{}]", probe.lines().collect::<Vec<_>>().join(" | "));
}

fn main() {
    // 1. Embedded: the engine is the handle.
    let embedded = Engine::new();
    embedded.execute(WORLD).expect("bootstrap");
    report("embedded engine", &embedded);

    // 2. Sharded: same statements, now routed — domain DDL broadcast to
    //    all four shards, relations hashed to an owner, reads gathered.
    let sharded = ShardedEngine::new(4);
    ExecutorHandle::execute(&sharded, WORLD).expect("bootstrap");
    report("sharded engine (4 shards)", &sharded);

    // 3. Replicated: the primary journals into a store; a replica tails
    //    the WAL and serves the same reads, read-only.
    let dir = std::env::temp_dir().join(format!("hrdm_example_sharded_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let primary = Engine::new();
    primary
        .execute(&format!("OPEN \"{}\" SYNC EVERY 1;", dir.display()))
        .expect("open store");
    primary.execute(WORLD).expect("bootstrap");
    let replica = Replica::attach(&dir);
    let shipped = replica.sync().expect("sync");
    println!("(replica caught up at shipped lsn {shipped})");
    report("wal replica", &replica);
    assert!(
        replica.execute("ASSERT Flies (Paul);").is_err(),
        "replicas are read-only"
    );
    std::fs::remove_dir_all(&dir).ok();
}
