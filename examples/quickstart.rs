//! Quickstart: the paper's Fig. 1 flying-creatures scenario end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the taxonomy, asserts three class-level facts plus one
//! instance-level fact, and shows inheritance with exceptions, the
//! equivalent flat relation, consolidation, and justification.

use std::sync::Arc;

use hrdm::core::consolidate::consolidate;
use hrdm::core::justify::justify;
use hrdm::core::render::render_table_titled;
use hrdm::hierarchy::HierarchyGraph;
use hrdm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A class hierarchy: the attribute domain is the root; classes
    //    derive from it; instances are the leaves.
    let mut g = HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root())?;
    let canary = g.add_class("Canary", bird)?;
    g.add_instance("Tweety", canary)?;
    let penguin = g.add_class("Penguin", bird)?;
    let gala = g.add_class("Galapagos Penguin", penguin)?;
    let afp = g.add_class("Amazing Flying Penguin", penguin)?;
    g.add_instance("Paul", gala)?;
    g.add_instance_multi("Patricia", &[gala, afp])?;
    g.add_instance("Pamela", afp)?;
    g.add_instance("Peter", afp)?;

    // 2. A single-attribute hierarchical relation: "flying creatures".
    //    Four tuples stand in for the whole extension.
    let schema = Arc::new(Schema::single("Creature", Arc::new(g)));
    let mut flies = HRelation::new(schema);
    flies.assert_fact(&["Bird"], Truth::Positive)?; // all birds fly
    flies.assert_fact(&["Penguin"], Truth::Negative)?; // …except penguins
    flies.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)?; // …except these
    flies.assert_fact(&["Peter"], Truth::Positive)?; // and Peter, explicitly

    println!(
        "{}",
        render_table_titled(&flies, Some("Flying creatures (4 stored tuples)"))
    );

    // 3. Inheritance with exceptions: truth values are derived through
    //    the tuple-binding graph.
    for name in ["Tweety", "Paul", "Patricia", "Pamela", "Peter"] {
        let item = flies.item(&[name])?;
        println!("{name:10} flies: {}", flies.holds(&item));
    }

    // 4. The unique equivalent flat relation.
    let flat = hrdm::core::flat::flatten(&flies);
    println!("\nflat extension ({} atoms):", flat.len());
    for atom in flat.iter() {
        println!("    {}", flies.schema().display_item(atom));
    }

    // 5. Justification: which stored tuples decided an answer?
    let paul = flies.item(&["Paul"])?;
    let j = justify(&flies, &paul);
    println!("\nwhy doesn't Paul fly?");
    for t in &j.decisive {
        println!(
            "    decisive: {} {}",
            t.truth.sign(),
            flies.schema().display_item(&t.item)
        );
    }

    // 6. Consolidate: the explicit +Peter tuple is redundant — its only
    //    predecessor in the subsumption graph is the positive Amazing
    //    Flying Penguin tuple, which already implies it (§3.3.1).
    let c = consolidate(&flies);
    println!("\nconsolidate removed {} tuple(s):", c.removed.len());
    for t in &c.removed {
        println!(
            "    {} {}",
            t.truth.sign(),
            flies.schema().display_item(&t.item)
        );
    }
    assert!(hrdm::core::flat::equivalent(&flies, &c.relation));
    println!("…and the flat model is unchanged.");
    Ok(())
}
