#![warn(missing_docs)]

//! Shared workloads and fixtures for the benchmark harness.
//!
//! Two kinds of artifacts live in this crate:
//!
//! * [`figures`] — regenerates every worked figure of the paper
//!   (EX1–EX11 in DESIGN.md) as one deterministic report; the `figures`
//!   binary prints it and the golden test snapshots it;
//! * `src/bin/tables.rs` + `benches/*` — the performance experiments
//!   (B1–B9), each reproducing one quantitative claim from the paper's
//!   prose against the flat baseline engine.
//!
//! The builders here construct the paper's running examples (Figs. 1–4)
//! and the synthetic scaled workloads both binaries and the Criterion
//! benches share.

pub mod figures;
pub mod fixtures;
pub mod flatplan;
pub mod workloads;
