//! Closed-loop and fixed-rate load generator for the serving tier;
//! emits `BENCH_server.json`.
//!
//! Starts an in-process `hrdm-server` over the Fig. 1 bootstrap world,
//! then drives it over real sockets with M concurrent [`Client`]s in
//! three phases:
//!
//! 1. **writes** — one client replays the deterministic serving write
//!    mix (snapshot publications through the single writer);
//! 2. **closed** — every client issues its next query the moment the
//!    previous reply lands (throughput-bound);
//! 3. **rate** — requests are released on a fixed schedule and latency
//!    is measured from the *scheduled* send time, so queueing delay
//!    under an offered load shows up in the percentiles.
//! 4. **pipeline** — a depth sweep: every client keeps `depth`
//!    requests in flight on one connection ([`Client::pipeline`]),
//!    measuring how request pipelining trades per-burst latency for
//!    throughput. Each sweep point reports total requests, burst
//!    round-trip percentiles, and throughput; the validator requires
//!    deep pipelining (depth >= 8) to beat depth 1 on throughput.
//! 5. **sharded_1 / sharded_4** — one closed-loop client drives a
//!    fixed serving mix (a committed write every 50 reads) against the
//!    in-process `ShardedEngine` coordinator over a serving-scale
//!    catalog, through the same trait. The statement sequence is
//!    byte-identical at both shard counts; every committed write
//!    publishes a copy-on-write clone of the owning engine's catalog
//!    maps, so partitioning divides the per-write publication cost by
//!    the shard count. The validator requires the 4-shard point to
//!    beat the 1-shard baseline on read throughput.
//!
//! Each phase reports throughput and exact (sorted-sample) p50/p95/p99
//! latency; the trailer reports the server-side counter deltas — the
//! same numbers the `METRICS`/`STATS` verbs export — so wire-level and
//! in-process accounting can be cross-checked. The `METRICS` and
//! `SLOWLOG` verbs themselves are driven once over the wire as part of
//! the run. `tools/validate_bench.py` gates the artifact against
//! `tests/golden/bench_server.schema.json`.
//!
//! Run with `cargo run -p hrdm-bench --release --bin loadgen`.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use hrdm_bench::fixtures::{
    clear_shared_caches, serving_bootstrap, serving_queries, serving_writes,
};
use hrdm_hql::{Engine, ExecutorHandle, ShardedEngine};
use hrdm_server::{Client, MetricsFormat, Reply, Request, Server, ServerConfig};

/// The pipelining sweep: depth 1 is the closed-loop baseline on the
/// same code path, the deeper points show the latency/throughput trade.
const PIPELINE_DEPTHS: [usize; 3] = [1, 8, 32];

struct Args {
    clients: usize,
    requests: usize,
    rate_rps: u64,
    slowlog_ms: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        requests: 200,
        rate_rps: 400,
        slowlog_ms: 0,
        out: "BENCH_server.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--rate" => {
                args.rate_rps = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--slowlog-ms" => {
                args.slowlog_ms = value("--slowlog-ms")?
                    .parse()
                    .map_err(|e| format!("--slowlog-ms: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err("usage: loadgen [--clients N] [--requests N] [--rate RPS] \
                     [--slowlog-ms N] [--out FILE]"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.clients == 0 || args.requests == 0 || args.rate_rps == 0 {
        return Err("--clients, --requests and --rate must be positive".into());
    }
    Ok(args)
}

/// One phase's merged latency samples and wall clock.
struct Phase {
    name: &'static str,
    latencies_ns: Vec<u64>,
    errors: u64,
    wall: Duration,
}

impl Phase {
    fn new(name: &'static str, mut latencies_ns: Vec<u64>, errors: u64, wall: Duration) -> Phase {
        latencies_ns.sort_unstable();
        Phase {
            name,
            latencies_ns,
            errors,
            wall,
        }
    }

    fn requests(&self) -> u64 {
        self.latencies_ns.len() as u64
    }

    /// Exact percentile over the sorted samples (nearest-rank).
    fn percentile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = ((q * (self.latencies_ns.len() - 1) as f64).round()) as usize;
        self.latencies_ns[rank.min(self.latencies_ns.len() - 1)]
    }

    fn throughput_rps(&self) -> f64 {
        self.requests() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"errors\": {}, \"wall_ns\": {}, \"throughput_rps\": {:.2}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
            self.requests(),
            self.errors,
            self.wall.as_nanos(),
            self.throughput_rps(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.95),
            self.percentile_ns(0.99),
        )
    }
}

fn expect_ok(reply: &Reply, what: &str) {
    assert!(reply.is_ok(), "{what} must succeed, got {reply:?}");
}

/// One point of the pipelining depth sweep. Latency samples are
/// per-*burst* round-trips (send `depth` requests, read `depth`
/// replies), so the depth-1 point is directly comparable to the closed
/// phase while deeper points measure the amortized batch.
struct PipelinePoint {
    depth: usize,
    requests: u64,
    errors: u64,
    burst_ns: Vec<u64>,
    wall: Duration,
}

impl PipelinePoint {
    fn percentile_ns(&self, q: f64) -> u64 {
        if self.burst_ns.is_empty() {
            return 0;
        }
        let rank = ((q * (self.burst_ns.len() - 1) as f64).round()) as usize;
        self.burst_ns[rank.min(self.burst_ns.len() - 1)]
    }

    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"depth\": {}, \"requests\": {}, \"errors\": {}, \"wall_ns\": {}, \
             \"throughput_rps\": {:.2}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
            self.depth,
            self.requests,
            self.errors,
            self.wall.as_nanos(),
            self.throughput_rps(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.95),
            self.percentile_ns(0.99),
        )
    }
}

/// Phase 4 (one sweep point): M clients, each keeping `depth` requests
/// in flight on a single connection.
fn run_pipeline(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    depth: usize,
) -> PipelinePoint {
    let queries = serving_queries();
    let bursts = requests.div_ceil(depth);
    let started = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = &queries;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut burst_ns = Vec::with_capacity(bursts);
                    for b in 0..bursts {
                        let burst: Vec<Request> = (0..depth)
                            .map(|k| {
                                Request::Query(
                                    queries[(c + b * depth + k) % queries.len()].to_string(),
                                )
                            })
                            .collect();
                        let t = Instant::now();
                        let replies = client.pipeline(&burst).expect("burst round-trips");
                        burst_ns.push(t.elapsed().as_nanos() as u64);
                        assert_eq!(replies.len(), depth, "a reply per request, in order");
                        for (reply, request) in replies.iter().zip(&burst) {
                            expect_ok(reply, &request.render());
                        }
                    }
                    client.quit().expect("client quits");
                    burst_ns
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let wall = started.elapsed();
    let mut burst_ns = per_client.concat();
    burst_ns.sort_unstable();
    PipelinePoint {
        depth,
        requests: (clients * bursts * depth) as u64,
        errors: 0,
        burst_ns,
        wall,
    }
}

/// Catalog size for the sharded phase. Every committed write publishes
/// a copy-on-write clone of the owning engine's catalog maps, so the
/// per-write publication cost is O(relations on that shard) — the
/// serving-scale cost that hash-partitioning divides by the shard
/// count.
const SHARDED_RELATIONS: usize = 4800;

/// Relations the read mix touches (spread across shards by the hash).
const SHARDED_READ_SPAN: usize = 8;

/// The serving mix: one committed write per this many reads, all
/// driven closed-loop from a single client. The same statement
/// sequence runs at every shard count; only the per-write publication
/// cost changes with the partitioning.
const SHARDED_WRITE_EVERY: usize = 50;

/// Reads per shard count (writes = reads / SHARDED_WRITE_EVERY).
const SHARDED_READS: usize = 100_000;

/// The serving world plus a serving-scale catalog of hash-distributed
/// relations (domain DDL broadcasts; each relation lands on one shard).
fn sharded_world() -> String {
    let mut script = String::from(serving_bootstrap());
    for r in 0..SHARDED_RELATIONS {
        script.push_str(&format!("CREATE RELATION Part{r} (Creature: Animal);\n"));
    }
    script
}

/// Cheap single-statement reads over the distributed relations.
fn sharded_queries() -> Vec<String> {
    let mut out = Vec::new();
    for r in 0..SHARDED_READ_SPAN {
        out.push(format!("HOLDS Part{r} (Tweety);"));
        out.push(format!("COUNT Part{r};"));
        out.push(format!("HOLDS Part{r} (Paul);"));
        out.push(format!("CHECK Part{r};"));
    }
    out
}

/// Sharded phase: one closed-loop client drives a fixed serving mix —
/// [`SHARDED_READS`] single-statement reads with a committed write
/// every [`SHARDED_WRITE_EVERY`]th request — against the in-process
/// `ShardedEngine` coordinator (the single-process sharded serving
/// tier), entirely through [`ExecutorHandle`]. The statement sequence
/// is byte-identical at every shard count, so the phase isolates what
/// partitioning changes: each committed write publishes a
/// copy-on-write clone of the owning engine's catalog maps, and
/// sharding shrinks that clone from the whole catalog to the owning
/// shard's slice. The phase reports read throughput over the run's
/// wall clock (write time included — that is the cost being measured);
/// the 1-shard run of the identical workload is the baseline the
/// validator gates the 4-shard point against. The driver is
/// single-threaded on purpose: no pacing or scheduler fairness is
/// involved, so the comparison is deterministic. (The socket tier is
/// exercised by the other phases; this one isolates the coordinator.)
fn run_sharded(name: &'static str, shards: usize) -> Phase {
    let coordinator = ShardedEngine::new(shards);
    ExecutorHandle::execute(&coordinator, &sharded_world()).expect("sharded bootstrap");
    // Sanity: the read span really is spread over the shards (FNV over
    // the Part names covers every shard at 4).
    let owners: std::collections::BTreeSet<usize> = (0..SHARDED_READ_SPAN)
        .map(|r| coordinator.owner_of(&format!("Part{r}")))
        .collect();
    assert!(
        shards == 1 || owners.len() > 1,
        "read span landed on one shard; widen SHARDED_READ_SPAN"
    );
    let queries = sharded_queries();
    let mut latencies = Vec::with_capacity(SHARDED_READS);
    let mut writes = 0u64;
    let started = Instant::now();
    for k in 0..SHARDED_READS {
        if k % SHARDED_WRITE_EVERY == 0 {
            // The write walks the catalog in assert/retract cycles so
            // every shard keeps taking publications.
            let rel = (writes / 2) as usize % SHARDED_RELATIONS;
            let script = if writes.is_multiple_of(2) {
                format!("ASSERT Part{rel} (Tweety);")
            } else {
                format!("RETRACT Part{rel} (Tweety);")
            };
            ExecutorHandle::execute(&coordinator, &script).expect("serving write lands");
            writes += 1;
        }
        let script = &queries[k % queries.len()];
        let t = Instant::now();
        let out = coordinator
            .execute_read(script, 0)
            .expect("read round-trips");
        latencies.push(t.elapsed().as_nanos() as u64);
        assert_eq!(out.len(), 1, "one response per read");
    }
    let wall = started.elapsed();
    Phase::new(name, latencies, 0, wall)
}

/// Phase 1: replay the serving write mix through one connection.
fn run_writes(addr: std::net::SocketAddr) -> Phase {
    let mut client = Client::connect(addr).expect("writer connects");
    let writes = serving_writes();
    let mut latencies = Vec::with_capacity(writes.len());
    let started = Instant::now();
    for script in &writes {
        let t = Instant::now();
        let reply = client.query(script).expect("write round-trips");
        expect_ok(&reply, script);
        latencies.push(t.elapsed().as_nanos() as u64);
    }
    let wall = started.elapsed();
    client.quit().expect("writer quits");
    Phase::new("writes", latencies, 0, wall)
}

/// Phase 2: M clients in closed loop, each issuing its next query as
/// soon as the previous reply lands.
fn run_closed(addr: std::net::SocketAddr, clients: usize, requests: usize) -> Phase {
    let queries = serving_queries();
    let started = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = &queries;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut latencies = Vec::with_capacity(requests);
                    for k in 0..requests {
                        let script = queries[(c + k) % queries.len()];
                        let t = Instant::now();
                        let reply = client.query(script).expect("query round-trips");
                        expect_ok(&reply, script);
                        latencies.push(t.elapsed().as_nanos() as u64);
                    }
                    client.quit().expect("client quits");
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let wall = started.elapsed();
    Phase::new("closed", per_client.concat(), 0, wall)
}

/// Phase 3: requests released on a fixed schedule, latency measured
/// from the scheduled release time (queueing delay included).
fn run_rate(addr: std::net::SocketAddr, clients: usize, requests: usize, rate_rps: u64) -> Phase {
    let queries = serving_queries();
    // Each client owns an even slice of the offered rate.
    let per_client_interval = Duration::from_secs_f64(clients as f64 / rate_rps as f64);
    let started = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = &queries;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    // Stagger client start offsets across one interval
                    // so the aggregate arrival process is smooth.
                    let base =
                        Instant::now() + per_client_interval.mul_f64(c as f64 / clients as f64);
                    let mut latencies = Vec::with_capacity(requests);
                    for k in 0..requests {
                        let scheduled = base + per_client_interval.mul_f64(k as f64);
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let script = queries[(c + k) % queries.len()];
                        let reply = client.query(script).expect("query round-trips");
                        expect_ok(&reply, script);
                        latencies.push(scheduled.elapsed().as_nanos() as u64);
                    }
                    client.quit().expect("client quits");
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let wall = started.elapsed();
    Phase::new("rate", per_client.concat(), 0, wall)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    clear_shared_caches();

    let engine = Engine::new();
    engine.execute(serving_bootstrap()).expect("bootstrap runs");
    let handle = Server::start(
        // Engine handles share state, so the loadgen keeps one to read
        // the final epoch out-of-band.
        engine.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: args.clients + 4,
            read_timeout: Duration::from_secs(30),
            slowlog_threshold: Duration::from_millis(args.slowlog_ms),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    println!(
        "loadgen: {} clients x {} requests against {addr} (rate phase at {} rps)",
        args.clients, args.requests, args.rate_rps
    );

    let writes = run_writes(addr);
    let closed = run_closed(addr, args.clients, args.requests);
    let rate = run_rate(addr, args.clients, args.requests, args.rate_rps);
    let pipeline: Vec<PipelinePoint> = PIPELINE_DEPTHS
        .iter()
        .map(|&depth| run_pipeline(addr, args.clients, args.requests, depth))
        .collect();
    let sharded_1 = run_sharded("sharded_1", 1);
    let sharded_4 = run_sharded("sharded_4", 4);

    // Drive the telemetry verbs over the wire as part of the workload:
    // obs builds must serve them, obs-off builds must refuse them with
    // the stable `unsupported` kind.
    let mut probe = Client::connect(addr).expect("probe connects");
    let slowlog_wire_entries = {
        let metrics_prom = probe
            .metrics(MetricsFormat::Prometheus)
            .expect("METRICS PROM");
        let metrics_json = probe.metrics(MetricsFormat::Json).expect("METRICS JSON");
        let slowlog = probe.slowlog(Some(10)).expect("SLOWLOG");
        if cfg!(feature = "obs") {
            expect_ok(&metrics_prom, "METRICS PROM");
            expect_ok(&metrics_json, "METRICS JSON");
            match &slowlog {
                Reply::Ok(parts) => parts.len() as u64,
                other => panic!("SLOWLOG must succeed, got {other:?}"),
            }
        } else {
            for (reply, what) in [
                (&metrics_prom, "METRICS PROM"),
                (&metrics_json, "METRICS JSON"),
                (&slowlog, "SLOWLOG"),
            ] {
                match reply {
                    Reply::Err { kind, .. } if kind == "unsupported" => {}
                    other => panic!("{what} must be ERR unsupported without obs, got {other:?}"),
                }
            }
            0
        }
    };
    probe.quit().expect("probe quits");

    let stats = handle.stats();
    println!(
        "\n{:>7} {:>9} {:>7} {:>12} {:>11} {:>11} {:>11}",
        "phase", "requests", "errors", "rps", "p50", "p95", "p99"
    );
    for p in [&writes, &closed, &rate, &sharded_1, &sharded_4] {
        println!(
            "{:>7} {:>9} {:>7} {:>12.1} {:>11} {:>11} {:>11}",
            p.name,
            p.requests(),
            p.errors,
            p.throughput_rps(),
            hrdm_obs::trace::fmt_ns(p.percentile_ns(0.50)),
            hrdm_obs::trace::fmt_ns(p.percentile_ns(0.95)),
            hrdm_obs::trace::fmt_ns(p.percentile_ns(0.99)),
        );
    }
    for p in &pipeline {
        println!(
            "{:>7} {:>9} {:>7} {:>12.1} {:>11} {:>11} {:>11}",
            format!("pipe@{}", p.depth),
            p.requests,
            p.errors,
            p.throughput_rps(),
            hrdm_obs::trace::fmt_ns(p.percentile_ns(0.50)),
            hrdm_obs::trace::fmt_ns(p.percentile_ns(0.95)),
            hrdm_obs::trace::fmt_ns(p.percentile_ns(0.99)),
        );
    }
    println!(
        "\nserver: {} queries, {} bytes in, {} bytes out, {} slowlog entries over the wire",
        stats.queries.load(Ordering::Relaxed),
        stats.bytes_in.load(Ordering::Relaxed),
        stats.bytes_out.load(Ordering::Relaxed),
        slowlog_wire_entries,
    );

    let mut json = String::from("{\n  \"schema_version\": 1,\n  \"label\": \"server\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"clients\": {}, \"requests_per_client\": {}, \"rate_rps\": {}, \
         \"slowlog_ms\": {}, \"obs\": {}}},\n",
        args.clients,
        args.requests,
        args.rate_rps,
        args.slowlog_ms,
        cfg!(feature = "obs"),
    ));
    json.push_str("  \"phases\": {\n");
    let phases = [&writes, &closed, &rate, &sharded_1, &sharded_4];
    for (k, p) in phases.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {}{}\n",
            p.name,
            p.to_json(),
            if k + 1 < phases.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"pipeline\": [\n");
    for (k, p) in pipeline.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            p.to_json(),
            if k + 1 < pipeline.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"server\": {{\"queries\": {}, \"errors\": {}, \"busy_rejected\": {}, \
         \"timeouts\": {}, \"protocol_errors\": {}, \"bytes_in\": {}, \"bytes_out\": {}, \
         \"epoch\": {}, \"slowlog_entries\": {}}}\n",
        stats.queries.load(Ordering::Relaxed),
        stats.errors.load(Ordering::Relaxed),
        stats.busy_rejected.load(Ordering::Relaxed),
        stats.timeouts.load(Ordering::Relaxed),
        stats.protocol_errors.load(Ordering::Relaxed),
        stats.bytes_in.load(Ordering::Relaxed),
        stats.bytes_out.load(Ordering::Relaxed),
        engine.epoch(),
        slowlog_wire_entries,
    ));
    json.push_str("}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);

    handle.shutdown();
}
