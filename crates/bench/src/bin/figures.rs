//! Print every worked-figure reproduction (EX1–EX12 in DESIGN.md), the
//! EXPLAIN renderings of the worked queries, and the per-node TRACE
//! report on both engines, followed by the engine counters the run
//! accumulated.
//!
//! Run with `cargo run -p hrdm-bench --bin figures`. The reports come
//! from [`hrdm_bench::figures`] so the golden tests in
//! `tests/paper_scenarios.rs` snapshot exactly what this binary prints.
//! The stats trailer goes through the stable-field renderer (counters,
//! no wall times) so two runs diff cleanly; its row/node counters are
//! where the explicate/select fusion's row reduction shows up
//! engine-wide.
//!
//! Export flags:
//!
//! * `--chrome-trace PATH` — write the whole run's span tree as a
//!   Chrome `chrome://tracing` / Perfetto JSON file;
//! * `--obs-json PATH` — write the metrics registry (counters, gauges,
//!   latency quantiles) as `BENCH_obs.json`-style JSON.

fn main() {
    let mut obs_json: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--obs-json" => obs_json = Some(args.next().expect("--obs-json needs a path")),
            "--chrome-trace" => {
                chrome = Some(args.next().expect("--chrome-trace needs a path"));
            }
            other => {
                eprintln!("unknown flag {other} (known: --obs-json PATH, --chrome-trace PATH)");
                std::process::exit(2);
            }
        }
    }

    hrdm_core::stats::reset();
    let ((), trace) = hrdm_obs::trace::capture("figures", || {
        print!("{}", hrdm_bench::figures::report());
        print!("{}", hrdm_bench::figures::explain_report());
        print!("{}", hrdm_bench::figures::trace_report());
    });
    println!(
        "\nengine stats for this run:\n{}",
        hrdm_core::stats::snapshot().render_stable()
    );

    if let Some(path) = chrome {
        std::fs::write(&path, hrdm_obs::chrome::render(&trace)).expect("write chrome trace");
        eprintln!("chrome trace written to {path}");
    }
    if let Some(path) = obs_json {
        hrdm_bench::fixtures::export_obs_json("figures", &path).expect("write obs json");
        eprintln!("metrics registry written to {path}");
    }
}
