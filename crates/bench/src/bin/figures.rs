//! Print every worked-figure reproduction (EX1–EX11 in DESIGN.md),
//! followed by the engine counters the run accumulated.
//!
//! Run with `cargo run -p hrdm-bench --bin figures`. The report itself
//! comes from [`hrdm_bench::figures::report`] so the golden test in
//! `tests/paper_scenarios.rs` snapshots exactly what this binary prints
//! (the stats trailer is run-dependent and deliberately not part of the
//! snapshot).

fn main() {
    hrdm_core::stats::reset();
    print!("{}", hrdm_bench::figures::report());
    println!(
        "\nengine stats for this run:\n{}",
        hrdm_core::stats::snapshot()
    );
}
