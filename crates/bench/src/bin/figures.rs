//! Print every worked-figure reproduction (EX1–EX12 in DESIGN.md) and
//! the EXPLAIN renderings of the worked queries, followed by the engine
//! counters the run accumulated.
//!
//! Run with `cargo run -p hrdm-bench --bin figures`. The reports come
//! from [`hrdm_bench::figures`] so the golden tests in
//! `tests/paper_scenarios.rs` snapshot exactly what this binary prints.
//! The stats trailer is run-dependent (wall times) and deliberately not
//! part of either snapshot; its row/node counters are where the
//! explicate/select fusion's row reduction shows up engine-wide.

fn main() {
    hrdm_core::stats::reset();
    print!("{}", hrdm_bench::figures::report());
    print!("{}", hrdm_bench::figures::explain_report());
    println!(
        "\nengine stats for this run:\n{}",
        hrdm_core::stats::snapshot()
    );
}
