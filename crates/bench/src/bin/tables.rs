//! Print the B1–B9 experiment tables (DESIGN.md §3).
//!
//! Run with `cargo run -p hrdm-bench --release --bin tables`. Each
//! section measures one quantitative claim from the paper's prose
//! against the flat baseline engine and prints a summary table;
//! EXPERIMENTS.md records the expected shapes. Timings use wall-clock
//! medians over several repetitions — the Criterion benches in
//! `crates/bench/benches/` are the rigorous versions of the same
//! measurements.

use std::sync::Arc;
use std::time::Instant;

use hrdm_bench::workloads::*;
use hrdm_core::consolidate::consolidate;
use hrdm_core::explicate::explicate_all;
use hrdm_core::prelude::*;
use hrdm_hierarchy::gen::balanced_tree;
use hrdm_hierarchy::ProductHierarchy;

fn heading(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Median wall time of `f` over `reps` runs, in nanoseconds.
fn time_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    b1_storage_compression();
    b2_membership_join();
    b3_consolidate();
    b4_explicate();
    b5_preemption();
    b6_product_growth();
    b7_conflict_detection();
    b8_discovery();
    b9_datalog();
    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured record.");
}

/// B1 — §1 storage claim: a class tuple replaces its extension.
fn b1_storage_compression() {
    heading("B1 — Storage: hierarchical tuples vs flat extension (§1)");
    println!(
        "{:>9} {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>7}",
        "members", "exc", "hier tuples", "flat tuples", "hier bytes", "flat bytes", "ratio"
    );
    for members in [100usize, 1_000, 10_000, 100_000] {
        for exceptions in [0usize, 10] {
            let exceptions = exceptions.min(members);
            let w = class_workload(members, exceptions);
            let flat_table = explicated_table(&w);
            // Hierarchical bytes: same 4-byte-per-value encoding.
            let hier_bytes = w.relation.len() * 4;
            let flat_bytes = flat_table.heap().bytes_used();
            println!(
                "{:>9} {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>6.0}x",
                members,
                exceptions,
                w.relation.len(),
                flat_table.len(),
                hier_bytes,
                flat_bytes,
                flat_bytes as f64 / hier_bytes as f64
            );
        }
    }
    println!("shape: hierarchical storage is O(exceptions), flat is O(members).");
}

/// B2 — footnote 1: binding lookup vs membership join.
fn b2_membership_join() {
    heading("B2 — Query: hierarchical binding vs footnote-1 join (fn. 1)");
    println!(
        "{:>9} | {:>14} {:>14} {:>14} | {:>14} {:>14}",
        "members",
        "hier point ns",
        "join point ns",
        "flat point ns",
        "hier list ns",
        "join list ns"
    );
    for members in [100usize, 1_000, 10_000] {
        let w = class_workload(members, members / 100);
        let baseline = footnote1_baseline(&w);
        let flat_table = explicated_table(&w);
        // Probe the middle instance.
        let probe_name = format!("i0_{}", members / 2);
        let probe_item = w.relation.item(&[&probe_name]).expect("generated name");
        let probe_id = probe_item.component(0).index() as u32;

        let hier_point = time_ns(9, || w.relation.holds(&probe_item));
        let join_point = time_ns(9, || baseline.holds(probe_id));
        let flat_point = time_ns(9, || !flat_table.lookup(0, probe_id).is_empty());
        let hier_list = time_ns(5, || hrdm_core::flat::flatten(&w.relation).len());
        let join_list = time_ns(5, || baseline.list().len());
        println!(
            "{:>9} | {:>14} {:>14} {:>14} | {:>14} {:>14}",
            members, hier_point, join_point, flat_point, hier_list, join_list
        );
    }
    println!("shape: binding lookups stay flat in |extension|; the join pays O(extension)");
    println!("build/probe work per query, and the flat index pays O(extension) storage (B1).");

    println!("\ninheritance-chain depth sweep (point binding through a depth-d chain):");
    println!("{:>8} | {:>14}", "depth", "hier point ns");
    for depth in [3usize, 6, 9, 12] {
        let (relation, leaf) = depth_workload(depth);
        let ns = time_ns(9, || relation.holds(&leaf));
        println!("{:>8} | {:>14}", depth, ns);
    }
    println!("shape: depth-insensitive — binding uses the cached reachability matrix,");
    println!("not a chain walk.");
}

/// B3 — §3.3.1: consolidation cost and minimality.
fn b3_consolidate() {
    heading("B3 — Consolidate: cascading topological elimination (§3.3.1)");
    println!(
        "{:>8} {:>10} | {:>8} {:>10} {:>8} {:>12} | {:>12}",
        "tuples", "redundant", "removed", "first-pass", "reverse", "minimal size", "median ns"
    );
    for (classes, redundant) in [(4usize, 2usize), (8, 4), (16, 8), (16, 16)] {
        let r = consolidation_workload(3, 4, classes, redundant);
        let first_pass = hrdm_core::consolidate::immediately_redundant(&r).len();
        let c = consolidate(&r);
        let rev = hrdm_core::consolidate::consolidate_reverse_order(&r);
        let ns = time_ns(5, || consolidate(&r).relation.len());
        println!(
            "{:>8} {:>10} | {:>8} {:>10} {:>8} {:>12} | {:>12}",
            r.len(),
            classes * redundant,
            c.removed.len(),
            first_pass,
            rev.removed.len(),
            c.relation.len(),
            ns
        );
        assert!(hrdm_core::flat::equivalent(&r, &c.relation));
        assert!(hrdm_core::flat::equivalent(&r, &rev.relation));
    }
    println!("shape: topological cascade (removed ≥ first-pass, ≥ reverse-order)");
    println!("reaches the unique minimum; extension always preserved either way.");
}

/// B4 — §3.3.2: explication is linear in the extension.
fn b4_explicate() {
    heading("B4 — Explicate: cost linear in the extension (§3.3.2)");
    println!(
        "{:>10} {:>10} | {:>12} | {:>12} {:>14}",
        "fanout", "depth", "extension", "median ns", "ns / atom"
    );
    for (fanout, depth) in [(4usize, 3usize), (4, 4), (4, 5), (4, 6)] {
        let r = explication_workload(fanout, depth);
        let flat = explicate_all(&r);
        let ns = time_ns(5, || explicate_all(&r).len());
        println!(
            "{:>10} {:>10} | {:>12} | {:>12} {:>14.1}",
            fanout,
            depth,
            flat.len(),
            ns,
            ns as f64 / flat.len().max(1) as f64
        );
    }
    println!("shape: ns/atom roughly constant — explication is output-linear.");
}

/// B5 — Appendix: preemption semantics ablation.
fn b5_preemption() {
    heading("B5 — Preemption ablation: conflicts and binding cost (Appendix)");
    println!(
        "{:>14} | {:>10} {:>14} | {:>12}",
        "mode", "conflicts", "consistent", "bind ns"
    );
    let r = dag_relation(4, 8, 3, 12, 7);
    let atoms: Vec<Item> = r
        .schema()
        .domain(0)
        .instances()
        .map(|n| Item::new(vec![n]))
        .collect();
    for mode in Preemption::ALL {
        let mut rm = r.clone();
        rm.set_preemption(mode);
        let conflicts = hrdm_core::conflict::find_conflicts(&rm).len();
        let ns = time_ns(5, || {
            atoms
                .iter()
                .map(|a| rm.bind(a).truth().is_some() as usize)
                .sum::<usize>()
        });
        println!(
            "{:>14} | {:>10} {:>14} | {:>12}",
            mode.to_string(),
            conflicts,
            conflicts == 0,
            ns
        );
    }
    println!("shape: off-path ≤ on-path ≤ no-preemption in conflict count —");
    println!("stronger preemption resolves more inheritance ambiguity automatically.");
}

/// B6 — §2.2: no geometric growth for multi-attribute hierarchies.
fn b6_product_growth() {
    heading("B6 — Product hierarchies: lazy vs materialized size (§2.2)");
    println!(
        "{:>6} | {:>16} {:>16} | {:>16} {:>14}",
        "arity", "stored nodes", "stored edges", "product nodes", "product edges"
    );
    for arity in 1usize..=4 {
        let domains: Vec<Arc<hrdm_hierarchy::HierarchyGraph>> =
            (0..arity).map(|_| Arc::new(balanced_tree(3, 3))).collect();
        let stored_nodes: usize = domains.iter().map(|g| g.len()).sum();
        let stored_edges: usize = domains.iter().map(|g| g.edge_count()).sum();
        let p = ProductHierarchy::new(domains);
        println!(
            "{:>6} | {:>16} {:>16} | {:>16} {:>14}",
            arity,
            stored_nodes,
            stored_edges,
            p.node_count(),
            p.edge_count()
        );
    }
    println!("shape: stored size grows linearly in arity; the (never materialized)");
    println!("product grows geometrically — the §2.2 'no attendant geometric growth'.");
}

/// B7 — §3.1: conflict detection vs shared descendants.
fn b7_conflict_detection() {
    heading("B7 — Conflict detection cost vs multiple inheritance (§3.1)");
    println!(
        "{:>12} | {:>10} | {:>12}",
        "max parents", "conflicts", "detect ns"
    );
    for max_parents in [1usize, 2, 3, 4] {
        let r = dag_relation(4, 8, max_parents, 12, 11);
        let conflicts = hrdm_core::conflict::find_conflicts(&r).len();
        let ns = time_ns(5, || hrdm_core::conflict::find_conflicts(&r).len());
        println!("{:>12} | {:>10} | {:>12}", max_parents, conflicts, ns);
    }
    println!("shape: trees (1 parent) cannot conflict; conflicts and detection work");
    println!("grow with DAG density (more shared descendants to audit).");
}

/// B8 — §4: mechanical hierarchy discovery.
fn b8_discovery() {
    heading("B8 — Discovery: storage saved by mechanical organization (§4)");
    println!(
        "{:>10} | {:>12} {:>12} {:>9} {:>12} | {:>8}",
        "coverage", "flat tuples", "hier tuples", "classes", "exceptions", "ratio"
    );
    for coverage in [100usize, 90, 70, 50, 20] {
        let flat = discovery_workload(5, 40, coverage);
        let d = hrdm_core::discover::discover(&flat);
        println!(
            "{:>9}% | {:>12} {:>12} {:>9} {:>12} | {:>7.1}x",
            coverage,
            d.stats.flat_tuples,
            d.stats.hierarchical_tuples,
            d.stats.classes_used,
            d.stats.exceptions,
            d.stats.flat_tuples as f64 / d.stats.hierarchical_tuples.max(1) as f64
        );
        assert_eq!(
            hrdm_core::flat::flatten(&d.relation).atoms(),
            flat.atoms(),
            "discovery must be lossless"
        );
    }
    println!("shape: compression is large at high coverage (few exceptions) and");
    println!("degrades to 1x as membership becomes sparse — greedy min-cover heuristic.");
}

/// B9 — §2.1: Datalog inference over hierarchical EDB.
fn b9_datalog() {
    heading("B9 — Datalog: transitive closure over hierarchical EDB (§2.1)");
    println!("{:>8} | {:>10} | {:>14}", "chain n", "|path|", "eval ns");
    for n in [10usize, 30, 60] {
        let (engine, program) = datalog_workload(n);
        let out = engine.run(&program).expect("stratifiable program");
        let ns = time_ns(3, || engine.run(&program).expect("stratifiable").len());
        println!("{:>8} | {:>10} | {:>14}", n, out["path"].len(), ns);
    }
    println!("shape: |path| = n(n-1)/2; semi-naive evaluation scales with the output.");
}
