//! Incremental view maintenance vs full recomputation; emits
//! `BENCH_ivm.json`.
//!
//! Two catalog sizes, same shape: one relation `R` holding class-level
//! rows plus instance exceptions, with a live `LET V = CONSOLIDATE R`
//! view. The *incremental* figure times one committed single-row write
//! through the engine — parse, apply, differential view maintenance,
//! snapshot publication. The *full* figure times what the fallback path
//! would do instead: re-deriving the view from the whole catalog. A
//! maintained view's update cost must track the delta (one row), not
//! the catalog, so the incremental number should stay roughly flat
//! while the full number grows with the fixture —
//! `tools/validate_bench.py` gates exactly that.
//!
//! Run with `cargo run -p hrdm-bench --release --bin ivm`.

use std::time::Instant;

use hrdm_bench::fixtures::clear_shared_caches;
use hrdm_core::prelude::*;
use hrdm_hql::Engine;

const REPS: usize = 7;

/// Median wall time of `f(rep)` over [`REPS`] runs, in nanoseconds.
fn time_ns<T>(mut f: impl FnMut(usize) -> T) -> u64 {
    let mut samples: Vec<u128> = (0..REPS)
        .map(|rep| {
            let t = Instant::now();
            std::hint::black_box(f(rep));
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as u64
}

struct Figure {
    name: &'static str,
    catalog_rows: u64,
    incremental_ns: u64,
    full_ns: u64,
    delta_rows: u64,
}

impl Figure {
    fn speedup(&self) -> f64 {
        self.full_ns as f64 / self.incremental_ns.max(1) as f64
    }
}

/// Build an engine whose catalog holds `classes` class-level rows and
/// `exceptions` instance-level exception rows in `R`, bind the live
/// view, then time one-row updates against full re-derivation.
fn run_fixture(name: &'static str, classes: usize, exceptions: usize) -> Figure {
    let engine = Engine::new();
    let mut script = String::from("CREATE DOMAIN D;");
    for c in 0..classes {
        script.push_str(&format!("CREATE CLASS c{c} UNDER D;"));
    }
    for e in 0..exceptions {
        script.push_str(&format!("CREATE INSTANCE x{e} OF c{};", e % classes));
    }
    // Spare instances: each timed repetition asserts a fresh row so no
    // run measures a no-op.
    for s in 0..REPS {
        script.push_str(&format!("CREATE INSTANCE s{s} OF c0;"));
    }
    script.push_str("CREATE RELATION R (V: D);");
    engine.execute(&script).expect("catalog builds");

    let mut asserts = String::new();
    for c in 0..classes {
        asserts.push_str(&format!("ASSERT R (ALL c{c});"));
    }
    for e in 0..exceptions {
        asserts.push_str(&format!("ASSERT NOT R (x{e});"));
    }
    engine.execute(&asserts).expect("catalog rows assert");
    // Bind the view only after the bulk load: maintenance cost is the
    // figure, not load amplification.
    engine
        .execute("LET V = CONSOLIDATE R;")
        .expect("view binds");
    let catalog_rows = engine.snapshot().relation("R").expect("R exists").len() as u64;

    // Incremental: one committed single-row write, live view maintained
    // differentially (a fresh instance exception each repetition).
    let incremental_ns = time_ns(|rep| {
        engine
            .execute(&format!("ASSERT NOT R (s{rep});"))
            .expect("update commits")
    });
    let (_, delta) = engine.last_delta().expect("write published");
    let delta_rows = delta.row_count() as u64;

    // Full: what the fallback does — re-derive the view over the whole
    // catalog (plan execution ends in the root consolidate).
    let snapshot = engine.snapshot();
    let r = snapshot.relation("R").expect("R exists").clone();
    let plan = LogicalPlan::scan("R", r);
    let full_ns = time_ns(|_| plan.execute().expect("derivation succeeds"));

    Figure {
        name,
        catalog_rows,
        incremental_ns,
        full_ns,
        delta_rows,
    }
}

fn main() {
    clear_shared_caches();

    let small = run_fixture("small", 48, 400);
    let large = run_fixture("large", 48, 4_000);

    println!(
        "{:>6} {:>9} {:>15} {:>13} {:>9} {:>11}",
        "fix", "rows", "incremental_ns", "full_ns", "speedup", "delta_rows"
    );
    for f in [&small, &large] {
        println!(
            "{:>6} {:>9} {:>15} {:>13} {:>8.2}x {:>11}",
            f.name,
            f.catalog_rows,
            f.incremental_ns,
            f.full_ns,
            f.speedup(),
            f.delta_rows
        );
    }
    let catalog_ratio = large.catalog_rows as f64 / small.catalog_rows as f64;
    let incremental_ratio = large.incremental_ns as f64 / small.incremental_ns.max(1) as f64;
    let full_ratio = large.full_ns as f64 / small.full_ns.max(1) as f64;
    println!(
        "\ncatalog grew {catalog_ratio:.1}x; incremental cost grew \
         {incremental_ratio:.2}x, full recomputation {full_ratio:.2}x."
    );

    let mut json = String::from("{\n  \"schema_version\": 1,\n  \"label\": \"ivm\",\n");
    json.push_str("  \"figures\": {\n");
    for (k, f) in [&small, &large].iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"catalog_rows\": {}, \"incremental_ns\": {}, \"full_ns\": {}, \"speedup\": {:.4}, \"delta_rows\": {}}}{}\n",
            f.name,
            f.catalog_rows,
            f.incremental_ns,
            f.full_ns,
            f.speedup(),
            f.delta_rows,
            if k == 0 { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"scaling\": {{\"catalog_ratio\": {catalog_ratio:.4}, \"incremental_ratio\": {incremental_ratio:.4}, \"full_ratio\": {full_ratio:.4}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_ivm.json", &json).expect("write BENCH_ivm.json");
    println!("wrote BENCH_ivm.json");
}
