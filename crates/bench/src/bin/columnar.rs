//! B2–B4 tuple-vs-batch comparison for the columnar layer; emits
//! `BENCH_columnar.json`.
//!
//! Each figure times the same logical plan on the tuple-at-a-time
//! executor and on the batch-at-a-time columnar executor (steady state:
//! one warm-up run per engine, then the median of several repetitions —
//! the batch layer's shared intersection cache is part of what is being
//! measured). The cost model is *measured*: a warm-up run populates the
//! obs histograms, [`CostModel::from_registry`] derives its
//! calibration from them, and the JSON records which access paths and
//! join orders it chose. `tools/validate_bench.py` schema-checks the
//! artifact and gates batch ≤ tuple on every figure.
//!
//! Run with `cargo run -p hrdm-bench --release --bin columnar`.

use std::sync::Arc;
use std::time::Instant;

use hrdm_bench::fixtures::clear_shared_caches;
use hrdm_bench::flatplan::{execute_flat, execute_flat_batch, execute_flat_batch_traced};
use hrdm_bench::workloads::{class_workload, explication_workload};
use hrdm_core::batch::execute_batch;
use hrdm_core::cost::{optimize_with_cost, CostModel};
use hrdm_core::prelude::*;

const REPS: usize = 7;

/// Median wall time of `f` over [`REPS`] runs, in nanoseconds.
fn time_ns<T>(mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u128> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as u64
}

struct Figure {
    name: &'static str,
    tuple_ns: u64,
    batch_ns: u64,
    rows: u64,
    access_path: &'static str,
}

impl Figure {
    fn speedup(&self) -> f64 {
        self.tuple_ns as f64 / self.batch_ns.max(1) as f64
    }
}

/// B2 — the §1 point query: one member of a 20 000-instance class (50
/// exceptions), on the flat engines. The volcano baseline materializes
/// a table and filter-scans it; the batch lowering asks the measured
/// cost model, which picks the class-id-keyed sorted index probe.
fn b2_point_select(model: &CostModel) -> Figure {
    let w = class_workload(20_000, 50);
    let plan = LogicalPlan::scan("R", w.relation.clone()).select_eq("D", "i0_10000");

    // Warm both engines (flatten cache, intersection cache).
    let rows = execute_flat(&plan).expect("volcano evaluates");
    let (brows, trace) = execute_flat_batch_traced(&plan, model).expect("batch evaluates");
    assert_eq!(rows, brows, "engines must agree before being timed");
    let access = match trace
        .find("batch.select_eq")
        .and_then(|n| n.field("access"))
    {
        Some("index") => "index",
        _ => "scan",
    };

    let tuple_ns = time_ns(|| execute_flat(&plan).expect("volcano evaluates"));
    let batch_ns = time_ns(|| execute_flat_batch(&plan, model).expect("batch evaluates"));
    Figure {
        name: "B2",
        tuple_ns,
        batch_ns,
        rows: rows.len() as u64,
        access_path: access,
    }
}

/// B3 — a natural join on the hierarchical executors: two relations
/// share only their `D` attribute (a layered DAG), each with its own
/// payload attribute, written big-side-first. The measured cost model
/// commutes the join. The shared column repeats a small dictionary of
/// `D` values across many rows, so the batch executor's
/// dictionary-encoded intersection matrix computes each distinct value
/// pair once where the tuple path recomputes it per row pair.
fn b3_join(model: &CostModel) -> (Figure, u64) {
    let gd = Arc::new(hrdm_hierarchy::gen::balanced_tree(3, 5));
    let gp = Arc::new(hrdm_hierarchy::gen::balanced_tree(5, 3));
    let gq = Arc::new(hrdm_hierarchy::gen::balanced_tree(4, 3));
    // Join keys are mid-depth classes of a tree: a related pair's
    // intersection walks the descendant cone (the expensive part,
    // quadratic in its size) yet always resolves to at most one
    // maximal element, so candidate generation — not the conflict
    // fixpoint — is what the figure measures.
    let d_pool: Vec<_> = gd
        .node_ids()
        .skip(1)
        .filter(|&n| !gd.is_instance(n) && (30..100).contains(&gd.descendants(n).len()))
        .take(24)
        .collect();
    let p_pool: Vec<_> = gp.instances().collect();
    let q_pool: Vec<_> = gq.instances().collect();

    let big_schema = Arc::new(Schema::new(vec![
        Attribute::new("D", gd.clone()),
        Attribute::new("P", gp),
    ]));
    let mut big = HRelation::new(big_schema);
    for k in 0..1000usize {
        let item = Item::new(vec![d_pool[k % d_pool.len()], p_pool[k % p_pool.len()]]);
        let _ = big.insert(Tuple::positive(item));
    }

    let small_schema = Arc::new(Schema::new(vec![
        Attribute::new("D", gd),
        Attribute::new("Q", gq),
    ]));
    let mut small = HRelation::new(small_schema);
    for k in 0..18usize {
        let item = Item::new(vec![d_pool[k % 6], q_pool[k % q_pool.len()]]);
        let _ = small.insert(Tuple::positive(item));
    }
    hrdm_bench::workloads::resolve_positively(&mut small);

    // Big on the left: the measured cost model must commute this.
    let plan = LogicalPlan::scan("Big", big).join(LogicalPlan::scan("Small", small));
    let (costed, rewrites) = optimize_with_cost(&plan, model);
    let commuted = rewrites
        .iter()
        .filter(|r| r.rule == "cost-join-order")
        .count() as u64;

    let tuple = plan.execute().expect("consistent join");
    let batch = execute_batch(&costed).expect("consistent join");
    assert_eq!(
        tuple.relation.iter().collect::<Vec<_>>(),
        batch.relation.iter().collect::<Vec<_>>(),
        "executors must agree before being timed"
    );
    let rows = tuple.relation.len() as u64;

    let tuple_ns = time_ns(|| plan.execute().expect("consistent join"));
    let batch_ns = time_ns(|| execute_batch(&costed).expect("consistent join"));
    (
        Figure {
            name: "B3",
            tuple_ns,
            batch_ns,
            rows,
            access_path: "scan",
        },
        commuted,
    )
}

/// B4 — explicate + select on the hierarchical executors: expand a
/// balanced 4-ary tree, then restrict to one deep subclass. The batch
/// selection memoizes the per-value region intersections that the
/// tuple path recomputes per stored tuple.
fn b4_explicate_select() -> Figure {
    let r = explication_workload(4, 6);
    let graph = r.schema().domain(0);
    let asserted = graph.classes().next().expect("tree has classes");
    let leaf_class = graph
        .descendants(asserted)
        .into_iter()
        .rfind(|&d| !graph.is_instance(d))
        .expect("asserted class has subclasses");
    let plan = LogicalPlan::scan("B4", r)
        .explicate(vec![0])
        .select(Item::new(vec![leaf_class]));

    let tuple = plan.execute().expect("consistent input");
    let batch = execute_batch(&plan).expect("consistent input");
    assert_eq!(
        tuple.relation.iter().collect::<Vec<_>>(),
        batch.relation.iter().collect::<Vec<_>>(),
        "executors must agree before being timed"
    );
    let rows = tuple.relation.len() as u64;

    let tuple_ns = time_ns(|| plan.execute().expect("consistent input"));
    let batch_ns = time_ns(|| execute_batch(&plan).expect("consistent input"));
    Figure {
        name: "B4",
        tuple_ns,
        batch_ns,
        rows,
        access_path: "scan",
    }
}

fn main() {
    clear_shared_caches();

    // Populate the obs histograms so the cost model is measured, not
    // guessed: one representative run through the tuple executor.
    {
        let w = class_workload(2_000, 10);
        let probe = LogicalPlan::scan("warm", w.relation.clone())
            .join(LogicalPlan::scan("warm2", w.relation))
            .select_eq("D", "i0_1000");
        let _ = probe.execute();
    }
    let model = CostModel::from_registry();
    println!(
        "cost model (measured={}): join_pair={:.0}ns node={:.0}ns probe={:.0}ns scan_row={:.0}ns",
        model.measured, model.join_pair_ns, model.node_ns, model.probe_ns, model.scan_row_ns
    );

    let b2 = b2_point_select(&model);
    let (b3, commuted) = b3_join(&model);
    let b4 = b4_explicate_select();

    let index_choices = u64::from(b2.access_path == "index");
    println!(
        "\n{:>4} {:>14} {:>14} {:>9} {:>7} {:>7}",
        "fig", "tuple_ns", "batch_ns", "speedup", "rows", "access"
    );
    for f in [&b2, &b3, &b4] {
        println!(
            "{:>4} {:>14} {:>14} {:>8.2}x {:>7} {:>7}",
            f.name,
            f.tuple_ns,
            f.batch_ns,
            f.speedup(),
            f.rows,
            f.access_path
        );
    }
    println!(
        "\ncost model chose {index_choices} index path(s), commuted {commuted} join order(s)."
    );

    let mut json = String::from("{\n  \"schema_version\": 1,\n  \"label\": \"columnar\",\n");
    json.push_str("  \"figures\": {\n");
    for (k, f) in [&b2, &b3, &b4].iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"tuple_ns\": {}, \"batch_ns\": {}, \"speedup\": {:.4}, \"rows\": {}, \"access_path\": \"{}\"}}{}\n",
            f.name,
            f.tuple_ns,
            f.batch_ns,
            f.speedup(),
            f.rows,
            f.access_path,
            if k + 1 < 3 { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"cost_model\": {{\"measured\": {}, \"index_choices\": {}, \"join_order_commuted\": {}}}\n",
        model.measured, index_choices, commuted
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_columnar.json", &json).expect("write BENCH_columnar.json");
    println!("wrote BENCH_columnar.json");
}
