//! The paper's running examples as reusable fixtures, plus the shared
//! harness helpers (probe construction, cache clearing, stats trailers)
//! the benchmarks used to copy-paste.

use std::sync::Arc;

use hrdm_core::prelude::*;
use hrdm_hierarchy::HierarchyGraph;

use crate::workloads::ClassWorkload;

/// Drop every shared cross-operator cache (the PR-1 subsumption core
/// cache and the hierarchy closure cache) and reset the metrics
/// registry with them. Cold-cache bench ablations call this per
/// iteration so each run pays the full graph construction.
///
/// The reset goes through [`hrdm_core::stats::reset`], which zeroes the
/// whole registry under its lock: the old per-static-counter stores
/// could interleave with a concurrent snapshot and report a hit count
/// from before the reset next to a miss count from after it. The
/// registry sweep also covers the incremental-maintenance family
/// (`ivm.*` — delta rows, node reuse, fallbacks) introduced with live
/// views and the serving-tier family (`server.*` — per-verb latency
/// histograms, byte counters, admission counters); view registries and
/// published deltas themselves are per-engine state with no global
/// residue to clear. The slow-query log is the one piece of serving
/// telemetry outside the registry, so it is cleared alongside.
pub fn clear_shared_caches() {
    hrdm_core::subsumption::clear_cache();
    hrdm_hierarchy::cache::clear();
    hrdm_core::stats::reset();
    hrdm_core::columnar::clear_intersection_cache();
    hrdm_core::intern::reset_for_bench();
    hrdm_obs::slowlog::clear();
}

/// The engine-stats trailer every bench prints after its groups finish,
/// so runs can be compared on operator counters as well as wall time.
/// Rendered through the stable-field renderer — counters only, no wall
/// times — so trailers diff cleanly between runs.
pub fn print_engine_stats(label: &str) {
    println!(
        "\nengine stats after {label}:\n{}",
        hrdm_core::stats::snapshot().render_stable()
    );
}

/// Serialize the whole metrics registry as `BENCH_obs.json` next to the
/// current directory (or at `path` when given). Benches call this after
/// their groups finish so operator counters and latency quantiles ride
/// along with the wall-time numbers.
pub fn export_obs_json(label: &str, path: &str) -> std::io::Result<()> {
    std::fs::write(path, hrdm_obs::metrics::export_json(label))
}

/// The B2 point-query probe: the middle member of the workload's single
/// class, as both the hierarchical item and the flat row id.
pub fn class_probe(w: &ClassWorkload) -> (Item, u32) {
    let name = format!("i0_{}", w.members / 2);
    let item = w.relation.item(&[&name]).expect("generated name");
    let id = item.component(0).index() as u32;
    (item, id)
}

/// Fig. 1a: the flying-creatures taxonomy.
pub fn fig1_taxonomy() -> Arc<HierarchyGraph> {
    let mut g = HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).expect("fresh name");
    let canary = g.add_class("Canary", bird).expect("fresh name");
    g.add_instance("Tweety", canary).expect("fresh name");
    let penguin = g.add_class("Penguin", bird).expect("fresh name");
    let gala = g
        .add_class("Galapagos Penguin", penguin)
        .expect("fresh name");
    let afp = g
        .add_class("Amazing Flying Penguin", penguin)
        .expect("fresh name");
    g.add_instance("Paul", gala).expect("fresh name");
    g.add_instance_multi("Patricia", &[gala, afp])
        .expect("fresh name");
    g.add_instance("Pamela", afp).expect("fresh name");
    g.add_instance("Peter", afp).expect("fresh name");
    Arc::new(g)
}

/// Fig. 1b: the flying-creatures relation over [`fig1_taxonomy`].
pub fn fig1_relation(taxonomy: &Arc<HierarchyGraph>) -> HRelation {
    let schema = Arc::new(Schema::single("Creature", taxonomy.clone()));
    let mut r = HRelation::new(schema);
    r.assert_fact(&["Bird"], Truth::Positive)
        .expect("known names");
    r.assert_fact(&["Penguin"], Truth::Negative)
        .expect("known names");
    r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
        .expect("known names");
    r.assert_fact(&["Peter"], Truth::Positive)
        .expect("known names");
    r
}

/// Fig. 2a/2b: student and teacher hierarchies (with a few instances so
/// selections have extensions to show).
pub fn fig2_graphs() -> (Arc<HierarchyGraph>, Arc<HierarchyGraph>) {
    let mut s = HierarchyGraph::new("Student");
    let ob = s
        .add_class("Obsequious Student", s.root())
        .expect("fresh name");
    s.add_instance("John", ob).expect("fresh name");
    s.add_instance("Mary", s.root()).expect("fresh name");
    let mut t = HierarchyGraph::new("Teacher");
    let ic = t
        .add_class("Incoherent Teacher", t.root())
        .expect("fresh name");
    t.add_instance("Smith", ic).expect("fresh name");
    t.add_instance("Jones", t.root()).expect("fresh name");
    (Arc::new(s), Arc::new(t))
}

/// Fig. 3: the Respects relation (conflict already resolved).
pub fn fig3_respects(students: &Arc<HierarchyGraph>, teachers: &Arc<HierarchyGraph>) -> HRelation {
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Student", students.clone()),
        Attribute::new("Teacher", teachers.clone()),
    ]));
    let mut r = HRelation::new(schema);
    r.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
        .expect("known names");
    r.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
        .expect("known names");
    r.assert_fact(
        &["Obsequious Student", "Incoherent Teacher"],
        Truth::Positive,
    )
    .expect("known names");
    r
}

/// Fig. 4: the elephant taxonomy and colour domain.
pub fn fig4_graphs() -> (Arc<HierarchyGraph>, Arc<HierarchyGraph>) {
    let mut a = HierarchyGraph::new("Animal");
    let elephant = a.add_class("Elephant", a.root()).expect("fresh name");
    let royal = a.add_class("Royal Elephant", elephant).expect("fresh name");
    let indian = a
        .add_class("Indian Elephant", elephant)
        .expect("fresh name");
    a.add_instance_multi("Appu", &[royal, indian])
        .expect("fresh name");
    a.add_instance("Clyde", royal).expect("fresh name");
    let mut c = HierarchyGraph::new("Color");
    c.add_instance("Grey", c.root()).expect("fresh name");
    c.add_instance("White", c.root()).expect("fresh name");
    c.add_instance("Dappled", c.root()).expect("fresh name");
    (Arc::new(a), Arc::new(c))
}

/// Fig. 4's Animal-Color relation.
pub fn fig4_colors(animals: &Arc<HierarchyGraph>, colors: &Arc<HierarchyGraph>) -> HRelation {
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Animal", animals.clone()),
        Attribute::new("Color", colors.clone()),
    ]));
    let mut r = HRelation::new(schema);
    r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
        .expect("known names");
    r.assert_fact(&["Royal Elephant", "Grey"], Truth::Negative)
        .expect("known names");
    r.assert_fact(&["Royal Elephant", "White"], Truth::Positive)
        .expect("known names");
    r.assert_fact(&["Clyde", "White"], Truth::Negative)
        .expect("known names");
    r.assert_fact(&["Clyde", "Dappled"], Truth::Positive)
        .expect("known names");
    r
}

/// Fig. 11a: the Enclosure-Size relation over the Fig. 4 animals.
pub fn fig11_enclosures(animals: &Arc<HierarchyGraph>) -> (Arc<HierarchyGraph>, HRelation) {
    let mut e = HierarchyGraph::new("Enclosure Size");
    e.add_instance("3000", e.root()).expect("fresh name");
    e.add_instance("2000", e.root()).expect("fresh name");
    let e = Arc::new(e);
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Animal", animals.clone()),
        Attribute::new("Enclosure Size", e.clone()),
    ]));
    let mut r = HRelation::new(schema);
    r.assert_fact(&["Elephant", "3000"], Truth::Positive)
        .expect("known names");
    r.assert_fact(&["Indian Elephant", "3000"], Truth::Negative)
        .expect("known names");
    r.assert_fact(&["Indian Elephant", "2000"], Truth::Positive)
        .expect("known names");
    (e, r)
}

/// The Fig. 1 world as an HQL bootstrap script for serving workloads
/// (`hrdm-serve --bootstrap`, server soak tests). Plain text so callers
/// need no dependency on the HQL crate.
pub fn serving_bootstrap() -> &'static str {
    r#"
    CREATE DOMAIN Animal;
    CREATE CLASS Bird UNDER Animal;
    CREATE CLASS Canary UNDER Bird;
    CREATE CLASS Penguin UNDER Bird;
    CREATE CLASS "Galapagos Penguin" UNDER Penguin;
    CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
    CREATE INSTANCE Tweety OF Canary;
    CREATE INSTANCE Paul OF "Galapagos Penguin";
    CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
    CREATE INSTANCE Pamela OF "Amazing Flying Penguin";
    CREATE INSTANCE Peter OF "Amazing Flying Penguin";
    CREATE RELATION Flies (Creature: Animal);
    ASSERT Flies (ALL Bird);
    ASSERT NOT Flies (ALL Penguin);
    ASSERT Flies (ALL "Amazing Flying Penguin");
    ASSERT Flies (Peter);
    "#
}

/// Deterministic read-only statement mix for serving soak tests, each a
/// complete HQL statement against the [`serving_bootstrap`] world. Some
/// name instances created only by [`serving_writes`], so a soak run
/// exercises the existence transition too.
pub fn serving_queries() -> Vec<&'static str> {
    vec![
        "HOLDS Flies (Tweety);",
        "HOLDS Flies (Paul);",
        "HOLDS Flies (Patricia);",
        "COUNT Flies;",
        "CHECK Flies;",
        "SHOW Flies;",
        "HOLDS Flies (P0);",
        "HOLDS Flies (P4);",
        "HOLDS Flies (P9);",
        "COUNT Flies BY Creature;",
    ]
}

/// Deterministic write mix for serving soak tests: single-statement
/// mutations, one snapshot publication each.
pub fn serving_writes() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..10 {
        out.push(format!("CREATE INSTANCE P{i} OF Penguin;"));
        out.push(format!("ASSERT Flies (P{i});"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit tests both sweep the process-global registry; run
    /// them one at a time so neither clears the other's mid-test state.
    fn audit_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn fixtures_build_and_are_consistent() {
        let tax = fig1_taxonomy();
        let flying = fig1_relation(&tax);
        assert!(hrdm_core::conflict::is_consistent(&flying));

        let (s, t) = fig2_graphs();
        let respects = fig3_respects(&s, &t);
        assert!(hrdm_core::conflict::is_consistent(&respects));

        let (a, c) = fig4_graphs();
        let colors = fig4_colors(&a, &c);
        assert!(hrdm_core::conflict::is_consistent(&colors));

        let (_e, sizes) = fig11_enclosures(&a);
        assert!(hrdm_core::conflict::is_consistent(&sizes));
    }

    #[test]
    fn clear_shared_caches_resets_ivm_counters_interner_and_caches() {
        use hrdm_obs::metrics;

        let _guard = audit_lock();

        // Touch one counter from each family the reset must cover: the
        // live-view maintenance counters and the differential-operator
        // counters join the registry lazily, so register-and-bump first.
        for name in [
            "ivm.maintained",
            "ivm.fallback",
            "ivm.delta_rows",
            "ivm.nodes_localized",
        ] {
            metrics::counter(name).add(3);
        }
        let sym = hrdm_core::intern::intern("clear-shared-caches-audit");
        assert_eq!(
            hrdm_core::intern::resolve(sym).as_deref(),
            Some("clear-shared-caches-audit")
        );

        clear_shared_caches();

        for name in [
            "ivm.maintained",
            "ivm.fallback",
            "ivm.delta_rows",
            "ivm.nodes_localized",
        ] {
            assert_eq!(metrics::counter(name).get(), 0, "{name} survived the reset");
        }
        // The interner is process-global and other tests may intern in
        // parallel, so assert only that *our* symbol is gone, not that
        // the table is empty.
        assert_ne!(
            hrdm_core::intern::resolve(sym).as_deref(),
            Some("clear-shared-caches-audit"),
            "interner must drop to a fresh epoch"
        );
    }

    /// PR-7's ivm-counter audit, extended to the serving tier: the
    /// shared reset must also zero the server-side latency histograms
    /// (they live in the same registry) and drain the slow-query log
    /// (the one piece of serving telemetry outside the registry).
    #[test]
    fn clear_shared_caches_resets_server_histograms_and_the_slowlog() {
        use hrdm_obs::{metrics, slowlog};

        let _guard = audit_lock();

        let lat = metrics::histogram("server.latency.query");
        lat.observe_ns(1_234);
        metrics::counter("server.requests").incr();
        metrics::gauge("server.active_connections").set(7);
        let recorded = slowlog::record(
            "QUERY",
            "SHOW Flies; -- fixtures audit",
            5_000_000,
            3,
            "server.query [5.0ms]".into(),
        );
        if cfg!(feature = "obs") {
            assert!(recorded, "the obs build records slowlog entries");
            assert!(lat.count() >= 1);
            assert!(slowlog::len() >= 1);
        }

        clear_shared_caches();

        assert_eq!(lat.count(), 0, "server histogram survived the reset");
        assert_eq!(lat.sum_ns(), 0);
        assert_eq!(metrics::counter("server.requests").get(), 0);
        assert_eq!(metrics::gauge("server.active_connections").get(), 0);
        assert_eq!(slowlog::len(), 0, "slow-query log survived the reset");
    }

    #[test]
    fn fig1_bindings_match_paper() {
        let tax = fig1_taxonomy();
        let r = fig1_relation(&tax);
        for (name, flies) in [
            ("Tweety", true),
            ("Paul", false),
            ("Patricia", true),
            ("Pamela", true),
            ("Peter", true),
        ] {
            assert_eq!(r.holds(&r.item(&[name]).unwrap()), flies, "{name}");
        }
    }
}
