//! Scaled synthetic workloads for the B1–B9 experiments.
//!
//! Every builder is deterministic (seeded) and documented with the
//! paper claim it exercises; see DESIGN.md §3 for the experiment index.

use std::sync::Arc;

use hrdm_core::prelude::*;
use hrdm_hierarchy::gen::{balanced_tree, flat_classes, layered_dag};
use hrdm_hierarchy::HierarchyGraph;
use hrdm_storage::membership::MembershipTable;
use hrdm_storage::Table;

/// B1/B2 workload: one class of `members` instances, a relation
/// asserting the whole class with `exceptions` negated members.
pub struct ClassWorkload {
    /// The taxonomy: root -> C0 -> members.
    pub graph: Arc<HierarchyGraph>,
    /// The hierarchical relation: `+∀C0` plus the exceptions.
    pub relation: HRelation,
    /// Instance count.
    pub members: usize,
    /// Exception count.
    pub exceptions: usize,
}

/// Build the §1 storage scenario: "one can store the class membership
/// once, and use a single tuple with the class name to substitute for
/// many tuples with its constituent elements."
pub fn class_workload(members: usize, exceptions: usize) -> ClassWorkload {
    assert!(exceptions <= members);
    let graph = Arc::new(flat_classes(1, members));
    let schema = Arc::new(Schema::single("D", graph.clone()));
    let mut relation = HRelation::new(schema);
    relation
        .assert_fact(&["C0"], Truth::Positive)
        .expect("generated name");
    for m in 0..exceptions {
        relation
            .assert_fact(&[&format!("i0_{m}")], Truth::Negative)
            .expect("generated name");
    }
    ClassWorkload {
        graph,
        relation,
        members,
        exceptions,
    }
}

/// The flat baseline for a [`ClassWorkload`]: the fully explicated
/// extension loaded into the storage engine with an index on the single
/// column.
pub fn explicated_table(w: &ClassWorkload) -> Table {
    let flat = hrdm_core::flat::flatten(&w.relation);
    let mut t = Table::new("R_flat", 1);
    for atom in flat.iter() {
        t.insert(&[atom.component(0).index() as u32])
            .expect("single-column rows fit");
    }
    t.create_index(0).expect("column 0 exists");
    t
}

/// The footnote-1 baseline for a [`ClassWorkload`]: the relation stored
/// by class plus the materialized membership table. Exceptions are
/// stored as a second by-class table ("R_not") that the query must
/// anti-join — the standard flat encoding of an exception list.
pub struct Footnote1Baseline {
    /// R stored by class: positive class rows.
    pub by_class: Table,
    /// Negative exception rows (instance ids).
    pub exceptions: Table,
    /// The membership extension with both indexes.
    pub membership: MembershipTable,
}

/// Build the footnote-1 encoding of a [`ClassWorkload`].
pub fn footnote1_baseline(w: &ClassWorkload) -> Footnote1Baseline {
    let membership = MembershipTable::materialize(&w.graph);
    let mut by_class = Table::new("R_by_class", 1);
    let mut exceptions = Table::new("R_not", 1);
    for (item, truth) in w.relation.iter() {
        let node = item.component(0);
        if truth == Truth::Positive {
            by_class
                .insert(&[node.index() as u32])
                .expect("single-column rows fit");
        } else {
            exceptions
                .insert(&[node.index() as u32])
                .expect("single-column rows fit");
        }
    }
    by_class.create_index(0).expect("column 0 exists");
    exceptions.create_index(0).expect("column 0 exists");
    Footnote1Baseline {
        by_class,
        exceptions,
        membership,
    }
}

impl Footnote1Baseline {
    /// Footnote-1 point query: "does R hold for instance x?" —
    /// a membership join for the positive part and an anti-join against
    /// the exception list.
    pub fn holds(&self, instance: u32) -> bool {
        if !self.exceptions.lookup(0, instance).is_empty() {
            return false;
        }
        self.membership.holds_via_join(&self.by_class, instance)
    }

    /// Footnote-1 listing query: expand R to instance level.
    pub fn list(&self) -> Vec<u32> {
        self.membership
            .expand_by_class(&self.by_class)
            .map(|row| row[0])
            .filter(|&i| self.exceptions.lookup(0, i).is_empty())
            .collect()
    }
}

/// B2 depth workload: a single positive tuple at the top class of a
/// binary tree of the given depth — probing a leaf exercises a
/// `depth`-long inheritance chain.
pub fn depth_workload(depth: usize) -> (HRelation, Item) {
    let graph = Arc::new(balanced_tree(2, depth));
    let schema = Arc::new(Schema::single("D", graph.clone()));
    let mut relation = HRelation::new(schema);
    let top = graph.classes().next().expect("depth >= 2 has classes");
    relation
        .assert_item(Item::new(vec![top]), Truth::Positive)
        .expect("valid node");
    let leaf = graph.instances().next().expect("tree has instances");
    (relation, Item::new(vec![leaf]))
}

/// B3 workload: a relation over a balanced tree where roughly
/// `redundant_per_class` descendants of each asserted class are
/// re-asserted with the same truth (and are therefore redundant).
pub fn consolidation_workload(
    fanout: usize,
    depth: usize,
    classes: usize,
    redundant_per_class: usize,
) -> HRelation {
    let graph = Arc::new(balanced_tree(fanout, depth));
    let schema = Arc::new(Schema::single("D", graph.clone()));
    let mut r = HRelation::new(schema);
    let class_ids: Vec<_> = graph.classes().take(classes).collect();
    for &c in &class_ids {
        r.assert_item(Item::new(vec![c]), Truth::Positive)
            .expect("valid node");
        for d in graph.descendants(c).into_iter().take(redundant_per_class) {
            // Same truth value below: redundant by §3.3.
            let _ = r.assert_item(Item::new(vec![d]), Truth::Positive);
        }
    }
    r
}

/// B4 workload: `+∀root-class` over a balanced tree — explication cost
/// is linear in the extension.
pub fn explication_workload(fanout: usize, depth: usize) -> HRelation {
    let graph = Arc::new(balanced_tree(fanout, depth));
    let schema = Arc::new(Schema::single("D", graph.clone()));
    let mut r = HRelation::new(schema);
    let first_class = graph
        .classes()
        .next()
        .expect("depth >= 2 trees have classes");
    r.assert_item(Item::new(vec![first_class]), Truth::Positive)
        .expect("valid node");
    r
}

/// B5/B7 workload: a multiple-inheritance DAG with `tuples` mixed-truth
/// assertions (then made consistent), for preemption ablations and
/// conflict-detection cost.
pub fn dag_relation(
    layers: usize,
    width: usize,
    max_parents: usize,
    tuples: usize,
    seed: u64,
) -> HRelation {
    let graph = Arc::new(layered_dag(layers, width, max_parents, seed));
    let schema = Arc::new(Schema::single("D", graph.clone()));
    let mut r = HRelation::new(schema);
    let nodes = hrdm_hierarchy::gen::sample_nodes(&graph, tuples, seed ^ 0xfeed);
    for (k, n) in nodes.into_iter().enumerate() {
        let truth = if k % 3 == 0 {
            Truth::Negative
        } else {
            Truth::Positive
        };
        let _ = r.assert_item(Item::new(vec![n]), truth);
    }
    r
}

/// Resolve every conflict of `r` positively, to a fixpoint.
pub fn resolve_positively(r: &mut HRelation) {
    loop {
        let conflicts = hrdm_core::conflict::find_conflicts(r);
        if conflicts.is_empty() {
            return;
        }
        for c in conflicts {
            r.insert(Tuple::positive(c.item)).expect("valid item");
        }
    }
}

/// B8 workload: a flat relation covering `coverage_percent`% of each of
/// `classes` classes with `members` members.
pub fn discovery_workload(
    classes: usize,
    members: usize,
    coverage_percent: usize,
) -> hrdm_core::flat::FlatRelation {
    let graph = Arc::new(flat_classes(classes, members));
    let schema = Arc::new(Schema::single("D", graph.clone()));
    let keep = members * coverage_percent / 100;
    let mut atoms = std::collections::BTreeSet::new();
    for c in 0..classes {
        for m in 0..keep {
            atoms.insert(
                schema
                    .item(&[&format!("i{c}_{m}")])
                    .expect("generated name"),
            );
        }
    }
    hrdm_core::flat::FlatRelation::from_atoms(schema, atoms)
}

/// B9 workload: an `edge` EDB over a chain of `n` instances, stored as a
/// two-attribute hierarchical relation, plus the transitive-closure
/// program.
pub fn datalog_workload(n: usize) -> (hrdm_datalog::Engine, hrdm_datalog::Program) {
    let mut g = HierarchyGraph::new("Node");
    let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    for name in &names {
        g.add_instance(name.as_str(), g.root()).expect("fresh name");
    }
    let g = Arc::new(g);
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("From", g.clone()),
        Attribute::new("To", g.clone()),
    ]));
    let mut edges = HRelation::new(schema);
    for w in names.windows(2) {
        edges
            .assert_fact(&[w[0].as_str(), w[1].as_str()], Truth::Positive)
            .expect("known names");
    }
    let mut engine = hrdm_datalog::Engine::new();
    engine.add_relation("edge", &edges);
    let program = hrdm_datalog::Program::parse(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).",
    )
    .expect("static program parses");
    (engine, program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_workload_counts() {
        let w = class_workload(100, 5);
        assert_eq!(w.relation.len(), 6);
        let flat = hrdm_core::flat::flatten(&w.relation);
        assert_eq!(flat.len(), 95);
    }

    #[test]
    fn baselines_agree_with_hierarchical_model() {
        let w = class_workload(50, 3);
        let flat_table = explicated_table(&w);
        assert_eq!(flat_table.len(), 47);
        let f1 = footnote1_baseline(&w);
        let mut listed = f1.list();
        listed.sort_unstable();
        assert_eq!(listed.len(), 47);
        // Point queries agree for every instance.
        for inst in w.graph.instances() {
            let item = Item::new(vec![inst]);
            let expect = w.relation.holds(&item);
            assert_eq!(f1.holds(inst.index() as u32), expect);
            assert_eq!(
                !flat_table.lookup(0, inst.index() as u32).is_empty(),
                expect
            );
        }
    }

    #[test]
    fn consolidation_workload_has_redundancy() {
        let r = consolidation_workload(3, 3, 4, 2);
        let c = hrdm_core::consolidate::consolidate(&r);
        assert!(!c.removed.is_empty());
        assert!(hrdm_core::flat::equivalent(&r, &c.relation));
    }

    #[test]
    fn dag_relation_is_reproducible() {
        let a = dag_relation(3, 5, 2, 6, 42);
        let b = dag_relation(3, 5, 2, 6, 42);
        assert_eq!(a.len(), b.len());
        let mut a2 = a.clone();
        resolve_positively(&mut a2);
        assert!(hrdm_core::conflict::is_consistent(&a2));
    }

    #[test]
    fn discovery_workload_compresses_at_full_coverage() {
        let flat = discovery_workload(3, 10, 100);
        let d = hrdm_core::discover::discover(&flat);
        assert!(d.stats.hierarchical_tuples <= 3);
        assert_eq!(d.stats.flat_tuples, 30);
    }

    #[test]
    fn datalog_workload_runs() {
        let (engine, program) = datalog_workload(10);
        let out = engine.run(&program).expect("consistent program");
        assert_eq!(out["path"].len(), 45);
    }
}
