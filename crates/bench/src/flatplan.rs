//! Lowering [`LogicalPlan`]s onto the flat baseline engine.
//!
//! §3's equivalence principle — "any manipulations on hierarchical
//! relations should have the same effect whether performed on the
//! hierarchical relations or on the equivalent flat relations" — makes
//! the flat engine an executable oracle for the plan layer: the *same*
//! logical plan runs against `hrdm-storage`'s volcano operators over the
//! fully explicated extensions, and the two engines must report the same
//! atom set. The B2-style comparisons use this to charge both engines
//! with the identical query rather than hand-written per-engine code.
//!
//! Lowering table (flat relations are sets of atomic rows, one `u32`
//! node index per attribute):
//!
//! | plan node      | flat operator                                      |
//! |----------------|----------------------------------------------------|
//! | `Scan`         | explicated positive extension loaded into a table  |
//! | `Select`       | per-column membership filter against the region's  |
//! |                | extension sets                                     |
//! | `SelectEq`     | same, after resolving the attribute/value names    |
//! | `Project`      | column projection + duplicate elimination          |
//! | `Join`         | hash join on the first shared attribute, residual  |
//! |                | equality filter on the rest, then the natural-join |
//! |                | column layout                                      |
//! | `Union`/`Diff`/`Intersect` | row-set operators                      |
//! | `Consolidate`  | no-op (the flat model is already canonical)        |
//! | `Explicate`    | no-op (rows are already atomic)                    |

use std::collections::BTreeSet;

use hrdm_core::cost::{AccessPath, CostModel};
use hrdm_core::error::{CoreError, Result};
use hrdm_core::flat::flatten;
use hrdm_core::plan::LogicalPlan;
use hrdm_obs::attrib;
use hrdm_obs::QueryTrace;
use hrdm_storage::batch::{self, RowBatch};
use hrdm_storage::exec;
use hrdm_storage::{Row, Table};

/// Execute `plan` on the flat engine: every base relation is explicated
/// to its positive extension and the operators run over plain rows.
/// Returns the result's atom rows in sorted order.
pub fn execute_flat(plan: &LogicalPlan) -> Result<Vec<Row>> {
    Ok(eval(plan)?.0)
}

/// [`execute_flat`] under a trace capture: the span tree mirrors the
/// plan shape with the same node names the hierarchical executor uses,
/// so the two engines' traces line up side by side.
pub fn execute_flat_traced(plan: &LogicalPlan) -> Result<(Vec<Row>, QueryTrace)> {
    let (rows, trace) = hrdm_obs::trace::capture("flatplan.execute", || execute_flat(plan));
    Ok((rows?, trace))
}

/// Evaluate to (sorted distinct rows, arity), one span per plan node.
/// Unlike the hierarchical executor's exclusive per-node attribution,
/// the cache/heap deltas here are inclusive of the subtree: the flat
/// operators rebuild tables at every step, so the interesting number is
/// how much I/O the whole subtree cost.
fn eval(plan: &LogicalPlan) -> Result<(Vec<Row>, usize)> {
    let mut span = hrdm_obs::span!(plan.kind());
    let before = attrib::snapshot();
    let result = eval_inner(plan)?;
    if span.is_active() {
        span.field_u64("rows", result.0.len() as u64);
        let delta = attrib::since(&before);
        for (key, name) in attrib::ALL_KEYS {
            if delta.get(key) > 0 {
                span.field_u64(name, delta.get(key));
            }
        }
    }
    Ok(result)
}

fn eval_inner(plan: &LogicalPlan) -> Result<(Vec<Row>, usize)> {
    match plan {
        LogicalPlan::Scan { relation, .. } => {
            let arity = relation.schema().arity();
            let rows: BTreeSet<Row> = flatten(relation)
                .iter()
                .map(|atom| {
                    (0..arity)
                        .map(|i| atom.component(i).index() as u32)
                        .collect()
                })
                .collect();
            Ok((rows.into_iter().collect(), arity))
        }
        LogicalPlan::Select { input, region } => {
            let (rows, arity) = eval(input)?;
            let schema = input.output_schema()?;
            // One allowed-instance set per column: the region component's
            // extension (subsumption restricted to atoms).
            let allowed: Vec<BTreeSet<u32>> = (0..arity)
                .map(|i| {
                    schema
                        .domain(i)
                        .extension(region.component(i))
                        .into_iter()
                        .map(|n| n.index() as u32)
                        .collect()
                })
                .collect();
            let t = load(rows, arity);
            let kept = exec::distinct(exec::filter(exec::scan(&t), |r| {
                r.iter().zip(&allowed).all(|(v, set)| set.contains(v))
            }));
            Ok((kept, arity))
        }
        LogicalPlan::SelectEq { input, attr, value } => {
            let (rows, arity) = eval(input)?;
            let schema = input.output_schema()?;
            let i = schema.index_of(attr)?;
            let node = schema.domain(i).node(value)?;
            let allowed: BTreeSet<u32> = schema
                .domain(i)
                .extension(node)
                .into_iter()
                .map(|n| n.index() as u32)
                .collect();
            let t = load(rows, arity);
            let kept = exec::distinct(exec::filter(exec::scan(&t), move |r| {
                allowed.contains(&r[i])
            }));
            Ok((kept, arity))
        }
        LogicalPlan::Project { input, attrs } => {
            let (rows, arity) = eval(input)?;
            for &a in attrs {
                if a >= arity {
                    return Err(CoreError::AttributeIndexOutOfRange(a));
                }
            }
            let t = load(rows, arity);
            let projected = exec::distinct(exec::project(exec::scan(&t), attrs));
            Ok((projected, attrs.len()))
        }
        LogicalPlan::Join { left, right } => {
            let (lrows, larity) = eval(left)?;
            let (rrows, rarity) = eval(right)?;
            let ls = left.output_schema()?;
            let rs = right.output_schema()?;
            // Natural-join layout: shared attributes matched by name,
            // output = left columns ++ right-only columns.
            let mut shared: Vec<(usize, usize)> = Vec::new();
            let mut right_only: Vec<usize> = Vec::new();
            for j in 0..rarity {
                let name = rs.attributes()[j].name();
                match (0..larity).find(|&i| ls.attributes()[i].name() == name) {
                    Some(i) => shared.push((i, j)),
                    None => right_only.push(j),
                }
            }
            if shared.is_empty() {
                return Err(CoreError::NoJoinAttributes);
            }
            let lt = load(lrows, larity);
            let rt = load(rrows, rarity);
            let (i0, j0) = shared[0];
            let joined = exec::hash_join(exec::scan(&lt), i0, exec::scan(&rt), j0);
            // Residual equality on the remaining shared columns (the
            // hash join keys on one), then the natural-join columns.
            let residual: Vec<(usize, usize)> = shared[1..].to_vec();
            let filtered = exec::filter(joined, move |r| {
                residual.iter().all(|&(i, j)| r[i] == r[larity + j])
            });
            let mut cols: Vec<usize> = (0..larity).collect();
            cols.extend(right_only.iter().map(|&j| larity + j));
            let out = exec::distinct(exec::project(filtered, &cols));
            Ok((out, cols.len()))
        }
        LogicalPlan::Union { left, right } => {
            let ((l, la), (r, ra)) = (eval(left)?, eval(right)?);
            check_compat(la, ra)?;
            Ok((exec::union(l.into_iter(), r.into_iter()), la))
        }
        LogicalPlan::Intersect { left, right } => {
            let ((l, la), (r, ra)) = (eval(left)?, eval(right)?);
            check_compat(la, ra)?;
            Ok((exec::intersection(l.into_iter(), r.into_iter()), la))
        }
        LogicalPlan::Diff { left, right } => {
            let ((l, la), (r, ra)) = (eval(left)?, eval(right)?);
            check_compat(la, ra)?;
            Ok((exec::difference(l.into_iter(), r.into_iter()), la))
        }
        // The flat rows are already the canonical, fully explicit
        // extension: both physical operators are identities here.
        LogicalPlan::Consolidate { input } => eval(input),
        LogicalPlan::Explicate { input, attrs } => {
            let (rows, arity) = eval(input)?;
            for (k, &a) in attrs.iter().enumerate() {
                if a >= arity {
                    return Err(CoreError::AttributeIndexOutOfRange(a));
                }
                if attrs[..k].contains(&a) {
                    return Err(CoreError::DuplicateAttributeIndex(a));
                }
            }
            Ok((rows, arity))
        }
    }
}

fn check_compat(la: usize, ra: usize) -> Result<()> {
    if la == ra {
        Ok(())
    } else {
        Err(CoreError::SchemaMismatch)
    }
}

/// Materialize rows into a storage table so the volcano operators can
/// scan them.
fn load(rows: Vec<Row>, arity: usize) -> Table {
    let mut t = Table::new("plan_step", arity.max(1));
    for row in rows {
        t.insert(&row).expect("rows match declared arity");
    }
    t
}

/// [`execute_flat`]'s batch-at-a-time twin: the same lowering, but over
/// [`hrdm_storage::batch`]'s 1 k-row column slices, with selections
/// routed through [`CostModel::access_path`] — a selective equality
/// predicate builds and probes a [`hrdm_storage::batch::BatchIndex`]
/// instead of filtering the scan. Returns the identical sorted distinct rows (pinned by the
/// tests below and by the bench parity gate).
pub fn execute_flat_batch(plan: &LogicalPlan, model: &CostModel) -> Result<Vec<Row>> {
    let (bs, _) = eval_b(plan, model)?;
    Ok(batch::distinct_rows(&bs))
}

/// [`execute_flat_batch`] under a trace capture rooted at
/// `flatplan.batch_execute`, with `batch.*` spans per operator.
pub fn execute_flat_batch_traced(
    plan: &LogicalPlan,
    model: &CostModel,
) -> Result<(Vec<Row>, QueryTrace)> {
    let (rows, trace) =
        hrdm_obs::trace::capture("flatplan.batch_execute", || execute_flat_batch(plan, model));
    Ok((rows?, trace))
}

/// Span names for the batch lowering — the same `batch.*` vocabulary
/// the hierarchical batch executor emits, so obs dashboards and golden
/// traces treat the two batch engines uniformly.
fn flat_batch_kind(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "batch.scan",
        LogicalPlan::Select { .. } => "batch.select",
        LogicalPlan::SelectEq { .. } => "batch.select_eq",
        LogicalPlan::Project { .. } => "batch.project",
        LogicalPlan::Join { .. } => "batch.join",
        LogicalPlan::Union { .. } => "batch.union",
        LogicalPlan::Intersect { .. } => "batch.intersect",
        LogicalPlan::Diff { .. } => "batch.diff",
        LogicalPlan::Consolidate { .. } => "batch.consolidate",
        LogicalPlan::Explicate { .. } => "batch.explicate",
    }
}

/// Evaluate to (column batches, arity), one `batch.*` span per node.
fn eval_b(plan: &LogicalPlan, model: &CostModel) -> Result<(Vec<RowBatch>, usize)> {
    let mut span = hrdm_obs::span!(flat_batch_kind(plan));
    let result = eval_b_inner(plan, model, &mut span)?;
    let rows: usize = result.0.iter().map(RowBatch::len).sum();
    hrdm_obs::metrics::counter("batch.flat.rows").add(rows as u64);
    hrdm_obs::metrics::counter("batch.flat.batches").add(result.0.len() as u64);
    if span.is_active() {
        span.field_u64("rows", rows as u64);
        span.field_u64("batches", result.0.len() as u64);
    }
    Ok(result)
}

fn eval_b_inner(
    plan: &LogicalPlan,
    model: &CostModel,
    span: &mut hrdm_obs::SpanGuard,
) -> Result<(Vec<RowBatch>, usize)> {
    match plan {
        LogicalPlan::Scan { relation, .. } => {
            let arity = relation.schema().arity();
            let rows: BTreeSet<Row> = flatten(relation)
                .iter()
                .map(|atom| {
                    (0..arity)
                        .map(|i| atom.component(i).index() as u32)
                        .collect()
                })
                .collect();
            let rows: Vec<Row> = rows.into_iter().collect();
            Ok((
                batch::batches_from_rows(arity.max(1), rows.into_iter()),
                arity,
            ))
        }
        LogicalPlan::Select { input, region } => {
            let (bs, arity) = eval_b(input, model)?;
            let schema = input.output_schema()?;
            let allowed: Vec<BTreeSet<u32>> = (0..arity)
                .map(|i| {
                    schema
                        .domain(i)
                        .extension(region.component(i))
                        .into_iter()
                        .map(|n| n.index() as u32)
                        .collect()
                })
                .collect();
            let mut out = Vec::new();
            for b in &bs {
                let sel: Vec<usize> = (0..b.len())
                    .filter(|&k| (0..arity).all(|i| allowed[i].contains(&b.col(i)[k])))
                    .collect();
                if !sel.is_empty() {
                    out.push(b.take(&sel));
                }
            }
            Ok((out, arity))
        }
        LogicalPlan::SelectEq { input, attr, value } => {
            let (bs, arity) = eval_b(input, model)?;
            let schema = input.output_schema()?;
            let i = schema.index_of(attr)?;
            let node = schema.domain(i).node(value)?;
            let allowed: Vec<u32> = schema
                .domain(i)
                .extension(node)
                .into_iter()
                .map(|n| n.index() as u32)
                .collect();
            let input_rows: usize = bs.iter().map(RowBatch::len).sum();
            // Selectivity estimate: allowed instances over the domain's
            // full instance population (uniformity assumption).
            let domain_size = schema.domain(i).instances().count().max(1);
            let est = (input_rows * allowed.len().min(domain_size)) / domain_size;
            let path = model.access_path(input_rows as u64, est as u64);
            hrdm_obs::metrics::counter(match path {
                AccessPath::IndexProbe => "batch.access.index",
                AccessPath::Scan => "batch.access.scan",
            })
            .incr();
            if span.is_active() {
                span.field_str("access", path.label().to_string());
            }
            let out = match path {
                AccessPath::IndexProbe => {
                    // Build a class-id-keyed sorted index straight over
                    // the batch columns and probe per allowed instance —
                    // no heap-table materialization on the way.
                    let idx = batch::BatchIndex::build(&bs, i);
                    let mut rows = Vec::new();
                    for &v in &allowed {
                        idx.probe_into(&bs, v, &mut rows);
                    }
                    rows.sort();
                    batch::batches_from_rows(arity.max(1), rows.into_iter())
                }
                AccessPath::Scan => {
                    let allowed: BTreeSet<u32> = allowed.into_iter().collect();
                    let mut out = Vec::new();
                    for b in &bs {
                        let sel: Vec<usize> = b
                            .col(i)
                            .iter()
                            .enumerate()
                            .filter_map(|(k, v)| allowed.contains(v).then_some(k))
                            .collect();
                        if !sel.is_empty() {
                            out.push(b.take(&sel));
                        }
                    }
                    out
                }
            };
            Ok((out, arity))
        }
        LogicalPlan::Project { input, attrs } => {
            let (bs, arity) = eval_b(input, model)?;
            for &a in attrs {
                if a >= arity {
                    return Err(CoreError::AttributeIndexOutOfRange(a));
                }
            }
            let projected: Vec<RowBatch> = bs.iter().map(|b| b.project(attrs)).collect();
            let rows = batch::distinct_rows(&projected);
            Ok((
                batch::batches_from_rows(attrs.len().max(1), rows.into_iter()),
                attrs.len(),
            ))
        }
        LogicalPlan::Join { left, right } => {
            let (lbs, larity) = eval_b(left, model)?;
            let (rbs, rarity) = eval_b(right, model)?;
            let ls = left.output_schema()?;
            let rs = right.output_schema()?;
            let mut shared: Vec<(usize, usize)> = Vec::new();
            let mut right_only: Vec<usize> = Vec::new();
            for j in 0..rarity {
                let name = rs.attributes()[j].name();
                match (0..larity).find(|&i| ls.attributes()[i].name() == name) {
                    Some(i) => shared.push((i, j)),
                    None => right_only.push(j),
                }
            }
            if shared.is_empty() {
                return Err(CoreError::NoJoinAttributes);
            }
            let (i0, j0) = shared[0];
            let joined = batch::hash_join(&lbs, i0, &rbs, j0);
            // Residual equality on the remaining shared columns, then
            // the natural-join column layout, all column-at-a-time.
            let residual: Vec<(usize, usize)> = shared[1..].to_vec();
            let mut cols: Vec<usize> = (0..larity).collect();
            cols.extend(right_only.iter().map(|&j| larity + j));
            let mut out = Vec::new();
            for b in &joined {
                let sel: Vec<usize> = (0..b.len())
                    .filter(|&k| {
                        residual
                            .iter()
                            .all(|&(i, j)| b.col(i)[k] == b.col(larity + j)[k])
                    })
                    .collect();
                if !sel.is_empty() {
                    out.push(b.take(&sel).project(&cols));
                }
            }
            let rows = batch::distinct_rows(&out);
            Ok((
                batch::batches_from_rows(cols.len().max(1), rows.into_iter()),
                cols.len(),
            ))
        }
        LogicalPlan::Union { left, right } => {
            let ((l, la), (r, ra)) = (eval_b(left, model)?, eval_b(right, model)?);
            check_compat(la, ra)?;
            let rows = exec::union(
                batch::distinct_rows(&l).into_iter(),
                batch::distinct_rows(&r).into_iter(),
            );
            Ok((batch::batches_from_rows(la.max(1), rows.into_iter()), la))
        }
        LogicalPlan::Intersect { left, right } => {
            let ((l, la), (r, ra)) = (eval_b(left, model)?, eval_b(right, model)?);
            check_compat(la, ra)?;
            let rows = exec::intersection(
                batch::distinct_rows(&l).into_iter(),
                batch::distinct_rows(&r).into_iter(),
            );
            Ok((batch::batches_from_rows(la.max(1), rows.into_iter()), la))
        }
        LogicalPlan::Diff { left, right } => {
            let ((l, la), (r, ra)) = (eval_b(left, model)?, eval_b(right, model)?);
            check_compat(la, ra)?;
            let rows = exec::difference(
                batch::distinct_rows(&l).into_iter(),
                batch::distinct_rows(&r).into_iter(),
            );
            Ok((batch::batches_from_rows(la.max(1), rows.into_iter()), la))
        }
        LogicalPlan::Consolidate { input } => eval_b(input, model),
        LogicalPlan::Explicate { input, attrs } => {
            let (bs, arity) = eval_b(input, model)?;
            for (k, &a) in attrs.iter().enumerate() {
                if a >= arity {
                    return Err(CoreError::AttributeIndexOutOfRange(a));
                }
                if attrs[..k].contains(&a) {
                    return Err(CoreError::DuplicateAttributeIndex(a));
                }
            }
            Ok((bs, arity))
        }
    }
}

/// The hierarchical engine's answer to the same plan, rendered as flat
/// atom rows: execute, then explicate the (canonical) result. This is
/// the parity oracle the tests and the figures report compare against.
pub fn hierarchical_as_rows(plan: &LogicalPlan) -> Result<Vec<Row>> {
    let executed = plan.execute()?;
    let arity = executed.relation.schema().arity();
    let rows: BTreeSet<Row> = flatten(&executed.relation)
        .iter()
        .map(|atom| {
            (0..arity)
                .map(|i| atom.component(i).index() as u32)
                .collect()
        })
        .collect();
    Ok(rows.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fig1_relation, fig1_taxonomy, fig2_graphs, fig3_respects};
    use crate::workloads::class_workload;

    fn assert_engines_agree(plan: &LogicalPlan) {
        let flat = execute_flat(plan).expect("flat engine evaluates");
        let hier = hierarchical_as_rows(plan).expect("hierarchical engine evaluates");
        assert_eq!(flat, hier, "engines disagree on {plan:?}");
        // The batch lowering is a third route to the same rows, under
        // both access-path policies.
        let model = CostModel::default_calibration();
        assert_eq!(
            execute_flat_batch(plan, &model).expect("batch flat engine"),
            flat,
            "batch lowering disagrees on {plan:?}"
        );
        let mut probe_happy = model;
        probe_happy.probe_ns = 0.0;
        probe_happy.node_ns = 0.0;
        assert_eq!(
            execute_flat_batch(plan, &probe_happy).expect("index-leaning batch"),
            flat,
            "index-leaning batch lowering disagrees on {plan:?}"
        );
        // The optimizer must not change any engine's answer — including
        // the cost-based join commute.
        let (optimized, _) = plan.optimize();
        assert_eq!(execute_flat(&optimized).expect("optimized flat"), flat);
        assert_eq!(
            hierarchical_as_rows(&optimized).expect("optimized hierarchical"),
            hier
        );
        let (costed, _) = hrdm_core::cost::optimize_with_cost(plan, &model);
        assert_eq!(execute_flat(&costed).expect("cost-optimized flat"), flat);
        assert_eq!(
            hierarchical_as_rows(&costed).expect("cost-optimized hierarchical"),
            hier
        );
        assert_eq!(
            execute_flat_batch(&costed, &model).expect("cost-optimized batch"),
            flat
        );
    }

    #[test]
    fn scan_select_parity_on_fig1() {
        let tax = fig1_taxonomy();
        let r = fig1_relation(&tax);
        let penguins = r.item(&["Penguin"]).unwrap();
        assert_engines_agree(&LogicalPlan::scan("Flies", r.clone()));
        assert_engines_agree(&LogicalPlan::scan("Flies", r.clone()).select(penguins));
        assert_engines_agree(
            &LogicalPlan::scan("Flies", r.clone())
                .explicate(vec![0])
                .select_eq("Creature", "Penguin"),
        );
        assert_engines_agree(&LogicalPlan::scan("Flies", r).consolidate().consolidate());
    }

    #[test]
    fn join_union_diff_parity_on_fig3() {
        let (s, t) = fig2_graphs();
        let respects = fig3_respects(&s, &t);
        let base = || LogicalPlan::scan("Respects", respects.clone());
        assert_engines_agree(&base().join(base()));
        assert_engines_agree(&base().union(base()));
        assert_engines_agree(&base().intersect(base()));
        assert_engines_agree(&base().diff(base().select_eq("Teacher", "Incoherent Teacher")));
        assert_engines_agree(&base().project(vec![0]));
        let john = respects.item(&["John", "Teacher"]).unwrap();
        assert_engines_agree(&base().join(base()).select(john));
    }

    #[test]
    fn same_plan_both_engines_on_scaled_workload() {
        // The B2-style comparison: one logical plan, two engines, one
        // answer — a listing query over the class workload with its
        // exception list subtracted by the hierarchy.
        let w = class_workload(200, 5);
        let plan = LogicalPlan::scan("R", w.relation.clone()).explicate(vec![0]);
        let flat = execute_flat(&plan).unwrap();
        let hier = hierarchical_as_rows(&plan).unwrap();
        assert_eq!(flat, hier);
        assert_eq!(flat.len(), 195); // 200 members minus 5 exceptions
    }

    #[test]
    fn traced_flat_execution_mirrors_the_plan_shape() {
        let tax = fig1_taxonomy();
        let r = fig1_relation(&tax);
        let plan = LogicalPlan::scan("Flies", r)
            .explicate(vec![0])
            .select_eq("Creature", "Penguin");
        let (rows, trace) = execute_flat_traced(&plan).expect("traced eval");
        assert_eq!(rows, execute_flat(&plan).expect("plain eval"));
        assert_eq!(
            trace.root.as_ref().map(|r| r.name),
            Some("flatplan.execute")
        );
        // The span tree nests exactly like the plan: SelectEq → Explicate → Scan.
        let seleq = trace.find("SelectEq").expect("root operator span");
        let expl = trace.find("Explicate").expect("child span");
        let scan = trace.find("Scan").expect("leaf span");
        assert_eq!(seleq.field_u64("rows"), Some(rows.len() as u64));
        assert_eq!(expl.children.len(), 1);
        assert_eq!(expl.children[0].name, "Scan");
        // Flattening the base relation explicates through the
        // subsumption core, and the attribution is inclusive up the
        // subtree.
        let touched = scan.field_u64("subsumption_hits").unwrap_or(0)
            + scan.field_u64("subsumption_misses").unwrap_or(0);
        assert!(touched > 0, "scan fields: {:?}", scan.fields);
    }

    #[test]
    fn batch_lowering_chooses_an_index_for_selective_probes() {
        // A selective point lookup over a large workload must cross the
        // cost model's index threshold; an unselective one must not.
        let w = class_workload(3000, 5);
        let plan = LogicalPlan::scan("R", w.relation.clone())
            .explicate(vec![0])
            .select_eq("D", "i0_1500");
        let model = CostModel::default_calibration();
        let (rows, trace) = execute_flat_batch_traced(&plan, &model).expect("traced batch");
        assert_eq!(rows.len(), 1);
        let seleq = trace.find("batch.select_eq").expect("select span");
        assert_eq!(seleq.field("access"), Some("index"));
        // Selecting the whole class keeps the scan.
        let all = LogicalPlan::scan("R", w.relation.clone())
            .explicate(vec![0])
            .select_eq("D", "C0");
        let (_, trace) = execute_flat_batch_traced(&all, &model).expect("traced batch");
        let seleq = trace.find("batch.select_eq").expect("select span");
        assert_eq!(seleq.field("access"), Some("scan"));
    }

    #[test]
    fn batch_traced_execution_uses_batch_span_names() {
        let tax = fig1_taxonomy();
        let r = fig1_relation(&tax);
        let plan = LogicalPlan::scan("Flies", r)
            .explicate(vec![0])
            .select_eq("Creature", "Penguin");
        let model = CostModel::default_calibration();
        let (rows, trace) = execute_flat_batch_traced(&plan, &model).expect("traced");
        assert_eq!(rows, execute_flat(&plan).expect("plain"));
        assert_eq!(
            trace.root.as_ref().map(|r| r.name),
            Some("flatplan.batch_execute")
        );
        let seleq = trace.find("batch.select_eq").expect("operator span");
        assert_eq!(seleq.field_u64("rows"), Some(rows.len() as u64));
        assert!(trace.find("batch.explicate").is_some());
        assert!(trace.find("batch.scan").is_some());
    }

    #[test]
    fn flat_engine_reports_plan_errors() {
        let tax = fig1_taxonomy();
        let r = fig1_relation(&tax);
        let bad = LogicalPlan::scan("Flies", r.clone()).project(vec![7]);
        assert!(matches!(
            execute_flat(&bad),
            Err(CoreError::AttributeIndexOutOfRange(7))
        ));
        let no_shared = LogicalPlan::scan("Flies", r.clone()).join(LogicalPlan::scan("Other", {
            let (s, t) = fig2_graphs();
            fig3_respects(&s, &t)
        }));
        assert!(matches!(
            execute_flat(&no_shared),
            Err(CoreError::NoJoinAttributes)
        ));
        assert!(matches!(
            execute_flat(&LogicalPlan::scan("Flies", r).explicate(vec![0, 0])),
            Err(CoreError::DuplicateAttributeIndex(0))
        ));
    }
}
