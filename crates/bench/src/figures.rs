//! Regenerate every worked figure of the paper (EX1–EX11 in DESIGN.md).
//!
//! [`report`] renders the relation(s) and derived answers in the paper's
//! own table style so the output can be compared against the figures
//! line by line, asserting the expected outcomes as it goes — it doubles
//! as an end-to-end check. The `figures` binary prints it; the golden
//! test in `tests/paper_scenarios.rs` snapshots it. Every line is
//! deterministic (no timings, no addresses), which is what makes the
//! snapshot stable.

use std::sync::Arc;

use hrdm_core::consolidate::consolidate;
use hrdm_core::explicate::explicate_all;
use hrdm_core::justify::justify;
use hrdm_core::ops::{difference, intersection, join, project_names, select, select_eq, union};
use hrdm_core::prelude::*;
use hrdm_core::render::render_table_titled;
use hrdm_core::subsumption::SubsumptionGraph;
use hrdm_hierarchy::dot::to_dot;
use hrdm_hierarchy::elim::{EliminationGraph, EliminationMode};

use crate::fixtures::*;
use crate::workloads::explication_workload;

macro_rules! w {
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        writeln!($out, $($arg)*).expect("writing to a String cannot fail")
    }};
}

fn heading(out: &mut String, title: &str) {
    w!(out, "\n{}", "=".repeat(72));
    w!(out, "{title}");
    w!(out, "{}", "=".repeat(72));
}

/// Render all figure reproductions into one deterministic report,
/// asserting each paper-stated outcome along the way.
pub fn report() -> String {
    let mut out = String::new();
    fig1(&mut out);
    fig2(&mut out);
    fig3(&mut out);
    fig4(&mut out);
    fig5(&mut out);
    fig6(&mut out);
    fig7_8(&mut out);
    fig9(&mut out);
    fig10(&mut out);
    fig11(&mut out);
    appendix(&mut out);
    plans(&mut out);
    w!(out, "\nAll figure reproductions match the paper.");
    out
}

/// EX1 — Fig. 1: hierarchy, relation, subsumption graph, binding graph.
fn fig1(out: &mut String) {
    heading(
        out,
        "Fig. 1 — Flying creatures: hierarchy, relation, binding",
    );
    let tax = fig1_taxonomy();
    let flying = fig1_relation(&tax);

    w!(
        out,
        "(a) class hierarchy (Graphviz):\n{}",
        to_dot(&tax, "fig1a")
    );
    w!(
        out,
        "{}",
        render_table_titled(&flying, Some("(b) the hierarchical relation"))
    );

    // (c) subsumption graph: the chain Bird -> Penguin -> AFP -> Peter.
    let sub = SubsumptionGraph::build(&flying);
    w!(out, "(c) subsumption graph edges:");
    for x in sub.topo_order() {
        for &y in sub.children(x) {
            w!(
                out,
                "    {} -> {}",
                flying.schema().display_item(sub.item(x)),
                flying.schema().display_item(sub.item(y))
            );
        }
    }

    // (d) Patricia's tuple-binding graph.
    let patricia = flying.item(&["Patricia"]).expect("fixture name");
    let (tbg, qi) = SubsumptionGraph::build_for_item(&flying, &patricia);
    w!(out, "(d) Patricia's tuple-binding graph predecessors:");
    for &p in tbg.parents(qi) {
        w!(
            out,
            "    {} {}",
            tbg.truth(p).sign(),
            flying.schema().display_item(tbg.item(p))
        );
    }
    assert_eq!(tbg.parents(qi).len(), 1);

    w!(out, "\nderived truth values:");
    for (name, expect) in [
        ("Tweety", true),
        ("Paul", false),
        ("Patricia", true),
        ("Pamela", true),
        ("Peter", true),
    ] {
        let item = flying.item(&[name]).expect("fixture name");
        let holds = flying.holds(&item);
        w!(out, "    {name:10} flies: {holds}");
        assert_eq!(holds, expect, "{name}");
    }
}

/// EX2 — Fig. 2: the Student × Teacher product hierarchy.
fn fig2(out: &mut String) {
    heading(
        out,
        "Fig. 2 — Student and Teacher hierarchies and their product",
    );
    let (students, teachers) = fig2_graphs();
    // The paper's Fig. 2 uses the class-only fragment.
    let product = hrdm_hierarchy::ProductHierarchy::new(vec![students.clone(), teachers.clone()]);
    w!(
        out,
        "product of |V|={} and |V|={} domains: {} product nodes, {} product edges (lazy)",
        students.len(),
        teachers.len(),
        product.node_count(),
        product.edge_count()
    );
    let root = product.root();
    w!(
        out,
        "children of ({}, {}):",
        students.name(students.root()),
        teachers.name(teachers.root())
    );
    for child in product.children(&root) {
        w!(out, "    {}", product.display(&child));
    }
    // Pin the Fig. 2c corner: (Obsequious Student, Incoherent Teacher)
    // has two parents.
    let corner = vec![
        students.expect("Obsequious Student"),
        teachers.expect("Incoherent Teacher"),
    ];
    assert_eq!(product.parents(&corner).len(), 2);
    w!(
        out,
        "(Obsequious Student, Incoherent Teacher) has {} immediate predecessors — the Fig. 2c diamond",
        product.parents(&corner).len()
    );
}

/// EX3 — Fig. 3: the Respects relation, conflict, and resolution.
fn fig3(out: &mut String) {
    heading(out, "Fig. 3 — Respects: conflict detection and resolution");
    let (students, teachers) = fig2_graphs();
    // The inconsistent fragment (above the dashed line).
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("Student", students.clone()),
        Attribute::new("Teacher", teachers.clone()),
    ]));
    let mut partial = HRelation::new(schema);
    partial
        .assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
        .expect("fixture names");
    partial
        .assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
        .expect("fixture names");
    w!(
        out,
        "{}",
        render_table_titled(&partial, Some("tuples above the dashed line"))
    );
    let conflicts = hrdm_core::conflict::find_conflicts(&partial);
    w!(out, "conflicts detected:");
    for c in &conflicts {
        w!(out, "    at {}", partial.schema().display_item(&c.item));
    }
    assert!(!conflicts.is_empty(), "the paper's conflict must appear");

    let full = fig3_respects(&students, &teachers);
    w!(
        out,
        "{}",
        render_table_titled(&full, Some("with the resolving tuple (Fig. 3)"))
    );
    assert!(hrdm_core::conflict::is_consistent(&full));
    w!(out, "relation is now consistent.");
}

/// EX4 — Fig. 4: elephant colours with exceptions to exceptions.
fn fig4(out: &mut String) {
    heading(out, "Fig. 4 — Royal elephants: exceptions to exceptions");
    let (animals, colors) = fig4_graphs();
    let rel = fig4_colors(&animals, &colors);
    w!(
        out,
        "{}",
        render_table_titled(&rel, Some("the Animal-Color relation"))
    );
    for (animal, color, expect) in [
        ("Clyde", "Dappled", true),
        ("Clyde", "White", false),
        ("Clyde", "Grey", false),
        ("Appu", "White", true),
        ("Appu", "Grey", false),
    ] {
        let item = rel.item(&[animal, color]).expect("fixture names");
        let holds = rel.holds(&item);
        w!(out, "    {animal} is {color}: {holds}");
        assert_eq!(holds, expect);
    }
    w!(
        out,
        "Appu's Indian-elephant membership is correctly irrelevant."
    );
}

/// EX5 — Fig. 5 / §3.2: redundancy that must NOT be eliminated.
fn fig5(out: &mut String) {
    heading(out, "Fig. 5 — A ∪ B ⊇ C: the C tuple is not redundant");
    let mut g = hrdm_hierarchy::HierarchyGraph::new("D");
    let a = g.add_class("A", g.root()).expect("fresh");
    let b = g.add_class("B", g.root()).expect("fresh");
    let c = g.add_class("C", g.root()).expect("fresh");
    g.add_instance_multi("c1", &[a, c]).expect("fresh");
    g.add_instance_multi("c2", &[b, c]).expect("fresh");
    let schema = Arc::new(Schema::single("D", Arc::new(g)));
    let mut r = HRelation::new(schema);
    for class in ["A", "B", "C"] {
        r.assert_fact(&[class], Truth::Positive)
            .expect("fixture names");
    }
    let cons = consolidate(&r);
    w!(
        out,
        "{}",
        render_table_titled(&cons.relation, Some("after consolidate"))
    );
    assert_eq!(cons.relation.len(), 3);
    w!(
        out,
        "C survives consolidation even though ext(C) ⊆ ext(A) ∪ ext(B) —"
    );
    w!(
        out,
        "\"we cannot consider a tuple regarding C a redundant assertion\"."
    );
}

/// EX6 — Fig. 6: consolidation of the Respects relation.
fn fig6(out: &mut String) {
    heading(out, "Fig. 6 — Consolidation of Respects");
    let (students, teachers) = fig2_graphs();
    let full = fig3_respects(&students, &teachers);
    w!(
        out,
        "{}",
        render_table_titled(&full, Some("input (Fig. 3, no duplicates)"))
    );
    let cons = consolidate(&full);
    w!(out, "eliminated, in topological order:");
    for t in &cons.removed {
        w!(
            out,
            "    {} {}",
            t.truth.sign(),
            full.schema().display_item(&t.item)
        );
    }
    w!(
        out,
        "{}",
        render_table_titled(&cons.relation, Some("result (Fig. 6b)"))
    );
    assert_eq!(cons.relation.len(), 1);
    assert!(hrdm_core::flat::equivalent(&full, &cons.relation));
    w!(out, "same extension, fewer tuples — exactly Fig. 6.");
}

/// EX7 — Figs. 7–8: selections on Respects.
fn fig7_8(out: &mut String) {
    heading(out, "Figs. 7–8 — Selections");
    let (students, teachers) = fig2_graphs();
    let respects = fig3_respects(&students, &teachers);

    let region = respects
        .item(&["Obsequious Student", "Teacher"])
        .expect("fixture names");
    let who = select(&respects, &region).expect("consistent input");
    w!(
        out,
        "{}",
        render_table_titled(&who, Some("Fig. 7: who do obsequious students respect?"))
    );
    let flat = hrdm_core::flat::flatten(&who);
    assert!(flat.contains(&respects.item(&["John", "Smith"]).expect("names")));

    let john = select_eq(&respects, "Student", "John").expect("consistent input");
    w!(
        out,
        "{}",
        render_table_titled(&john, Some("Fig. 8: who does John respect?"))
    );
    let flat = hrdm_core::flat::flatten(&john);
    assert_eq!(flat.len(), 2, "John respects Smith and Jones");
}

/// EX8 — Fig. 9: selection with justification.
fn fig9(out: &mut String) {
    heading(out, "Fig. 9 — Selection on Animal-Color with justification");
    let (animals, colors) = fig4_graphs();
    let rel = fig4_colors(&animals, &colors);
    let clyde_grey = rel.item(&["Clyde", "Grey"]).expect("fixture names");
    let j = justify(&rel, &clyde_grey);
    w!(
        out,
        "query: is Clyde grey?  answer: {:?}",
        j.binding.truth()
    );
    w!(out, "applicable tuples (Fig. 9b):");
    for t in &j.applicable {
        w!(
            out,
            "    {} {}",
            t.truth.sign(),
            rel.schema().display_item(&t.item)
        );
    }
    w!(out, "decisive tuple(s):");
    for t in &j.decisive {
        w!(
            out,
            "    {} {}",
            t.truth.sign(),
            rel.schema().display_item(&t.item)
        );
    }
    assert_eq!(j.applicable.len(), 2);
    assert_eq!(j.decisive.len(), 1);
}

/// EX9 — Fig. 10: set operations on the Jack/Jill loves relations.
fn fig10(out: &mut String) {
    heading(out, "Fig. 10 — Set operations (Jack and Jill)");
    let tax = fig1_taxonomy();
    let schema = Arc::new(Schema::single("Creature", tax));
    let mut jack = HRelation::new(schema.clone());
    jack.assert_fact(&["Bird"], Truth::Positive).expect("names");
    jack.assert_fact(&["Penguin"], Truth::Negative)
        .expect("names");
    jack.assert_fact(&["Peter"], Truth::Positive)
        .expect("names");
    let mut jill = HRelation::new(schema);
    jill.assert_fact(&["Penguin"], Truth::Positive)
        .expect("names");
    w!(
        out,
        "{}",
        render_table_titled(&jack, Some("(a) Jack loves"))
    );
    w!(
        out,
        "{}",
        render_table_titled(&jill, Some("(b) Jill loves"))
    );

    let u = consolidate(&union(&jack, &jill).expect("compatible")).relation;
    w!(
        out,
        "{}",
        render_table_titled(
            &u,
            Some("(c) Jack and Jill between them love (consolidated)")
        )
    );
    let i = consolidate(&intersection(&jack, &jill).expect("compatible")).relation;
    w!(
        out,
        "{}",
        render_table_titled(&i, Some("(d) Jack and Jill both love"))
    );
    let d1 = consolidate(&difference(&jack, &jill).expect("compatible")).relation;
    w!(
        out,
        "{}",
        render_table_titled(&d1, Some("(e) Jack loves but Jill does not"))
    );
    let d2 = consolidate(&difference(&jill, &jack).expect("compatible")).relation;
    w!(
        out,
        "{}",
        render_table_titled(&d2, Some("(f) Jill loves but Jack does not"))
    );

    let flat = hrdm_core::flat::flatten(&i);
    assert_eq!(flat.len(), 1, "only Peter is loved by both");
}

/// EX10 — Fig. 11: join and projection back, no information loss.
fn fig11(out: &mut String) {
    heading(out, "Fig. 11 — Join and projection back");
    let (animals, colors) = fig4_graphs();
    let color_rel = fig4_colors(&animals, &colors);
    let (_enc, size_rel) = fig11_enclosures(&animals);
    w!(
        out,
        "{}",
        render_table_titled(&size_rel, Some("(a) Enclosure-Size relation"))
    );
    let joined = join(&size_rel, &color_rel).expect("shared Animal attribute");
    w!(
        out,
        "{}",
        render_table_titled(&joined, Some("(b) join with Animal-Color"))
    );
    let back = project_names(&joined, &["Animal", "Color"]).expect("attribute names");
    w!(
        out,
        "{}",
        render_table_titled(
            &consolidate(&back).relation,
            Some("(c) projection back on Animal-Color (consolidated)")
        )
    );
    assert_eq!(
        hrdm_core::flat::flatten(&back).atoms(),
        hrdm_core::flat::flatten(&color_rel).atoms(),
        "no loss of information"
    );
    w!(out, "projection recovers the Animal-Color model exactly.");
}

/// EX11 — Appendix: the three preemption semantics.
fn appendix(out: &mut String) {
    heading(out, "Appendix — Off-path vs on-path vs no-preemption");
    let tax = fig1_taxonomy();
    let mut flying = fig1_relation(&tax);
    let patricia = flying.item(&["Patricia"]).expect("name");
    let pamela = flying.item(&["Pamela"]).expect("name");

    for mode in Preemption::ALL {
        flying.set_preemption(mode);
        let pat = flying.bind(&patricia);
        let pam = flying.bind(&pamela);
        w!(
            out,
            "{mode:14}  Patricia: {:22}  Pamela: {:?}",
            format!("{:?}", pat.truth().map(|t| t.holds())),
            pam.truth().map(|t| t.holds())
        );
        match mode {
            Preemption::OffPath => {
                assert_eq!(pat.truth(), Some(Truth::Positive));
                assert_eq!(pam.truth(), Some(Truth::Positive));
            }
            Preemption::OnPath => {
                // Galapagos-penguin path avoids the AFP tuple.
                assert!(pat.is_conflict());
                assert_eq!(pam.truth(), Some(Truth::Positive));
            }
            Preemption::NoPreemption => {
                assert!(pat.is_conflict());
                assert!(pam.is_conflict());
            }
        }
    }
    flying.set_preemption(Preemption::OffPath);

    // The deliberate redundant edge: "state that Pamela is a Penguin".
    let mut g2 = (*tax).clone();
    let penguin = g2.expect("Penguin");
    let pam_node = g2.expect("Pamela");
    g2.add_edge(penguin, pam_node)
        .expect("redundant edge is legal");
    let schema2 = Arc::new(Schema::single("Creature", Arc::new(g2)));
    let mut flying2 = HRelation::new(schema2);
    flying2
        .assert_fact(&["Bird"], Truth::Positive)
        .expect("names");
    flying2
        .assert_fact(&["Penguin"], Truth::Negative)
        .expect("names");
    flying2
        .assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
        .expect("names");
    let pam2 = flying2.item(&["Pamela"]).expect("name");
    assert!(flying2.bind(&pam2).is_conflict());
    w!(
        out,
        "redundant Penguin->Pamela edge: off-path now conflicts at Pamela ✓"
    );

    // And the literal elimination graph for the on-path derivation.
    let keep: Vec<_> = ["Bird", "Penguin", "Amazing Flying Penguin", "Patricia"]
        .iter()
        .map(|n| tax.expect(n))
        .chain([tax.root()])
        .collect();
    let mut e = EliminationGraph::new(&tax, EliminationMode::OnPath);
    e.retain(|n| keep.contains(&n));
    let preds = e.predecessors(tax.expect("Patricia")).len();
    assert_eq!(preds, 2, "Penguin re-inserted next to AFP");
    w!(out, "on-path elimination re-inserts Penguin -> Patricia ✓");

    let _ = explicate_all(&flying); // exercised for completeness
}

/// Sum of the `rows` field over the plan-node spans of a trace. Plan
/// nodes are the bare capitalized kind words ("Scan", "Select", …);
/// operator-internal spans are dotted and excluded.
fn plan_rows(trace: &hrdm_obs::QueryTrace) -> u64 {
    trace
        .nodes()
        .iter()
        .filter(|n| !n.name.contains('.'))
        .filter_map(|n| n.field_u64("rows"))
        .sum()
}

/// EX12 — the unified plan layer: EXPLAIN output and the row-count
/// payoff of explicate/select fusion. Row counts come from the plan's
/// own execution trace (not the process-global counters), so the
/// section stays deterministic under parallel tests.
fn plans(out: &mut String) {
    heading(out, "Plan layer — EXPLAIN and explicate/select fusion");

    // The Fig. 1 question "which penguins fly?", phrased over the
    // explicated relation so the fusion rule has something to do.
    let tax = fig1_taxonomy();
    let flying = fig1_relation(&tax);
    let plan = LogicalPlan::scan("Flies", flying)
        .explicate(vec![0])
        .select_eq("Creature", "Penguin");
    w!(
        out,
        "query: which penguins fly? (σ over an explicated Fig. 1)\n"
    );
    w!(out, "plan as written:\n{}", plan.render());
    w!(out, "EXPLAIN:\n{}", plan.explain());
    let (optimized, rewrites) = plan.optimize();
    assert!(rewrites.iter().any(|r| r.rule == "selecteq-normalize"));
    assert!(rewrites.iter().any(|r| r.rule == "explicate-select-fusion"));
    let naive = plan.execute().expect("consistent input");
    let fused = optimized.execute().expect("consistent input");
    assert_eq!(
        naive.relation.len(),
        fused.relation.len(),
        "rewrites preserve the answer"
    );

    // The same fusion on a B4-sized workload: restrict the fan-out of a
    // balanced-tree explication to one deep subclass before expanding.
    let r = explication_workload(4, 5);
    let graph = r.schema().domain(0);
    let asserted = graph.classes().next().expect("tree has classes");
    let leaf_class = graph
        .descendants(asserted)
        .into_iter()
        .rfind(|&d| !graph.is_instance(d))
        .expect("asserted class has subclasses");
    let region = Item::new(vec![leaf_class]);
    let wide = LogicalPlan::scan("B4", r).explicate(vec![0]).select(region);
    let (wide_fused, wide_rewrites) = wide.optimize();
    assert!(wide_rewrites
        .iter()
        .any(|w| w.rule == "explicate-select-fusion"));
    let naive_exec = wide.execute().expect("consistent");
    let fused_exec = wide_fused.execute().expect("consistent");
    let naive_rows = plan_rows(&naive_exec.trace);
    let fused_rows = plan_rows(&fused_exec.trace);
    assert!(
        !fused_exec.relation.is_empty(),
        "the selected subtree has instances"
    );
    w!(
        out,
        "B4-style workload (balanced 4-ary tree, depth 5), one deep subclass selected:"
    );
    w!(out, "    answer tuples: {}", fused_exec.relation.len());
    w!(out, "    rows through naive plan nodes: {naive_rows}");
    w!(out, "    rows through fused plan nodes: {fused_rows}");
    assert!(
        fused_rows < naive_rows,
        "fusion must reduce per-node row flow ({fused_rows} !< {naive_rows})"
    );
    w!(
        out,
        "fusion restricts the explication fan-out before expansion ✓"
    );
}

fn explain_one(out: &mut String, title: &str, plan: &LogicalPlan, expect: &[&str]) {
    heading(out, title);
    w!(out, "plan as written:\n{}", plan.render());
    w!(out, "EXPLAIN:\n{}", plan.explain());
    let (_, rewrites) = plan.optimize();
    for rule in expect {
        assert!(
            rewrites.iter().any(|r| r.rule == *rule),
            "{title}: expected rewrite {rule} to fire"
        );
    }
}

/// EXPLAIN renderings of the paper's worked queries, at least one per
/// rewrite rule. The `figures` binary prints it and
/// `tests/paper_scenarios.rs` snapshots it as `tests/golden/explain.txt`.
pub fn explain_report() -> String {
    let mut out = String::new();
    let tax = fig1_taxonomy();
    let flying = fig1_relation(&tax);
    let (students, teachers) = fig2_graphs();
    let respects = fig3_respects(&students, &teachers);
    let (animals, colors) = fig4_graphs();
    let color_rel = fig4_colors(&animals, &colors);
    let (_enc, size_rel) = fig11_enclosures(&animals);

    explain_one(
        &mut out,
        "Fig. 8 — who does John respect?",
        &LogicalPlan::scan("Respects", respects.clone()).select_eq("Student", "John"),
        &["selecteq-normalize"],
    );

    explain_one(
        &mut out,
        "Fig. 6 + Fig. 8 — selection over a consolidation",
        &LogicalPlan::scan("Respects", respects.clone())
            .consolidate()
            .select_eq("Student", "John"),
        &["selecteq-normalize", "consolidate-hoist"],
    );

    explain_one(
        &mut out,
        "Fig. 1 — which penguins fly, over the explicated relation?",
        &LogicalPlan::scan("Flies", flying)
            .explicate(vec![0])
            .select_eq("Creature", "Penguin"),
        &["selecteq-normalize", "explicate-select-fusion"],
    );

    explain_one(
        &mut out,
        "Fig. 11 — royal elephants in the Enclosure ⋈ Color join",
        &LogicalPlan::scan("Sizes", size_rel)
            .join(LogicalPlan::scan("Colors", color_rel))
            .select_eq("Animal", "Royal Elephant"),
        &["selecteq-normalize", "select-pushdown-join"],
    );

    // Fig. 10's Jack/Jill relations, asked for penguins only.
    let schema = Arc::new(Schema::single("Creature", tax));
    let mut jack = HRelation::new(schema.clone());
    jack.assert_fact(&["Bird"], Truth::Positive).expect("names");
    jack.assert_fact(&["Penguin"], Truth::Negative)
        .expect("names");
    jack.assert_fact(&["Peter"], Truth::Positive)
        .expect("names");
    let mut jill = HRelation::new(schema);
    jill.assert_fact(&["Penguin"], Truth::Positive)
        .expect("names");
    explain_one(
        &mut out,
        "Fig. 10 — penguins loved by Jack or Jill",
        &LogicalPlan::scan("Jack", jack)
            .union(LogicalPlan::scan("Jill", jill))
            .select_eq("Creature", "Penguin"),
        &["selecteq-normalize", "select-pushdown-union"],
    );

    explain_one(
        &mut out,
        "§3.3.1 — double consolidation collapses",
        &LogicalPlan::scan("Respects", respects)
            .consolidate()
            .consolidate(),
        &["consolidate-idempotent"],
    );

    w!(out, "\nAll six rewrite rules demonstrated.");
    out
}

/// Per-node execution traces of one worked query on BOTH engines — the
/// hierarchical root-consolidate executor and the flat volcano lowering
/// — in stable-field form (rows and cache attribution only, no wall
/// times, so the output is golden-snapshot safe). Each engine runs
/// against freshly built fixtures: fresh hierarchy graphs have fresh
/// cache identities, which pins every hit/miss count regardless of what
/// other tests did to the shared caches.
///
/// The `figures` binary prints it and `tests/paper_scenarios.rs`
/// snapshots it as `tests/golden/trace.txt`.
pub fn trace_report() -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "TRACE — which penguins fly? on both engines (stable fields)",
    );
    let build = || {
        let tax = fig1_taxonomy();
        let flying = fig1_relation(&tax);
        LogicalPlan::scan("Flies", flying)
            .explicate(vec![0])
            .select_eq("Creature", "Penguin")
            .optimize()
            .0
    };

    let hier = build().execute().expect("consistent input");
    w!(
        out,
        "hierarchical engine (root-consolidate):\n{}",
        hier.trace.render_stable()
    );

    let (rows, flat_trace) =
        crate::flatplan::execute_flat_traced(&build()).expect("flat engine evaluates");
    w!(
        out,
        "flat engine (volcano lowering):\n{}",
        flat_trace.render_stable()
    );

    // The batch-at-a-time executor over the columnar runs: byte-identical
    // relation, `batch.*` span names, deterministic per-query memo
    // counts (the local memos, not the process-global caches).
    let batch = hrdm_core::batch::execute_batch(&build()).expect("consistent input");
    assert_eq!(
        hier.relation.iter().collect::<Vec<_>>(),
        batch.relation.iter().collect::<Vec<_>>(),
        "batch executor is byte-identical"
    );
    w!(
        out,
        "batch engine (columnar runs):\n{}",
        batch.trace.render_stable()
    );

    // And the flat volcano lowering batched, with the fixed default
    // cost-model calibration picking its access paths.
    let model = hrdm_core::cost::CostModel::default_calibration();
    let (brows, flat_batch_trace) = crate::flatplan::execute_flat_batch_traced(&build(), &model)
        .expect("flat batch engine evaluates");
    assert_eq!(rows, brows, "flat batch lowering agrees with volcano");
    w!(
        out,
        "flat batch engine (cost-model access paths):\n{}",
        flat_batch_trace.render_stable()
    );

    // §3's equivalence principle, visible in the traces themselves.
    let flat_of_hier = hrdm_core::flat::flatten(&hier.relation).atoms().len();
    assert_eq!(flat_of_hier, rows.len(), "engines agree on the extension");
    w!(out, "all engines report {} atom row(s).", rows.len());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_is_deterministic() {
        assert_eq!(super::report(), super::report());
    }

    #[test]
    fn explain_report_is_deterministic() {
        assert_eq!(super::explain_report(), super::explain_report());
    }

    #[test]
    fn trace_report_is_deterministic() {
        assert_eq!(super::trace_report(), super::trace_report());
    }
}
