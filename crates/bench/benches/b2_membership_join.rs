//! B2 — footnote 1: point and listing queries, hierarchical binding vs
//! the membership-join plan vs the fully explicated indexed table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::fixtures::{class_probe, export_obs_json, print_engine_stats};
use hrdm_bench::workloads::{class_workload, explicated_table, footnote1_baseline};

fn bench_point_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_point_query");
    for members in [100usize, 1_000, 10_000] {
        let w = class_workload(members, members / 100);
        let baseline = footnote1_baseline(&w);
        let flat = explicated_table(&w);
        let (probe_item, probe_id) = class_probe(&w);

        group.bench_with_input(
            BenchmarkId::new("hierarchical_binding", members),
            &(),
            |b, ()| b.iter(|| std::hint::black_box(w.relation.holds(&probe_item))),
        );
        group.bench_with_input(BenchmarkId::new("footnote1_join", members), &(), |b, ()| {
            b.iter(|| std::hint::black_box(baseline.holds(probe_id)))
        });
        group.bench_with_input(BenchmarkId::new("flat_indexed", members), &(), |b, ()| {
            b.iter(|| std::hint::black_box(!flat.lookup(0, probe_id).is_empty()))
        });
    }
    group.finish();
}

fn bench_listing_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_listing");
    group.sample_size(10);
    for members in [100usize, 1_000, 10_000] {
        let w = class_workload(members, members / 100);
        let baseline = footnote1_baseline(&w);
        group.bench_with_input(
            BenchmarkId::new("hierarchical_flatten", members),
            &(),
            |b, ()| b.iter(|| std::hint::black_box(hrdm_core::flat::flatten(&w.relation).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("footnote1_expand_join", members),
            &(),
            |b, ()| b.iter(|| std::hint::black_box(baseline.list().len())),
        );
    }
    group.finish();
}

fn report_stats(_c: &mut Criterion) {
    print_engine_stats("b2");
    export_obs_json("b2", "BENCH_obs.json").expect("write BENCH_obs.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_point_queries, bench_listing_queries, report_stats
}
criterion_main!(benches);
