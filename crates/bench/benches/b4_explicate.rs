//! B4 — §3.3.2 explication: output-linear flattening cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hrdm_bench::workloads::explication_workload;
use hrdm_core::explicate::explicate_all;

fn bench_explicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_explicate");
    for depth in [3usize, 4, 5, 6] {
        let r = explication_workload(4, depth);
        let extension = explicate_all(&r).len();
        group.throughput(Throughput::Elements(extension as u64));
        group.bench_with_input(
            BenchmarkId::new("explicate_all", extension),
            &r,
            |b, r| {
                b.iter(|| std::hint::black_box(explicate_all(r).len()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_explicate
}
criterion_main!(benches);
