//! B4 — §3.3.2 explication: output-linear flattening cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hrdm_bench::fixtures::{clear_shared_caches, export_obs_json, print_engine_stats};
use hrdm_bench::workloads::{consolidation_workload, explication_workload};
use hrdm_core::explicate::explicate_all;

fn bench_explicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_explicate");
    for depth in [3usize, 4, 5, 6] {
        let r = explication_workload(4, depth);
        let extension = explicate_all(&r).len();
        group.throughput(Throughput::Elements(extension as u64));
        group.bench_with_input(BenchmarkId::new("explicate_all", extension), &r, |b, r| {
            b.iter(|| std::hint::black_box(explicate_all(r).len()));
        });
        // Cache ablation: pay the subsumption-graph and closure builds
        // on every iteration instead of reusing the shared caches.
        group.bench_with_input(
            BenchmarkId::new("explicate_all_cold", extension),
            &r,
            |b, r| {
                b.iter(|| {
                    clear_shared_caches();
                    std::hint::black_box(explicate_all(r).len())
                });
            },
        );
    }
    group.finish();
}

/// Tuple-rich explication: many stored tuples, modest fan-out, so the
/// O(t²) subsumption-graph construction — not the cartesian expansion —
/// is the dominant cost. Warm runs reuse the shared cached core; cold
/// runs rebuild it, making the cache win directly visible.
fn bench_explicate_tuple_rich(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_explicate_tuple_rich");
    for (depth, classes, redundant) in [(4usize, 8usize, 4usize), (4, 16, 8), (5, 32, 16)] {
        let r = consolidation_workload(3, depth, classes, redundant);
        let label = format!("{}t", r.len());
        group.bench_with_input(BenchmarkId::new("warm", &label), &r, |b, r| {
            b.iter(|| std::hint::black_box(explicate_all(r).len()));
        });
        group.bench_with_input(BenchmarkId::new("cold", &label), &r, |b, r| {
            b.iter(|| {
                clear_shared_caches();
                std::hint::black_box(explicate_all(r).len())
            });
        });
    }
    group.finish();
}

fn report_stats(_c: &mut Criterion) {
    print_engine_stats("b4");
    export_obs_json("b4", "BENCH_obs.json").expect("write BENCH_obs.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_explicate, bench_explicate_tuple_rich, report_stats
}
criterion_main!(benches);
