//! B8 — §4 mechanical hierarchy discovery: greedy cover cost across
//! coverage levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::workloads::discovery_workload;
use hrdm_core::discover::discover;

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("b8_discovery");
    group.sample_size(10);
    for coverage in [100usize, 90, 50] {
        let flat = discovery_workload(5, 40, coverage);
        group.bench_with_input(
            BenchmarkId::new("greedy_discover", format!("{coverage}pct")),
            &flat,
            |b, flat| b.iter(|| std::hint::black_box(discover(flat).stats.hierarchical_tuples)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
