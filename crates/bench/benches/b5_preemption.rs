//! B5 — Appendix preemption ablation: binding-lookup cost per semantics
//! over a multiple-inheritance DAG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::workloads::dag_relation;
use hrdm_core::prelude::*;

fn bench_preemption(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_preemption");
    let base = dag_relation(4, 8, 3, 12, 7);
    let atoms: Vec<Item> = base
        .schema()
        .domain(0)
        .instances()
        .map(|n| Item::new(vec![n]))
        .collect();
    for mode in Preemption::ALL {
        let mut r = base.clone();
        r.set_preemption(mode);
        group.bench_with_input(
            BenchmarkId::new("bind_all_atoms", mode.to_string()),
            &r,
            |b, r| {
                b.iter(|| {
                    atoms
                        .iter()
                        .map(|a| std::hint::black_box(r.bind(a).truth().is_some()) as usize)
                        .sum::<usize>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("find_conflicts", mode.to_string()),
            &r,
            |b, r| {
                b.iter(|| std::hint::black_box(hrdm_core::conflict::find_conflicts(r).len()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_preemption
}
criterion_main!(benches);
