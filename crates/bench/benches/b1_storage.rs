//! B1 — §1 storage compression: building the hierarchical relation vs
//! loading the flat extension into the baseline engine.
//!
//! The quantity the paper claims (tuple/byte counts) is printed by the
//! `tables` binary; this bench measures the *time* to materialize each
//! representation, which scales the same way: O(exceptions) vs
//! O(members).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::workloads::{class_workload, explicated_table};

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_storage");
    for members in [100usize, 1_000, 10_000] {
        let w = class_workload(members, 10.min(members));
        group.bench_with_input(
            BenchmarkId::new("build_hierarchical", members),
            &members,
            |b, &members| {
                b.iter(|| {
                    let w = class_workload(members, 10.min(members));
                    std::hint::black_box(w.relation.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("load_flat_baseline", members),
            &w,
            |b, w| {
                b.iter(|| std::hint::black_box(explicated_table(w).len()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_storage
}
criterion_main!(benches);
