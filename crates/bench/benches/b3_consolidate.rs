//! B3 — §3.3.1 consolidation: cascading topological elimination cost as
//! relation size and redundancy grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::fixtures::{clear_shared_caches, export_obs_json, print_engine_stats};
use hrdm_bench::workloads::consolidation_workload;
use hrdm_core::consolidate::{consolidate, consolidate_reverse_order, immediately_redundant};

fn bench_consolidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_consolidate");
    for (classes, redundant) in [(4usize, 2usize), (8, 4), (16, 8)] {
        let r = consolidation_workload(3, 4, classes, redundant);
        let label = format!("{}t", r.len());
        group.bench_with_input(BenchmarkId::new("cascading", &label), &r, |b, r| {
            b.iter(|| std::hint::black_box(consolidate(r).removed.len()));
        });
        // Ablation: the single-pass variant misses cascaded redundancy.
        group.bench_with_input(BenchmarkId::new("single_pass", &label), &r, |b, r| {
            b.iter(|| std::hint::black_box(immediately_redundant(r).len()));
        });
        // Ablation: reverse order can miss the unique minimum.
        group.bench_with_input(BenchmarkId::new("reverse_order", &label), &r, |b, r| {
            b.iter(|| std::hint::black_box(consolidate_reverse_order(r).removed.len()));
        });
        // Ablation: the cascading run above reuses the shared
        // subsumption/closure caches between iterations; this one pays
        // the full graph construction every time. The gap is the win of
        // the caching layer on repeated-operator workloads.
        group.bench_with_input(BenchmarkId::new("cascading_cold", &label), &r, |b, r| {
            b.iter(|| {
                clear_shared_caches();
                std::hint::black_box(consolidate(r).removed.len())
            });
        });
    }
    group.finish();
}

fn report_stats(_c: &mut Criterion) {
    print_engine_stats("b3");
    export_obs_json("b3", "BENCH_obs.json").expect("write BENCH_obs.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_consolidate, report_stats
}
criterion_main!(benches);
