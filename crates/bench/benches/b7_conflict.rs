//! B7 — §3.1 conflict detection and resolution-set cost as
//! multiple-inheritance density grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::workloads::dag_relation;
use hrdm_core::conflict::{find_conflicts, minimal_resolution_set};

fn bench_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("b7_conflict");
    for max_parents in [1usize, 2, 3, 4] {
        let r = dag_relation(4, 8, max_parents, 12, 11);
        group.bench_with_input(
            BenchmarkId::new("find_conflicts", max_parents),
            &r,
            |b, r| b.iter(|| std::hint::black_box(find_conflicts(r).len())),
        );
    }
    // Resolution-set computation for the densest case.
    let r = dag_relation(4, 8, 4, 12, 11);
    let items: Vec<_> = r.items().cloned().collect();
    if items.len() >= 2 {
        group.bench_function("minimal_resolution_set", |b| {
            b.iter(|| {
                std::hint::black_box(minimal_resolution_set(r.schema(), &items[0], &items[1]).len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conflict
}
criterion_main!(benches);
