//! B6 — §2.2 product hierarchies: lazy probes stay cheap while the
//! materialized product grows geometrically with arity.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_hierarchy::gen::balanced_tree;
use hrdm_hierarchy::{NodeId, ProductHierarchy};

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_product");
    for arity in 1usize..=4 {
        let domains: Vec<Arc<hrdm_hierarchy::HierarchyGraph>> =
            (0..arity).map(|_| Arc::new(balanced_tree(3, 3))).collect();
        // A deep atom and a shallow class item to probe between.
        let atom: Vec<NodeId> = domains
            .iter()
            .map(|g| g.instances().next().expect("tree has instances"))
            .collect();
        let class: Vec<NodeId> = domains
            .iter()
            .map(|g| g.classes().next().expect("tree has classes"))
            .collect();
        let p = ProductHierarchy::new(domains);
        group.bench_with_input(BenchmarkId::new("lazy_reaches", arity), &(), |b, ()| {
            b.iter(|| std::hint::black_box(p.reaches(&class, &atom)))
        });
        group.bench_with_input(BenchmarkId::new("lazy_parents", arity), &(), |b, ()| {
            b.iter(|| std::hint::black_box(p.parents(&atom).len()))
        });
    }
    // Materialization is only feasible at tiny sizes — that asymmetry IS
    // the experiment.
    for arity in 1usize..=2 {
        let domains: Vec<Arc<hrdm_hierarchy::HierarchyGraph>> =
            (0..arity).map(|_| Arc::new(balanced_tree(2, 3))).collect();
        let p = ProductHierarchy::new(domains);
        group.bench_with_input(BenchmarkId::new("materialize", arity), &(), |b, ()| {
            b.iter(|| std::hint::black_box(p.materialize().expect("small product").len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_product
}
criterion_main!(benches);
