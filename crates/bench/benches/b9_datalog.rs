//! B9 — §2.1 Datalog over hierarchical EDB: semi-naive transitive
//! closure throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hrdm_bench::workloads::datalog_workload;

fn bench_datalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("b9_datalog");
    group.sample_size(10);
    for n in [10usize, 30, 60] {
        let (engine, program) = datalog_workload(n);
        let facts = (n * (n - 1) / 2) as u64;
        group.throughput(Throughput::Elements(facts));
        group.bench_with_input(BenchmarkId::new("transitive_closure", n), &(), |b, ()| {
            b.iter(|| {
                std::hint::black_box(engine.run(&program).expect("stratifiable")["path"].len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
