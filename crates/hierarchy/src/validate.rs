//! Structural validation of hierarchy graphs.
//!
//! [`HierarchyGraph`] enforces its invariants at mutation time, but two
//! checks deserve standalone entry points:
//!
//! * the §3.1 **type-irredundancy** constraint (no cycles) — useful for
//!   auditing graphs assembled by front ends,
//! * **redundant-edge detection** — the Appendix makes off-path
//!   preemption contingent on the hierarchy being transitively reduced,
//!   so front ends that want the paper's default semantics can audit (and
//!   strip) redundant edges before building relations.

use crate::graph::{HierarchyGraph, NodeKind};
use crate::node::NodeId;
use crate::reach::redundant_edge_list;

/// A structural problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An edge participates in a cycle (type-irredundancy violation).
    ///
    /// Cannot occur for graphs built through the public API; reported for
    /// completeness of the audit.
    Cycle(NodeId),
    /// A redundant (transitive) subset/preference edge; under off-path
    /// preemption the Appendix expects none unless deliberately placed.
    RedundantEdge(NodeId, NodeId),
    /// A class unreachable from the root via subset edges: it denotes a
    /// set that is not a sub-domain of the attribute domain.
    Unrooted(NodeId),
}

/// Audit `g` and return every violation found.
///
/// A graph built exclusively through [`HierarchyGraph`]'s constructors
/// can only report [`Violation::RedundantEdge`] (which is legal but
/// changes preemption semantics) and [`Violation::Unrooted`] (possible
/// after `remove_edge`).
pub fn validate(g: &HierarchyGraph) -> Vec<Violation> {
    let mut out = Vec::new();

    // Cycle check via DFS colouring over all edge kinds.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; g.len()];
    let mut in_cycle = Vec::new();
    for start in g.node_ids() {
        if colour[start.index()] != Colour::White {
            continue;
        }
        // Iterative DFS with an explicit edge cursor.
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        colour[start.index()] = Colour::Grey;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            let children: Vec<NodeId> = g.children(n).collect();
            if *i < children.len() {
                let c = children[*i];
                *i += 1;
                match colour[c.index()] {
                    Colour::White => {
                        colour[c.index()] = Colour::Grey;
                        stack.push((c, 0));
                    }
                    Colour::Grey => in_cycle.push(c),
                    Colour::Black => {}
                }
            } else {
                colour[n.index()] = Colour::Black;
                stack.pop();
            }
        }
    }
    out.extend(in_cycle.into_iter().map(Violation::Cycle));

    for (u, v) in redundant_edge_list(g) {
        out.push(Violation::RedundantEdge(u, v));
    }

    for id in g.node_ids() {
        if id != g.root() && g.kind(id) != NodeKind::Domain && !g.is_descendant(id, g.root()) {
            out.push(Violation::Unrooted(id));
        }
    }

    out
}

/// True when `g` satisfies the paper's default (off-path) preconditions:
/// acyclic, rooted, and transitively reduced.
pub fn is_off_path_ready(g: &HierarchyGraph) -> bool {
    validate(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HierarchyGraph;

    #[test]
    fn clean_graph_validates() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        g.add_instance("i", a).unwrap();
        assert!(validate(&g).is_empty());
        assert!(is_off_path_ready(&g));
    }

    #[test]
    fn redundant_edge_reported() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.add_edge(g.root(), b).unwrap();
        let v = validate(&g);
        assert_eq!(v, vec![Violation::RedundantEdge(g.root(), b)]);
        assert!(!is_off_path_ready(&g));
    }

    #[test]
    fn unrooted_node_reported_after_edge_removal() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.remove_edge(a, b).unwrap();
        let v = validate(&g);
        assert_eq!(v, vec![Violation::Unrooted(b)]);
    }

    #[test]
    fn preference_only_parent_is_unrooted() {
        // A node reachable from the root only via a preference edge is
        // not a subset of the domain.
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.remove_edge(a, b).unwrap();
        g.add_preference_edge(a, b).unwrap();
        let v = validate(&g);
        assert!(v.contains(&Violation::Unrooted(b)));
    }
}
