//! The hierarchy graph: a rooted DAG of classes and instances.
//!
//! §2.1 of the paper: "The hierarchy graph for a domain is a rooted
//! directed acyclic graph, with the domain itself being the root and with
//! edges from each more general class to its derived more specific
//! classes. Instances form the leaves of this graph."
//!
//! The Appendix adds a second kind of edge: *preference edges*, which "do
//! not represent set inclusion in the way that the other links in the
//! hierarchy do, but are used to induce the proper tuple binding graph".
//! Both kinds live in one adjacency structure, tagged by [`EdgeKind`], so
//! membership queries can ignore preference edges while binding-graph
//! construction honours them.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{HierarchyError, Result};
use crate::node::{NodeId, NodeName};

/// Source of process-unique graph identities (see
/// [`HierarchyGraph::graph_id`]).
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_graph_id() -> u64 {
    NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed)
}

/// What a node stands for in the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The attribute domain itself — the unique root.
    Domain,
    /// A class: a named subset of the domain, possibly with children.
    Class,
    /// An instance: an atomic element, always a leaf ("level 0 class").
    Instance,
}

/// Discriminates genuine subset edges from Appendix preference edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A set-inclusion edge from a more general class to a more specific
    /// class or instance.
    Subset,
    /// A preference edge (Appendix): induces binding strength without
    /// asserting set inclusion.
    Preference,
}

#[derive(Debug, Clone)]
struct NodeData {
    name: NodeName,
    kind: NodeKind,
    /// Outgoing edges: toward more specific nodes.
    children: Vec<(NodeId, EdgeKind)>,
    /// Incoming edges: toward more general nodes.
    parents: Vec<(NodeId, EdgeKind)>,
}

/// A rooted DAG of classes with instances at the leaves.
///
/// The graph enforces, at mutation time, the invariants the paper's model
/// depends on:
///
/// * **acyclicity** (the §3.1 *type-irredundancy* constraint),
/// * a single root ([`NodeId::ROOT`]) of kind [`NodeKind::Domain`],
/// * instances are leaves (§2.1),
/// * node names are unique (names are how the relational layer and query
///   surface refer to classes),
/// * no duplicate edges.
///
/// It deliberately does **not** forbid redundant (transitive) edges —
/// the Appendix uses them to switch between off-path and on-path
/// preemption — but [`crate::reach::redundant_edge_list`] detects them and
/// [`crate::reach::transitive_reduction`] removes them.
pub struct HierarchyGraph {
    nodes: Vec<NodeData>,
    by_name: HashMap<NodeName, NodeId>,
    edge_count: usize,
    /// Process-unique identity; see [`HierarchyGraph::graph_id`].
    graph_id: u64,
    /// Bumped on every structural mutation; see
    /// [`HierarchyGraph::generation`].
    generation: u64,
}

/// Cloning takes a *fresh* [`graph_id`](HierarchyGraph::graph_id): the
/// clone may diverge from the original, so derived results cached under
/// the original's identity must never be served for the clone.
impl Clone for HierarchyGraph {
    fn clone(&self) -> HierarchyGraph {
        HierarchyGraph {
            nodes: self.nodes.clone(),
            by_name: self.by_name.clone(),
            edge_count: self.edge_count,
            graph_id: fresh_graph_id(),
            generation: self.generation,
        }
    }
}

impl HierarchyGraph {
    /// Create a graph containing only the root domain node.
    pub fn new(domain_name: impl Into<NodeName>) -> HierarchyGraph {
        let name = domain_name.into();
        let mut by_name = HashMap::new();
        by_name.insert(name.clone(), NodeId::ROOT);
        HierarchyGraph {
            nodes: vec![NodeData {
                name,
                kind: NodeKind::Domain,
                children: Vec::new(),
                parents: Vec::new(),
            }],
            by_name,
            edge_count: 0,
            graph_id: fresh_graph_id(),
            generation: 0,
        }
    }

    /// A process-unique identity for this graph *value*.
    ///
    /// Together with [`generation`](HierarchyGraph::generation) it forms
    /// the version key `(graph_id, generation)` under which derived
    /// structures (reachability closures, subsumption cores) are cached:
    /// ids are never reused within a process and every [`Clone`] takes a
    /// fresh one, so a key can never alias a structurally different graph.
    #[inline]
    pub fn graph_id(&self) -> u64 {
        self.graph_id
    }

    /// A counter bumped on every structural mutation (node added, edge
    /// added or removed). A cached result keyed by
    /// `(graph_id, generation)` is valid iff both still match.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The full cache-version key: `(graph_id, generation)`.
    #[inline]
    pub fn version(&self) -> (u64, u64) {
        (self.graph_id, self.generation)
    }

    /// The root node (the domain).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Number of nodes, including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of edges of both kinds.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn check(&self, id: NodeId) -> Result<()> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(HierarchyError::UnknownNode(id))
        }
    }

    fn add_node(&mut self, name: NodeName, kind: NodeKind, parents: &[NodeId]) -> Result<NodeId> {
        if parents.is_empty() {
            return Err(HierarchyError::NoParent);
        }
        if self.by_name.contains_key(&name) {
            return Err(HierarchyError::DuplicateName(name));
        }
        for &p in parents {
            self.check(p)?;
            if self.kind(p) == NodeKind::Instance {
                return Err(HierarchyError::InstanceHasChildren(p));
            }
        }
        let id = NodeId::from_index(self.nodes.len());
        self.by_name.insert(name.clone(), id);
        self.nodes.push(NodeData {
            name,
            kind,
            children: Vec::new(),
            parents: Vec::new(),
        });
        for &p in parents {
            // A fresh node cannot create a cycle or duplicate edge.
            self.nodes[p.index()].children.push((id, EdgeKind::Subset));
            self.nodes[id.index()].parents.push((p, EdgeKind::Subset));
            self.edge_count += 1;
        }
        self.generation += 1;
        Ok(id)
    }

    /// Add a class under a single parent.
    pub fn add_class(&mut self, name: impl Into<NodeName>, parent: NodeId) -> Result<NodeId> {
        self.add_node(name.into(), NodeKind::Class, &[parent])
    }

    /// Add a class under several parents at once (multiple inheritance).
    pub fn add_class_multi(
        &mut self,
        name: impl Into<NodeName>,
        parents: &[NodeId],
    ) -> Result<NodeId> {
        self.add_node(name.into(), NodeKind::Class, parents)
    }

    /// Add an instance (leaf) under a single parent class.
    pub fn add_instance(&mut self, name: impl Into<NodeName>, parent: NodeId) -> Result<NodeId> {
        self.add_node(name.into(), NodeKind::Instance, &[parent])
    }

    /// Add an instance belonging to several classes (multiple inheritance).
    pub fn add_instance_multi(
        &mut self,
        name: impl Into<NodeName>,
        parents: &[NodeId],
    ) -> Result<NodeId> {
        self.add_node(name.into(), NodeKind::Instance, parents)
    }

    fn add_edge_kind(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> Result<()> {
        self.check(from)?;
        self.check(to)?;
        if from == to {
            return Err(HierarchyError::SelfEdge(from));
        }
        if self.kind(from) == NodeKind::Instance {
            return Err(HierarchyError::InstanceHasChildren(from));
        }
        if self.nodes[from.index()]
            .children
            .iter()
            .any(|&(c, _)| c == to)
        {
            return Err(HierarchyError::DuplicateEdge { from, to });
        }
        // Type-irredundancy (§3.1): reject edges that close a cycle. A
        // cycle through preference edges would still break every
        // topological traversal, so both kinds count.
        if self.reaches(to, from) {
            return Err(HierarchyError::WouldCreateCycle { from, to });
        }
        self.nodes[from.index()].children.push((to, kind));
        self.nodes[to.index()].parents.push((from, kind));
        self.edge_count += 1;
        self.generation += 1;
        Ok(())
    }

    /// Add a subset edge `from -> to` (i.e. `to ⊆ from`).
    ///
    /// Rejects self edges, duplicates, edges out of instances, and edges
    /// that would create a cycle. Redundant (transitive) edges are
    /// *allowed* — the Appendix uses them deliberately; see
    /// [`crate::reach::redundant_edge_list`].
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.add_edge_kind(from, to, EdgeKind::Subset)
    }

    /// Add an Appendix *preference edge*: `to` binds less strongly than
    /// anything reachable from `from`, without `to ⊆ from` being asserted.
    pub fn add_preference_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.add_edge_kind(from, to, EdgeKind::Preference)
    }

    /// Remove a subset or preference edge. Returns an error if absent.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.check(from)?;
        self.check(to)?;
        let children = &mut self.nodes[from.index()].children;
        let before = children.len();
        children.retain(|&(c, _)| c != to);
        if children.len() == before {
            return Err(HierarchyError::UnknownNode(to));
        }
        self.nodes[to.index()].parents.retain(|&(p, _)| p != from);
        self.edge_count -= 1;
        self.generation += 1;
        Ok(())
    }

    /// The node's interned name.
    #[inline]
    pub fn name(&self, id: NodeId) -> &NodeName {
        &self.nodes[id.index()].name
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// True if `id` is an instance (a leaf atomic element).
    #[inline]
    pub fn is_instance(&self, id: NodeId) -> bool {
        self.kind(id) == NodeKind::Instance
    }

    /// Look a node up by name.
    pub fn node(&self, name: impl AsRef<str>) -> Result<NodeId> {
        let name = name.as_ref();
        self.by_name
            .get(&NodeName::new(name))
            .copied()
            .ok_or_else(|| HierarchyError::UnknownName(NodeName::new(name)))
    }

    /// Look a node up by name, panicking when absent.
    ///
    /// Convenience for examples and tests where the name is a literal.
    pub fn expect(&self, name: &str) -> NodeId {
        self.node(name)
            .unwrap_or_else(|_| panic!("no node named {name:?}"))
    }

    /// Outgoing (more specific) neighbours with edge kinds.
    #[inline]
    pub fn children_with_kind(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.nodes[id.index()].children
    }

    /// Incoming (more general) neighbours with edge kinds.
    #[inline]
    pub fn parents_with_kind(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.nodes[id.index()].parents
    }

    /// Outgoing neighbours across both edge kinds.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()].children.iter().map(|&(c, _)| c)
    }

    /// Incoming neighbours across both edge kinds.
    pub fn parents(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()].parents.iter().map(|&(p, _)| p)
    }

    /// Outgoing neighbours via subset edges only.
    pub fn subset_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()]
            .children
            .iter()
            .filter(|&&(_, k)| k == EdgeKind::Subset)
            .map(|&(c, _)| c)
    }

    /// Incoming neighbours via subset edges only.
    pub fn subset_parents(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()]
            .parents
            .iter()
            .filter(|&&(_, k)| k == EdgeKind::Subset)
            .map(|&(p, _)| p)
    }

    /// All node ids, root first.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All instance (leaf atomic) nodes.
    pub fn instances(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&id| self.kind(id) == NodeKind::Instance)
    }

    /// All class nodes (excluding the root domain and instances).
    pub fn classes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&id| self.kind(id) == NodeKind::Class)
    }

    /// Nodes with no outgoing subset edges.
    ///
    /// For fully specified taxonomies these are exactly the instances, but
    /// the paper permits leaf *classes* too ("the leaves of the graph
    /// could represent classes as well rather than instances").
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&id| self.subset_children(id).next().is_none())
    }

    /// Whether `to` is reachable from `from` over edges of any kind.
    ///
    /// Reflexive: every node reaches itself.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            for &(c, _) in &self.nodes[n.index()].children {
                if c == to {
                    return true;
                }
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Set membership: `a ⊆ b` / `a ∈ b`, over subset edges only.
    ///
    /// Reflexive, matching the paper's deliberate conflation of `{a}` and
    /// `a` ("class membership is transitive", and each instance is a
    /// "level 0 class").
    pub fn is_descendant(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![a];
        seen[a.index()] = true;
        while let Some(n) = stack.pop() {
            for &(p, k) in &self.nodes[n.index()].parents {
                if k != EdgeKind::Subset {
                    continue;
                }
                if p == b {
                    return true;
                }
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// All subset ancestors of `id`, excluding `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack = vec![id];
        seen[id.index()] = true;
        while let Some(n) = stack.pop() {
            for p in self.subset_parents(n) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        out
    }

    /// All subset descendants of `id`, excluding `id` itself.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack = vec![id];
        seen[id.index()] = true;
        while let Some(n) = stack.pop() {
            for c in self.subset_children(n) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out
    }

    /// The instance (leaf atomic) members of the set denoted by `id`.
    ///
    /// This is the *extension* of a class (§2.1): an instance `x` is a
    /// member iff `x ⊆ id`. For an instance, the extension is itself.
    pub fn extension(&self, id: NodeId) -> Vec<NodeId> {
        if self.is_instance(id) {
            return vec![id];
        }
        let mut out: Vec<NodeId> = self
            .descendants(id)
            .into_iter()
            .filter(|&d| self.is_instance(d))
            .collect();
        out.sort_unstable();
        out
    }

    /// Do the sets denoted by `a` and `b` provably intersect?
    ///
    /// §3.1's *optimistic* integrity: two sets are assumed disjoint unless
    /// (1) one subsumes the other, or (2) some node — instance *or* class,
    /// "whether or not there exist any instances of this class" — is a
    /// subset of both.
    pub fn provably_intersect(&self, a: NodeId, b: NodeId) -> bool {
        // Comparable nodes share the more specific endpoint; incomparable
        // ones need a common defined descendant. Both cases reduce to a
        // non-empty AND of the cached subset-closure rows (reflexivity
        // puts the specific endpoint of a comparable pair in both rows).
        crate::cache::subset_closure(self).reaches_common(a, b)
    }

    /// The common descendants of `a` and `b` (instances and classes).
    ///
    /// These are the candidate members of the *complete conflict
    /// resolution set* of §3.1.
    pub fn common_descendants(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let r = crate::cache::subset_closure(self);
        r.common_reachable(a, b)
            .into_iter()
            .filter(|&id| id != a && id != b)
            .collect()
    }

    /// All nodes `z` with `z ⊆ a` and `z ⊆ b`, *including* `a`/`b`
    /// themselves when they qualify (unlike [`common_descendants`],
    /// which is the paper's strict §3.1 set).
    ///
    /// This is the defined-node approximation of the set intersection
    /// `a ∩ b`; the relational operators restrict class values with it.
    ///
    /// [`common_descendants`]: HierarchyGraph::common_descendants
    pub fn intersection_candidates(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        crate::cache::subset_closure(self).common_reachable(a, b)
    }

    /// The maximal elements of [`intersection_candidates`]: the coarsest
    /// defined classes/instances covering the intersection of `a` and
    /// `b`. For comparable `a`, `b` this is the more specific of the two;
    /// for provably disjoint classes it is empty.
    ///
    /// [`intersection_candidates`]: HierarchyGraph::intersection_candidates
    pub fn maximal_intersection(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let r = crate::cache::subset_closure(self);
        let cands = r.common_reachable(a, b);
        cands
            .iter()
            .copied()
            .filter(|&z| !cands.iter().any(|&y| y != z && r.reaches(y, z)))
            .collect()
    }
}

impl fmt::Debug for HierarchyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "HierarchyGraph({} nodes, {} edges)",
            self.len(),
            self.edge_count
        )?;
        for id in self.node_ids() {
            let d = &self.nodes[id.index()];
            write!(f, "  {id} {:?} ({:?}) ->", d.name, d.kind)?;
            for &(c, k) in &d.children {
                match k {
                    EdgeKind::Subset => write!(f, " {c}")?,
                    EdgeKind::Preference => write!(f, " {c}(pref)")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1a fragment: Animal -> Bird -> {Canary, Penguin}, etc.
    fn birds() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        g
    }

    #[test]
    fn root_is_domain() {
        let g = HierarchyGraph::new("D");
        assert_eq!(g.kind(g.root()), NodeKind::Domain);
        assert_eq!(g.len(), 1);
        assert!(g.is_empty());
        assert_eq!(*g.name(g.root()), "D");
    }

    #[test]
    fn membership_is_transitive_and_reflexive() {
        let g = birds();
        let tweety = g.expect("Tweety");
        let bird = g.expect("Bird");
        let penguin = g.expect("Penguin");
        assert!(g.is_descendant(tweety, bird));
        assert!(g.is_descendant(tweety, g.root()));
        assert!(g.is_descendant(tweety, tweety));
        assert!(!g.is_descendant(tweety, penguin));
        assert!(!g.is_descendant(bird, tweety));
    }

    #[test]
    fn multiple_inheritance_membership() {
        let g = birds();
        let patricia = g.expect("Patricia");
        assert!(g.is_descendant(patricia, g.expect("Galapagos Penguin")));
        assert!(g.is_descendant(patricia, g.expect("Amazing Flying Penguin")));
        assert!(g.is_descendant(patricia, g.expect("Penguin")));
    }

    #[test]
    fn extension_lists_instances_only() {
        let g = birds();
        let penguin = g.expect("Penguin");
        let ext = g.extension(penguin);
        let names: Vec<&str> = ext.iter().map(|&n| g.name(n).as_str()).collect();
        assert_eq!(names, vec!["Paul", "Patricia", "Pamela", "Peter"]);
        // Extension of an instance is itself.
        assert_eq!(g.extension(g.expect("Tweety")), vec![g.expect("Tweety")]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut g = HierarchyGraph::new("D");
        g.add_class("A", g.root()).unwrap();
        assert!(matches!(
            g.add_class("A", g.root()),
            Err(HierarchyError::DuplicateName(_))
        ));
        // Root name is also reserved.
        assert!(matches!(
            g.add_class("D", g.root()),
            Err(HierarchyError::DuplicateName(_))
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        assert!(matches!(
            g.add_edge(c, a),
            Err(HierarchyError::WouldCreateCycle { .. })
        ));
        assert!(matches!(g.add_edge(a, a), Err(HierarchyError::SelfEdge(_))));
    }

    #[test]
    fn duplicate_edge_rejected_but_redundant_edge_allowed() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        assert!(matches!(
            g.add_edge(a, b),
            Err(HierarchyError::DuplicateEdge { .. })
        ));
        // a -> c is redundant (path a -> b -> c exists) but allowed: the
        // Appendix uses redundant edges to obtain on-path semantics.
        g.add_edge(a, c).unwrap();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn instances_are_leaves() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let i = g.add_instance("i", a).unwrap();
        assert!(matches!(
            g.add_class("B", i),
            Err(HierarchyError::InstanceHasChildren(_))
        ));
        assert!(matches!(
            g.add_edge(i, a),
            Err(HierarchyError::InstanceHasChildren(_))
        ));
        // ...but an instance may gain additional parents.
        let b = g.add_class("B", g.root()).unwrap();
        g.add_edge(b, i).unwrap();
        assert!(g.is_descendant(i, b));
    }

    #[test]
    fn no_parent_rejected() {
        let mut g = HierarchyGraph::new("D");
        assert!(matches!(
            g.add_class_multi("A", &[]),
            Err(HierarchyError::NoParent)
        ));
    }

    #[test]
    fn unknown_node_and_name_errors() {
        let mut g = HierarchyGraph::new("D");
        let bogus = NodeId::from_index(99);
        assert!(matches!(
            g.add_class("A", bogus),
            Err(HierarchyError::UnknownNode(_))
        ));
        assert!(matches!(
            g.node("Nope"),
            Err(HierarchyError::UnknownName(_))
        ));
        assert!(matches!(
            g.add_edge(bogus, g.root()),
            Err(HierarchyError::UnknownNode(_))
        ));
    }

    #[test]
    fn remove_edge_works_and_errors_when_absent() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.add_edge(g.root(), b).unwrap();
        assert_eq!(g.edge_count(), 3);
        g.remove_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_descendant(b, a));
        assert!(g.is_descendant(b, g.root()));
        assert!(g.remove_edge(a, b).is_err());
    }

    #[test]
    fn preference_edges_do_not_imply_membership() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_preference_edge(a, b).unwrap();
        assert!(
            !g.is_descendant(b, a),
            "preference edge is not set inclusion"
        );
        assert!(g.reaches(a, b), "but it does affect reachability/binding");
        assert_eq!(g.subset_parents(b).count(), 1); // just the root
        assert_eq!(g.parents(b).count(), 2);
    }

    #[test]
    fn provably_intersect_is_optimistic() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        // No common descendant: optimistically disjoint.
        assert!(!g.provably_intersect(a, b));
        // Subsumption counts as intersection.
        let a1 = g.add_class("A1", a).unwrap();
        assert!(g.provably_intersect(a, a1));
        // An empty intersection *class* provides the evidence too.
        let ab = g.add_class_multi("AB", &[a, b]).unwrap();
        assert!(g.provably_intersect(a, b));
        assert_eq!(g.common_descendants(a, b), vec![ab]);
    }

    #[test]
    fn common_descendants_finds_shared_instances() {
        let g = birds();
        let gala = g.expect("Galapagos Penguin");
        let afp = g.expect("Amazing Flying Penguin");
        let common = g.common_descendants(gala, afp);
        assert_eq!(common, vec![g.expect("Patricia")]);
    }

    #[test]
    fn maximal_intersection_comparable_pair() {
        let g = birds();
        let bird = g.expect("Bird");
        let penguin = g.expect("Penguin");
        // Comparable: intersection is the more specific class.
        assert_eq!(g.maximal_intersection(bird, penguin), vec![penguin]);
        assert_eq!(g.maximal_intersection(penguin, bird), vec![penguin]);
        // Reflexive.
        assert_eq!(g.maximal_intersection(bird, bird), vec![bird]);
    }

    #[test]
    fn maximal_intersection_incomparable_pair() {
        let g = birds();
        let gala = g.expect("Galapagos Penguin");
        let afp = g.expect("Amazing Flying Penguin");
        assert_eq!(
            g.maximal_intersection(gala, afp),
            vec![g.expect("Patricia")]
        );
        // Provably disjoint classes: empty.
        let canary = g.expect("Canary");
        assert!(g.maximal_intersection(canary, gala).is_empty());
    }

    #[test]
    fn intersection_candidates_include_endpoints() {
        let g = birds();
        let bird = g.expect("Bird");
        let penguin = g.expect("Penguin");
        let c = g.intersection_candidates(bird, penguin);
        assert!(c.contains(&penguin));
        assert!(!c.contains(&bird), "Bird is not a subset of Penguin");
        // Strict §3.1 set excludes the endpoint.
        assert!(!g.common_descendants(bird, penguin).contains(&penguin));
    }

    #[test]
    fn leaves_and_kind_filters() {
        let g = birds();
        let leaves: Vec<&str> = g.leaves().map(|n| g.name(n).as_str()).collect();
        assert_eq!(
            leaves,
            vec!["Tweety", "Paul", "Patricia", "Pamela", "Peter"]
        );
        assert_eq!(g.instances().count(), 5);
        assert_eq!(g.classes().count(), 5);
        assert_eq!(g.len(), 11);
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = birds();
        let patricia = g.expect("Patricia");
        let mut anc: Vec<&str> = g
            .ancestors(patricia)
            .iter()
            .map(|&n| g.name(n).as_str())
            .collect();
        anc.sort_unstable();
        assert_eq!(
            anc,
            vec![
                "Amazing Flying Penguin",
                "Animal",
                "Bird",
                "Galapagos Penguin",
                "Penguin"
            ]
        );
        let desc = g.descendants(g.expect("Penguin"));
        assert_eq!(desc.len(), 6); // 2 classes + 4 instances
    }

    #[test]
    fn debug_output_mentions_nodes() {
        let g = birds();
        let s = format!("{g:?}");
        assert!(s.contains("Penguin"));
        assert!(s.contains("11 nodes"));
    }
}
