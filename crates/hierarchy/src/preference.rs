//! Preference edges: the Appendix's arbitrary-preference conflict
//! resolution.
//!
//! > "There may be circumstances in which one wishes to assert some
//! > general preference relation over nodes in the hierarchy, so that
//! > whenever two nodes have conflicting tuples and apply to some item,
//! > then one dominates the other. Such arbitrary preference rules can be
//! > introduced by placing special edges in the hierarchy. These edges do
//! > not represent set inclusion … but are used to induce the proper
//! > tuple binding graph. After these special edges have been introduced,
//! > the semantics of off-path preemption apply."
//!
//! Concretely: making `stronger` dominate `weaker` means making
//! `stronger` *reachable from* `weaker`, so that in a tuple-binding graph
//! `weaker` is no longer an immediate predecessor of any item they both
//! subsume — `stronger` preempts it off-path.

use crate::error::{HierarchyError, Result};
use crate::graph::HierarchyGraph;
use crate::node::NodeId;

/// Assert that tuples at `stronger` dominate tuples at `weaker` wherever
/// both apply, by inserting the Appendix's special edge
/// `weaker → stronger`.
///
/// Note the procedural limit of off-path preemption: a *direct* subset
/// edge from `weaker` to an item is never removed by the elimination
/// procedure, so at such items `weaker`'s tuple stays immediate and a
/// conflict persists (the same mechanism that makes the Appendix's
/// deliberate redundant edge create a conflict at Pamela). Preference
/// edges resolve conflicts between tuples that bind *through*
/// intermediate classes — the paper's intended scenario.
///
/// Fails if the edge would create a cycle (two opposite preferences) or
/// if `stronger` is already reachable from `weaker` (the preference is
/// already implied, reported as [`HierarchyError::DuplicateEdge`] when
/// literal, or succeeds vacuously when implied transitively — see
/// [`prefer_if_needed`] for the lenient variant).
pub fn prefer(g: &mut HierarchyGraph, stronger: NodeId, weaker: NodeId) -> Result<()> {
    g.add_preference_edge(weaker, stronger)
}

/// Like [`prefer`], but a no-op when `stronger` is already reachable from
/// `weaker` (the domination already holds).
pub fn prefer_if_needed(g: &mut HierarchyGraph, stronger: NodeId, weaker: NodeId) -> Result<()> {
    if g.reaches(weaker, stronger) {
        return Ok(());
    }
    match g.add_preference_edge(weaker, stronger) {
        Ok(()) => Ok(()),
        Err(HierarchyError::DuplicateEdge { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Does `stronger` currently dominate `weaker` (reachability over both
/// edge kinds)?
pub fn dominates(g: &HierarchyGraph, stronger: NodeId, weaker: NodeId) -> bool {
    g.reaches(weaker, stronger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HierarchyGraph;

    fn two_classes() -> (HierarchyGraph, NodeId, NodeId) {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        (g, a, b)
    }

    #[test]
    fn prefer_inserts_special_edge() {
        let (mut g, a, b) = two_classes();
        prefer(&mut g, a, b).unwrap(); // a dominates b
        assert!(dominates(&g, a, b));
        assert!(!dominates(&g, b, a));
        // Not set inclusion.
        assert!(!g.is_descendant(a, b));
        assert!(!g.is_descendant(b, a));
    }

    #[test]
    fn conflicting_preferences_rejected() {
        let (mut g, a, b) = two_classes();
        prefer(&mut g, a, b).unwrap();
        assert!(matches!(
            prefer(&mut g, b, a),
            Err(HierarchyError::WouldCreateCycle { .. })
        ));
    }

    #[test]
    fn prefer_if_needed_is_idempotent() {
        let (mut g, a, b) = two_classes();
        prefer_if_needed(&mut g, a, b).unwrap();
        let edges = g.edge_count();
        prefer_if_needed(&mut g, a, b).unwrap();
        assert_eq!(g.edge_count(), edges, "second call adds nothing");
    }

    #[test]
    fn subsumption_already_dominates() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        // b ⊆ a: b already dominates... no — a reaches b, so *b* binds
        // more strongly wherever both apply; dominance of b over a holds.
        assert!(dominates(&g, b, a));
        let edges = g.edge_count();
        prefer_if_needed(&mut g, b, a).unwrap();
        assert_eq!(g.edge_count(), edges);
    }
}
