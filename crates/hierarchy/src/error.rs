//! Error type for hierarchy-graph construction and manipulation.

use std::fmt;

use crate::node::{NodeId, NodeName};

/// Result alias used throughout the crate.
pub type Result<T, E = HierarchyError> = std::result::Result<T, E>;

/// Errors raised while building or mutating a hierarchy graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// A node id was used with a graph that never issued it.
    UnknownNode(NodeId),
    /// A node name was looked up but no node carries it.
    UnknownName(NodeName),
    /// Two distinct nodes may not share a name within one graph.
    DuplicateName(NodeName),
    /// Adding this edge would create a cycle, violating the paper's
    /// *type-irredundancy* constraint (§3.1).
    WouldCreateCycle {
        /// Proposed more-general endpoint.
        from: NodeId,
        /// Proposed more-specific endpoint.
        to: NodeId,
    },
    /// The edge to insert already exists.
    DuplicateEdge {
        /// More-general endpoint.
        from: NodeId,
        /// More-specific endpoint.
        to: NodeId,
    },
    /// An edge may not connect a node to itself.
    SelfEdge(NodeId),
    /// Instances are leaves of the hierarchy (§2.1); they cannot be given
    /// children or made parents of classes.
    InstanceHasChildren(NodeId),
    /// The requested parent set was empty; every non-root node needs at
    /// least one parent to keep the graph rooted.
    NoParent,
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::UnknownNode(id) => {
                write!(f, "node {id} does not belong to this hierarchy graph")
            }
            HierarchyError::UnknownName(name) => {
                write!(f, "no node named {name:?} in this hierarchy graph")
            }
            HierarchyError::DuplicateName(name) => {
                write!(f, "a node named {name:?} already exists")
            }
            HierarchyError::WouldCreateCycle { from, to } => write!(
                f,
                "edge {from} -> {to} would create a cycle (type-irredundancy violation)"
            ),
            HierarchyError::DuplicateEdge { from, to } => {
                write!(f, "edge {from} -> {to} already exists")
            }
            HierarchyError::SelfEdge(id) => write!(f, "self edge on {id} is not allowed"),
            HierarchyError::InstanceHasChildren(id) => write!(
                f,
                "instance {id} is a leaf of the hierarchy and cannot have children"
            ),
            HierarchyError::NoParent => {
                write!(f, "a non-root node requires at least one parent")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_parts() {
        let e = HierarchyError::WouldCreateCycle {
            from: NodeId::from_index(3),
            to: NodeId::from_index(1),
        };
        let s = e.to_string();
        assert!(s.contains("n3"), "{s}");
        assert!(s.contains("n1"), "{s}");
        assert!(s.contains("cycle"), "{s}");

        let e = HierarchyError::UnknownName(NodeName::new("Dodo"));
        assert!(e.to_string().contains("Dodo"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<HierarchyError>();
    }
}
