#![warn(missing_docs)]

//! Class-hierarchy DAG substrate for the hierarchical relational data model.
//!
//! This crate implements the *hierarchy graph* of Jagadish's
//! "Incorporating Hierarchy in a Relational Model of Data" (SIGMOD 1989,
//! §2.1): a rooted directed acyclic graph whose root is an attribute
//! domain, whose internal nodes are classes (sub-domains), and whose
//! leaves are instances. Edges run from each more general class to its
//! derived, more specific classes.
//!
//! On top of the DAG itself the crate provides every graph-level operation
//! the paper's model needs:
//!
//! * topological and reverse-topological orders ([`topo`]),
//! * reachability, transitive closure, and transitive reduction ([`reach`]),
//! * the paper's **node-elimination procedure** ([`elim`]), including the
//!   off-path and on-path variants from the paper's Appendix,
//! * lazy **Cartesian products** of hierarchy graphs for multi-attribute
//!   relations ([`product`], §2.2),
//! * **preference edges** (Appendix) that induce binding order without
//!   denoting set inclusion ([`preference`]),
//! * validation of the *type-irredundancy* constraint (acyclicity, §3.1)
//!   and detection of redundant (transitive) edges ([`validate`]),
//! * synthetic DAG generators used by the benchmark harness ([`gen`]),
//! * Graphviz export used to regenerate the paper's figures ([`dot`]).
//!
//! # Quick example
//!
//! ```
//! use hrdm_hierarchy::HierarchyGraph;
//!
//! let mut g = HierarchyGraph::new("Animal");
//! let bird = g.add_class("Bird", g.root()).unwrap();
//! let penguin = g.add_class("Penguin", bird).unwrap();
//! let tweety = g.add_instance("Tweety", bird).unwrap();
//! assert!(g.is_descendant(tweety, g.root()));
//! assert!(g.is_descendant(penguin, bird));
//! assert!(!g.is_descendant(bird, penguin));
//! ```

pub mod cache;
pub mod dot;
pub mod elim;
pub mod error;
pub mod gen;
pub mod graph;
pub mod node;
pub mod outline;
pub mod preference;
pub mod product;
pub mod reach;
pub mod topo;
pub mod validate;

pub use error::{HierarchyError, Result};
pub use graph::{EdgeKind, HierarchyGraph, NodeKind};
pub use node::{NodeId, NodeName};
pub use product::{ProductHierarchy, ProductNode};
