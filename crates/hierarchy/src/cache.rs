//! A process-wide, versioned cache of reachability closures.
//!
//! Every operator in the model — subsumption-graph construction,
//! consolidate, explicate, preemption, the membership join — reduces to
//! repeated path-existence queries over the same hierarchy graphs. Before
//! this cache each operator call rebuilt its own [`Reachability`] matrix;
//! now a closure is built once per `(graph, generation, edge-kind)` and
//! shared.
//!
//! # Versioning protocol
//!
//! Entries are keyed by `(graph_id, generation, kind)`:
//!
//! * [`HierarchyGraph::graph_id`] is process-unique and never reused —
//!   every constructor and every `Clone` takes a fresh id — so a key can
//!   never alias a structurally different graph;
//! * [`HierarchyGraph::generation`] is bumped on every structural
//!   mutation (node added, edge added or removed), so a stale closure is
//!   simply never looked up again.
//!
//! Invalidation is therefore *passive*: mutating a graph orphans its old
//! entries, which age out of the bounded store (`MAX_ENTRIES`, FIFO) —
//! and inserting a closure for a graph proactively drops entries for that
//! graph's older generations. Callers needing deterministic reclamation
//! (e.g. a catalog dropping a domain) can call [`invalidate_graph`].
//!
//! Lookups and stats are lock-cheap: the mutex guards only the map, and
//! closures are built *outside* the lock so concurrent readers of other
//! graphs are never blocked behind an O(V·E) build.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use hrdm_obs::attrib::{self, AttribKey};
use hrdm_obs::metrics::{self, Counter, Gauge};

use crate::graph::HierarchyGraph;
use crate::reach::{ClosureKind, Reachability};

/// Upper bound on cached closures across all graphs; the oldest entries
/// are evicted first.
const MAX_ENTRIES: usize = 256;

type Key = (u64, u64, ClosureKind);

#[derive(Default)]
struct Store {
    map: HashMap<Key, Arc<Reachability>>,
    /// Insertion order, for FIFO eviction. May contain keys already
    /// removed from `map`; eviction skips those.
    order: Vec<Key>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    build_ns: Counter,
    entries: Gauge,
}

fn obs() -> &'static CacheMetrics {
    static M: OnceLock<CacheMetrics> = OnceLock::new();
    M.get_or_init(|| CacheMetrics {
        hits: metrics::counter("hierarchy.closure.hits"),
        misses: metrics::counter("hierarchy.closure.misses"),
        evictions: metrics::counter("hierarchy.closure.evictions"),
        build_ns: metrics::counter("hierarchy.closure.build_ns"),
        entries: metrics::gauge("hierarchy.closure.entries"),
    })
}

/// Counters describing cache effectiveness since the last
/// [`reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a closure.
    pub misses: u64,
    /// Resident closures evicted by the FIFO capacity bound.
    pub evictions: u64,
    /// Total wall time spent building closures, in nanoseconds.
    pub build_ns: u64,
    /// Closures currently resident.
    pub entries: usize,
}

/// Maximum number of closures the store keeps resident (`MAX_ENTRIES`).
pub fn capacity() -> usize {
    MAX_ENTRIES
}

/// The shared transitive closure of `g` over both edge kinds.
pub fn closure(g: &HierarchyGraph) -> Arc<Reachability> {
    get(g, ClosureKind::Both)
}

/// The shared subset-edge-only closure of `g` (membership queries).
pub fn subset_closure(g: &HierarchyGraph) -> Arc<Reachability> {
    get(g, ClosureKind::SubsetOnly)
}

/// Look up or build the closure of `g` for the given edge kinds.
pub fn get(g: &HierarchyGraph, kind: ClosureKind) -> Arc<Reachability> {
    let key = (g.graph_id(), g.generation(), kind);
    if let Some(hit) = store().lock().unwrap().map.get(&key) {
        obs().hits.incr();
        attrib::bump(AttribKey::ClosureHit);
        return Arc::clone(hit);
    }
    obs().misses.incr();
    attrib::bump(AttribKey::ClosureMiss);
    let built = {
        let mut span = hrdm_obs::span!("hierarchy.closure.build");
        span.field_u64("nodes", g.len() as u64);
        let start = Instant::now();
        let built = Arc::new(Reachability::build(g, kind));
        let elapsed = start.elapsed().as_nanos() as u64;
        obs().build_ns.add(elapsed);
        span.field_u64("build_ns", elapsed);
        built
    };

    let mut s = store().lock().unwrap();
    // A concurrent builder may have won the race; keep whichever is
    // already resident so all holders share one allocation.
    if let Some(existing) = s.map.get(&key) {
        return Arc::clone(existing);
    }
    // Entries for older generations of this graph can never be looked up
    // again (generations only grow): drop them eagerly.
    s.map.retain(|&(id, gen, _), _| id != key.0 || gen == key.1);
    s.map.insert(key, Arc::clone(&built));
    s.order.push(key);
    let mut evicted = 0u64;
    while s.map.len() > MAX_ENTRIES {
        let victim = s.order.remove(0);
        if s.map.remove(&victim).is_some() {
            evicted += 1;
        }
    }
    if evicted > 0 {
        obs().evictions.add(evicted);
    }
    obs().entries.set(s.map.len() as u64);
    built
}

/// Drop every cached closure belonging to `graph_id`, regardless of
/// generation. Useful when a graph is discarded for good.
pub fn invalidate_graph(graph_id: u64) {
    let mut s = store().lock().unwrap();
    s.map.retain(|&(id, _, _), _| id != graph_id);
    obs().entries.set(s.map.len() as u64);
}

/// Drop all cached closures (stats are left untouched).
pub fn clear() {
    let mut s = store().lock().unwrap();
    s.map.clear();
    s.order.clear();
    obs().entries.set(0);
}

/// Snapshot of the hit/miss/eviction/build-time counters.
pub fn stats() -> CacheStats {
    let m = obs();
    CacheStats {
        hits: m.hits.get(),
        misses: m.misses.get(),
        evictions: m.evictions.get(),
        build_ns: m.build_ns.get(),
        entries: store().lock().unwrap().map.len(),
    }
}

/// Zero the cache counters.
///
/// The counters live in the shared `hrdm-obs` registry, and the only
/// way to zero a registry metric is the registry-wide sweep — so this
/// resets *every* registered metric. That is exactly the semantics the
/// bench harness needs (one atomic reset point instead of per-crate
/// counter chasing); callers wanting only a local delta should diff two
/// [`stats`] snapshots instead.
pub fn reset_stats() {
    metrics::reset_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.add_class("C", b).unwrap();
        g
    }

    #[test]
    fn same_generation_hits_same_closure() {
        let g = chain();
        let r1 = closure(&g);
        let r2 = closure(&g);
        assert!(Arc::ptr_eq(&r1, &r2), "second lookup must be a cache hit");
    }

    #[test]
    fn mutation_invalidates() {
        let mut g = chain();
        let r1 = closure(&g);
        let c = g.expect("C");
        let d = g.add_class("E", g.root()).unwrap();
        let r2 = closure(&g);
        assert!(!Arc::ptr_eq(&r1, &r2), "mutation must miss the old entry");
        assert_eq!(r2.len(), g.len());
        assert!(!r2.reaches(d, c));
    }

    #[test]
    fn clones_never_share_entries() {
        let g = chain();
        let r1 = closure(&g);
        let mut h = g.clone();
        // Diverge the clone; its closure must not be served from g's key.
        h.add_class("X", h.expect("C")).unwrap();
        let r2 = closure(&h);
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert_eq!(r2.len(), g.len() + 1);
        // And g's entry is still intact.
        assert!(Arc::ptr_eq(&r1, &closure(&g)));
    }

    #[test]
    fn subset_and_both_kind_entries_are_distinct() {
        let mut g = chain();
        let a = g.expect("A");
        let b2 = g.add_class("B2", g.root()).unwrap();
        g.add_preference_edge(a, b2).unwrap();
        let both = closure(&g);
        let subset = subset_closure(&g);
        assert!(both.reaches(a, b2), "preference edge reaches");
        assert!(!subset.reaches(a, b2), "but is not membership");
    }

    #[test]
    fn invalidate_graph_drops_entries() {
        let g = chain();
        let before = closure(&g);
        invalidate_graph(g.graph_id());
        let after = closure(&g);
        assert!(!Arc::ptr_eq(&before, &after), "entry was dropped");
    }

    #[test]
    fn stats_move() {
        // Delta-based on purpose: the counters are process-global and
        // other tests in this binary run concurrently, so an absolute
        // assertion (or a reset here) would race.
        let g = chain();
        let s0 = stats();
        let _ = closure(&g);
        let _ = closure(&g);
        let s1 = stats();
        assert!(s1.hits + s1.misses >= s0.hits + s0.misses + 2);
    }

    #[test]
    fn fifo_capacity_bound_actually_evicts() {
        let overflow = 8;
        let first = chain();
        let pinned = closure(&first);
        let before = stats();
        // Fill well past capacity with distinct graphs; every graph_id
        // is process-unique so each lookup is a fresh insertion.
        for _ in 0..capacity() + overflow {
            let g = chain();
            let _ = closure(&g);
        }
        let after = stats();
        assert!(
            after.entries <= capacity(),
            "resident {} exceeds capacity {}",
            after.entries,
            capacity()
        );
        assert!(
            after.evictions >= before.evictions + overflow as u64,
            "expected at least {} evictions, counter moved {} -> {}",
            overflow,
            before.evictions,
            after.evictions
        );
        // `first` was inserted earliest, so FIFO must have dropped it:
        // looking it up again rebuilds rather than returning the pinned
        // allocation.
        let rebuilt = closure(&first);
        assert!(
            !Arc::ptr_eq(&pinned, &rebuilt),
            "oldest entry survived a full FIFO sweep"
        );
    }
}
