//! A process-wide, versioned cache of reachability closures.
//!
//! Every operator in the model — subsumption-graph construction,
//! consolidate, explicate, preemption, the membership join — reduces to
//! repeated path-existence queries over the same hierarchy graphs. Before
//! this cache each operator call rebuilt its own [`Reachability`] matrix;
//! now a closure is built once per `(graph, generation, edge-kind)` and
//! shared.
//!
//! # Versioning protocol
//!
//! Entries are keyed by `(graph_id, generation, kind)`:
//!
//! * [`HierarchyGraph::graph_id`] is process-unique and never reused —
//!   every constructor and every `Clone` takes a fresh id — so a key can
//!   never alias a structurally different graph;
//! * [`HierarchyGraph::generation`] is bumped on every structural
//!   mutation (node added, edge added or removed), so a stale closure is
//!   simply never looked up again.
//!
//! Invalidation is therefore *passive*: mutating a graph orphans its old
//! entries, which age out of the bounded store (`MAX_ENTRIES`, FIFO) —
//! and inserting a closure for a graph proactively drops entries for that
//! graph's older generations. Callers needing deterministic reclamation
//! (e.g. a catalog dropping a domain) can call [`invalidate_graph`].
//!
//! Lookups and stats are lock-cheap: the mutex guards only the map, and
//! closures are built *outside* the lock so concurrent readers of other
//! graphs are never blocked behind an O(V·E) build.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::graph::HierarchyGraph;
use crate::reach::{ClosureKind, Reachability};

/// Upper bound on cached closures across all graphs; the oldest entries
/// are evicted first.
const MAX_ENTRIES: usize = 256;

type Key = (u64, u64, ClosureKind);

#[derive(Default)]
struct Store {
    map: HashMap<Key, Arc<Reachability>>,
    /// Insertion order, for FIFO eviction. May contain keys already
    /// removed from `map`; eviction skips those.
    order: Vec<Key>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BUILD_NS: AtomicU64 = AtomicU64::new(0);

/// Counters describing cache effectiveness since the last
/// [`reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a closure.
    pub misses: u64,
    /// Total wall time spent building closures, in nanoseconds.
    pub build_ns: u64,
    /// Closures currently resident.
    pub entries: usize,
}

/// The shared transitive closure of `g` over both edge kinds.
pub fn closure(g: &HierarchyGraph) -> Arc<Reachability> {
    get(g, ClosureKind::Both)
}

/// The shared subset-edge-only closure of `g` (membership queries).
pub fn subset_closure(g: &HierarchyGraph) -> Arc<Reachability> {
    get(g, ClosureKind::SubsetOnly)
}

/// Look up or build the closure of `g` for the given edge kinds.
pub fn get(g: &HierarchyGraph, kind: ClosureKind) -> Arc<Reachability> {
    let key = (g.graph_id(), g.generation(), kind);
    if let Some(hit) = store().lock().unwrap().map.get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let built = Arc::new(Reachability::build(g, kind));
    BUILD_NS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);

    let mut s = store().lock().unwrap();
    // A concurrent builder may have won the race; keep whichever is
    // already resident so all holders share one allocation.
    if let Some(existing) = s.map.get(&key) {
        return Arc::clone(existing);
    }
    // Entries for older generations of this graph can never be looked up
    // again (generations only grow): drop them eagerly.
    s.map.retain(|&(id, gen, _), _| id != key.0 || gen == key.1);
    s.map.insert(key, Arc::clone(&built));
    s.order.push(key);
    while s.map.len() > MAX_ENTRIES {
        let victim = s.order.remove(0);
        s.map.remove(&victim);
    }
    built
}

/// Drop every cached closure belonging to `graph_id`, regardless of
/// generation. Useful when a graph is discarded for good.
pub fn invalidate_graph(graph_id: u64) {
    store()
        .lock()
        .unwrap()
        .map
        .retain(|&(id, _, _), _| id != graph_id);
}

/// Drop all cached closures (stats are left untouched).
pub fn clear() {
    let mut s = store().lock().unwrap();
    s.map.clear();
    s.order.clear();
}

/// Snapshot of the hit/miss/build-time counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        build_ns: BUILD_NS.load(Ordering::Relaxed),
        entries: store().lock().unwrap().map.len(),
    }
}

/// Zero the hit/miss/build-time counters (resident entries stay).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    BUILD_NS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.add_class("C", b).unwrap();
        g
    }

    #[test]
    fn same_generation_hits_same_closure() {
        let g = chain();
        let r1 = closure(&g);
        let r2 = closure(&g);
        assert!(Arc::ptr_eq(&r1, &r2), "second lookup must be a cache hit");
    }

    #[test]
    fn mutation_invalidates() {
        let mut g = chain();
        let r1 = closure(&g);
        let c = g.expect("C");
        let d = g.add_class("E", g.root()).unwrap();
        let r2 = closure(&g);
        assert!(!Arc::ptr_eq(&r1, &r2), "mutation must miss the old entry");
        assert_eq!(r2.len(), g.len());
        assert!(!r2.reaches(d, c));
    }

    #[test]
    fn clones_never_share_entries() {
        let g = chain();
        let r1 = closure(&g);
        let mut h = g.clone();
        // Diverge the clone; its closure must not be served from g's key.
        h.add_class("X", h.expect("C")).unwrap();
        let r2 = closure(&h);
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert_eq!(r2.len(), g.len() + 1);
        // And g's entry is still intact.
        assert!(Arc::ptr_eq(&r1, &closure(&g)));
    }

    #[test]
    fn subset_and_both_kind_entries_are_distinct() {
        let mut g = chain();
        let a = g.expect("A");
        let b2 = g.add_class("B2", g.root()).unwrap();
        g.add_preference_edge(a, b2).unwrap();
        let both = closure(&g);
        let subset = subset_closure(&g);
        assert!(both.reaches(a, b2), "preference edge reaches");
        assert!(!subset.reaches(a, b2), "but is not membership");
    }

    #[test]
    fn invalidate_graph_drops_entries() {
        let g = chain();
        let before = closure(&g);
        invalidate_graph(g.graph_id());
        let after = closure(&g);
        assert!(!Arc::ptr_eq(&before, &after), "entry was dropped");
    }

    #[test]
    fn stats_move() {
        let g = chain();
        reset_stats();
        let s0 = stats();
        let _ = closure(&g);
        let _ = closure(&g);
        let s1 = stats();
        assert!(s1.hits + s1.misses >= s0.hits + s0.misses + 2);
    }
}
