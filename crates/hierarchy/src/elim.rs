//! The paper's node-elimination procedure (§2.1) and its Appendix
//! variants.
//!
//! > "Define a node elimination procedure for a node *i* as follows:
//! > Delete the node *i* and all edges incident upon it. For each
//! > immediate predecessor, *j*, of *i* (before the deletion) considered
//! > in reverse topological order, for each immediate successor, *k*, of
//! > *i* considered in topologically sorted order, if there does not
//! > exist a directed path from *j* to *k* (after the deletion) introduce
//! > a directed edge from *j* to *k*."
//!
//! The path check and the prescribed insertion order guarantee that no
//! *redundant* edge is introduced, which is what gives the paper's
//! default **off-path** preemption. The Appendix's **on-path** variant is
//! the same procedure with the path check dropped ("redundant edges
//! should not be deleted when eliminating a node"); **no-preemption**
//! starts from the transitive closure instead.
//!
//! Elimination operates on an [`EliminationGraph`]: a cheap mutable view
//! of a [`HierarchyGraph`] that supports node deletion while preserving
//! induced reachability. Both the *subsumption graph* of a relation and
//! the per-item *tuple-binding graph* are built this way by the core
//! crate.

use crate::graph::HierarchyGraph;
use crate::node::NodeId;
use crate::reach::Reachability;
use crate::topo::topological_ranks;

/// Which preemption semantics drive edge re-insertion during elimination.
///
/// See the paper's Appendix for the three semantic families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EliminationMode {
    /// Paper default: never introduce a redundant edge (path check on).
    #[default]
    OffPath,
    /// Appendix alternative: bridge every predecessor/successor pair,
    /// introducing redundant edges.
    OnPath,
}

/// A mutable DAG view supporting the paper's node-elimination procedure.
///
/// Node ids are shared with the source [`HierarchyGraph`]; eliminated
/// nodes stay allocated but dead. Every edge `j → k` ever present
/// satisfies "`j` reached `k` in the original graph", so the original
/// topological ranks remain a valid topological order throughout — this
/// is what lets predecessors/successors be visited "in (reverse)
/// topological order" without re-sorting after each elimination.
#[derive(Clone)]
pub struct EliminationGraph {
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    rank: Vec<usize>,
    mode: EliminationMode,
}

impl EliminationGraph {
    /// Start from the edges of `g` (both subset and preference edges —
    /// the Appendix's preference edges exist precisely to shape this
    /// graph).
    pub fn new(g: &HierarchyGraph, mode: EliminationMode) -> EliminationGraph {
        let n = g.len();
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for id in g.node_ids() {
            for c in g.children(id) {
                children[id.index()].push(c);
                parents[c.index()].push(id);
            }
        }
        EliminationGraph {
            children,
            parents,
            alive: vec![true; n],
            rank: topological_ranks(g),
            mode,
        }
    }

    /// Start from the *transitive closure* of `g` — the Appendix's
    /// no-preemption construction, where "every node in the tuple binding
    /// graph then becomes an immediate predecessor of the item in
    /// question".
    pub fn from_closure(g: &HierarchyGraph) -> EliminationGraph {
        let n = g.len();
        let r = Reachability::new(g);
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for id in g.node_ids() {
            for c in r.reachable_set(id) {
                if c != id {
                    children[id.index()].push(c);
                    parents[c.index()].push(id);
                }
            }
        }
        EliminationGraph {
            children,
            parents,
            alive: vec![true; n],
            rank: topological_ranks(g),
            // In a transitively closed graph every bridging edge already
            // exists, so the mode is immaterial; keep the cheap check.
            mode: EliminationMode::OffPath,
        }
    }

    /// Total node slots (alive + eliminated).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.alive.len()
    }

    /// Is the node still present?
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Alive nodes in id order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.alive.len())
            .filter(move |&i| self.alive[i])
            .map(NodeId::from_index)
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Current immediate successors of an alive node.
    #[inline]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.children[id.index()]
    }

    /// Current immediate predecessors of an alive node.
    #[inline]
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id.index()]
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.alive_nodes()
            .map(|n| self.children[n.index()].len())
            .sum()
    }

    /// Is there a direct edge `from → to`?
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.children[from.index()].contains(&to)
    }

    /// Is there a path `from → to` over alive nodes (reflexive)?
    pub fn has_path(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return self.alive[from.index()];
        }
        if !self.alive[from.index()] || !self.alive[to.index()] {
            return false;
        }
        let mut seen = vec![false; self.alive.len()];
        seen[from.index()] = true;
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for &c in &self.children[n.index()] {
                if c == to {
                    return true;
                }
                if !seen[c.index()] {
                    // Prune: a path can only descend in rank.
                    if self.rank[c.index()] < self.rank[to.index()] {
                        seen[c.index()] = true;
                        stack.push(c);
                    }
                }
            }
        }
        false
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        debug_assert!(!self.has_edge(from, to));
        self.children[from.index()].push(to);
        self.parents[to.index()].push(from);
    }

    /// Apply the paper's node-elimination procedure to `id`.
    ///
    /// No-op when the node is already eliminated.
    pub fn eliminate(&mut self, id: NodeId) {
        let i = id.index();
        if !self.alive[i] {
            return;
        }
        self.alive[i] = false;

        // Immediate predecessors in *reverse* topological order,
        // immediate successors in topological order (paper's
        // prescription; with the path check this makes "no redundant
        // edges added" hold — see the paper's parenthetical and our
        // regression tests).
        let mut preds = std::mem::take(&mut self.parents[i]);
        let mut succs = std::mem::take(&mut self.children[i]);
        preds.sort_unstable_by(|a, b| self.rank[b.index()].cmp(&self.rank[a.index()]));
        succs.sort_unstable_by_key(|k| self.rank[k.index()]);

        // Detach `id` from its neighbours.
        for &p in &preds {
            self.children[p.index()].retain(|&c| c != id);
        }
        for &s in &succs {
            self.parents[s.index()].retain(|&p| p != id);
        }

        for &j in &preds {
            for &k in &succs {
                let bridge = match self.mode {
                    EliminationMode::OffPath => !self.has_path(j, k),
                    EliminationMode::OnPath => !self.has_edge(j, k),
                };
                if bridge {
                    self.add_edge(j, k);
                }
            }
        }
    }

    /// Eliminate every node for which `keep` returns false.
    ///
    /// Nodes are processed in reverse topological order for determinism;
    /// under off-path semantics the surviving induced graph is
    /// order-independent (it is the transitive reduction of induced
    /// reachability — property-tested).
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        let mut order: Vec<NodeId> = self.alive_nodes().collect();
        order.sort_unstable_by(|a, b| self.rank[b.index()].cmp(&self.rank[a.index()]));
        for id in order {
            if !keep(id) {
                self.eliminate(id);
            }
        }
    }
}

impl std::fmt::Debug for EliminationGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "EliminationGraph({} alive)", self.alive_count())?;
        for n in self.alive_nodes() {
            writeln!(f, "  {n} -> {:?}", self.children[n.index()])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HierarchyGraph;

    /// Fig. 1a: the flying-creatures hierarchy fragment.
    fn fig1() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        g
    }

    #[test]
    fn eliminate_bridges_chain() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.eliminate(b);
        assert!(!e.is_alive(b));
        assert!(e.has_edge(a, c));
        assert!(e.has_path(g.root(), c));
        assert_eq!(e.alive_count(), 3);
    }

    #[test]
    fn off_path_does_not_add_redundant_bridge() {
        // root -> a -> b -> c and a -> c directly: eliminating b must NOT
        // add a second a -> c, and eliminating via the existing path must
        // leave no redundant edge.
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        g.add_edge(a, c).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.eliminate(b);
        assert_eq!(
            e.successors(a).iter().filter(|&&x| x == c).count(),
            1,
            "exactly one a->c edge"
        );
    }

    #[test]
    fn off_path_skips_bridge_when_indirect_path_survives() {
        // j -> i -> k and j -> m -> k. Eliminating i: path j -> m -> k
        // survives, so no bridge j -> k is added (this is precisely what
        // creates off-path preemption downstream).
        let mut g = HierarchyGraph::new("D");
        let j = g.add_class("J", g.root()).unwrap();
        let i = g.add_class("I", j).unwrap();
        let m = g.add_class("M", j).unwrap();
        let k = g.add_class_multi("K", &[i, m]).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.eliminate(i);
        assert!(!e.has_edge(j, k));
        assert!(e.has_path(j, k));
        assert_eq!(e.predecessors(k), &[m]);
    }

    #[test]
    fn on_path_inserts_redundant_bridge() {
        // Same shape; on-path semantics DO add the bridge. This is the
        // Appendix's Galapagos-penguin construction.
        let mut g = HierarchyGraph::new("D");
        let j = g.add_class("J", g.root()).unwrap();
        let i = g.add_class("I", j).unwrap();
        let m = g.add_class("M", j).unwrap();
        let k = g.add_class_multi("K", &[i, m]).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OnPath);
        e.eliminate(i);
        assert!(e.has_edge(j, k), "on-path keeps the redundant bridge");
        let mut preds = e.predecessors(k).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![j, m]);
    }

    #[test]
    fn patricia_tuple_binding_shape_fig1d() {
        // Keep Animal(root implicit), Bird, Penguin, AFP, Patricia — the
        // nodes with tuples in Fig. 1b plus the item. Patricia's only
        // immediate predecessor must be AFP (Fig. 1d).
        let g = fig1();
        let keep = [
            g.root(),
            g.expect("Bird"),
            g.expect("Penguin"),
            g.expect("Amazing Flying Penguin"),
            g.expect("Patricia"),
        ];
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.retain(|n| keep.contains(&n));
        let patricia = g.expect("Patricia");
        assert_eq!(
            e.predecessors(patricia),
            &[g.expect("Amazing Flying Penguin")]
        );
        // And the chain Bird -> Penguin -> AFP survives.
        assert!(e.has_edge(g.expect("Bird"), g.expect("Penguin")));
        assert!(e.has_edge(g.expect("Penguin"), g.expect("Amazing Flying Penguin")));
        assert!(!e.has_edge(g.expect("Penguin"), patricia));
    }

    #[test]
    fn appendix_redundant_edge_gives_conflict_shape() {
        // Appendix: "a redundant link in the hierarchy of Fig. 1 could be
        // used to state that Pamela is a Penguin. ... Amazing Flying
        // Penguin would no longer bind more strongly than Penguin."
        let mut g = fig1();
        let penguin = g.expect("Penguin");
        let pamela = g.expect("Pamela");
        g.add_edge(penguin, pamela).unwrap(); // redundant by design
        let keep = [
            g.root(),
            g.expect("Bird"),
            penguin,
            g.expect("Amazing Flying Penguin"),
            pamela,
        ];
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.retain(|n| keep.contains(&n));
        let mut preds = e.predecessors(pamela).to_vec();
        preds.sort_unstable();
        assert_eq!(
            preds,
            vec![penguin, g.expect("Amazing Flying Penguin")],
            "Pamela now has two immediate predecessors -> conflict upstream"
        );
    }

    #[test]
    fn on_path_galapagos_reinsertion() {
        // Appendix: deriving Patricia's binding graph under on-path
        // semantics, deleting Galapagos Penguin re-inserts Penguin ->
        // Patricia even though a path through AFP exists.
        let g = fig1();
        let keep = [
            g.root(),
            g.expect("Bird"),
            g.expect("Penguin"),
            g.expect("Amazing Flying Penguin"),
            g.expect("Patricia"),
        ];
        let mut e = EliminationGraph::new(&g, EliminationMode::OnPath);
        e.retain(|n| keep.contains(&n));
        let mut preds = e.predecessors(g.expect("Patricia")).to_vec();
        preds.sort_unstable();
        assert_eq!(
            preds,
            vec![g.expect("Penguin"), g.expect("Amazing Flying Penguin")]
        );
    }

    #[test]
    fn closure_construction_makes_all_ancestors_immediate() {
        let g = fig1();
        let e = EliminationGraph::from_closure(&g);
        let patricia = g.expect("Patricia");
        let mut preds = e.predecessors(patricia).to_vec();
        preds.sort_unstable();
        let mut expect: Vec<_> = g.ancestors(patricia);
        expect.sort_unstable();
        assert_eq!(preds, expect);
    }

    #[test]
    fn eliminate_is_idempotent_per_node() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.eliminate(a);
        e.eliminate(a); // no-op
        assert_eq!(e.alive_count(), 1);
        assert!(e.successors(g.root()).is_empty());
    }

    #[test]
    fn retain_order_independence_for_off_path() {
        // Eliminating {B, C} from root->A->B->C->E in either order yields
        // the same surviving edges: A -> E (transitive reduction of the
        // induced reachability).
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        let x = g.add_class("E", c).unwrap();
        for order in [[b, c], [c, b]] {
            let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
            for n in order {
                e.eliminate(n);
            }
            assert!(e.has_edge(a, x));
            assert_eq!(e.edge_count(), 2); // root->A, A->E
        }
    }

    #[test]
    fn has_path_respects_dead_endpoints() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        assert!(e.has_path(a, a));
        e.eliminate(a);
        assert!(!e.has_path(a, a));
        assert!(!e.has_path(g.root(), a));
    }
}
