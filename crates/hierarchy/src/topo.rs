//! Topological orders over hierarchy graphs and arbitrary sub-DAGs.
//!
//! The paper's node-elimination procedure (§2.1) and consolidation
//! (§3.3.1) both require traversals "in topologically sorted order" and
//! "in reverse topological order". A topological order here follows the
//! paper's footnote 5: if there is an edge from node *i* to node *j*, then
//! *i* precedes *j* (general before specific).

use crate::graph::HierarchyGraph;
use crate::node::NodeId;

/// A topological order of all nodes of `g` (general before specific).
///
/// Deterministic: ties are broken by node id, so repeated calls (and
/// therefore consolidation results) are stable.
pub fn topological_order(g: &HierarchyGraph) -> Vec<NodeId> {
    let n = g.len();
    let mut indegree = vec![0usize; n];
    for id in g.node_ids() {
        for c in g.children(id) {
            indegree[c.index()] += 1;
        }
    }
    // Kahn's algorithm with an id-ordered frontier for determinism. The
    // frontier is kept as a sorted stack (pop smallest via binary-heap-free
    // trick: maintain ascending Vec, take from front index).
    let mut frontier: Vec<NodeId> = g
        .node_ids()
        .filter(|id| indegree[id.index()] == 0)
        .collect();
    frontier.sort_unstable();
    let mut order = Vec::with_capacity(n);
    let mut next = 0usize;
    while next < frontier.len() {
        let id = frontier[next];
        next += 1;
        order.push(id);
        let mut newly_free: Vec<NodeId> = Vec::new();
        for c in g.children(id) {
            let d = &mut indegree[c.index()];
            *d -= 1;
            if *d == 0 {
                newly_free.push(c);
            }
        }
        newly_free.sort_unstable();
        frontier.extend(newly_free);
        // Keep the unprocessed tail sorted so the order is deterministic.
        frontier[next..].sort_unstable();
    }
    debug_assert_eq!(order.len(), n, "graph invariant guarantees acyclicity");
    order
}

/// Reverse topological order (specific before general).
pub fn reverse_topological_order(g: &HierarchyGraph) -> Vec<NodeId> {
    let mut order = topological_order(g);
    order.reverse();
    order
}

/// Positions of each node in a topological order, indexed by node id.
///
/// `rank[i.index()] < rank[j.index()]` whenever there is a path `i -> j`.
pub fn topological_ranks(g: &HierarchyGraph) -> Vec<usize> {
    let order = topological_order(g);
    let mut rank = vec![0usize; g.len()];
    for (pos, id) in order.iter().enumerate() {
        rank[id.index()] = pos;
    }
    rank
}

/// Topologically sort an explicit node subset of `g`.
///
/// The subset inherits the order induced by `g`'s edges; nodes outside
/// `subset` merely transmit ordering (a path through outside nodes still
/// orders two subset nodes). Used to order subsumption-graph nodes during
/// consolidation without materializing the subgraph.
pub fn sort_subset_topologically(g: &HierarchyGraph, subset: &[NodeId]) -> Vec<NodeId> {
    let rank = topological_ranks(g);
    let mut out = subset.to_vec();
    out.sort_unstable_by_key(|id| (rank[id.index()], *id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HierarchyGraph;

    fn diamond() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_class_multi("C", &[a, b]).unwrap();
        g
    }

    fn assert_is_topological(g: &HierarchyGraph, order: &[NodeId]) {
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert_eq!(order.len(), g.len());
        for id in g.node_ids() {
            for c in g.children(id) {
                assert!(pos[&id] < pos[&c], "{id} must precede {c}");
            }
        }
    }

    #[test]
    fn order_respects_edges() {
        let g = diamond();
        let order = topological_order(&g);
        assert_is_topological(&g, &order);
        assert_eq!(order[0], g.root());
    }

    #[test]
    fn reverse_order_is_reversed() {
        let g = diamond();
        let mut fwd = topological_order(&g);
        fwd.reverse();
        assert_eq!(fwd, reverse_topological_order(&g));
    }

    #[test]
    fn order_is_deterministic() {
        let g = diamond();
        assert_eq!(topological_order(&g), topological_order(&g));
    }

    #[test]
    fn ranks_agree_with_order() {
        let g = diamond();
        let order = topological_order(&g);
        let rank = topological_ranks(&g);
        for (pos, id) in order.iter().enumerate() {
            assert_eq!(rank[id.index()], pos);
        }
    }

    #[test]
    fn subset_sorting_uses_graph_order() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        // Pass the subset in scrambled order; path a -> b -> c must order
        // a before c even if we exclude b.
        let sorted = sort_subset_topologically(&g, &[c, a]);
        assert_eq!(sorted, vec![a, c]);
        let sorted = sort_subset_topologically(&g, &[c, b, a]);
        assert_eq!(sorted, vec![a, b, c]);
    }

    #[test]
    fn preference_edges_participate_in_ordering() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_preference_edge(a, b).unwrap();
        let order = topological_order(&g);
        let pos_a = order.iter().position(|&n| n == a).unwrap();
        let pos_b = order.iter().position(|&n| n == b).unwrap();
        assert!(pos_a < pos_b);
    }

    #[test]
    fn single_node_graph() {
        let g = HierarchyGraph::new("D");
        assert_eq!(topological_order(&g), vec![g.root()]);
    }
}
