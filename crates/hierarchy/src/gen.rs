//! Synthetic hierarchy generators for benchmarks and property tests.
//!
//! The paper has no datasets; every quantitative claim is structural. The
//! benchmark harness therefore drives the model with three families of
//! synthetic taxonomies, all seeded and reproducible:
//!
//! * [`balanced_tree`] — clean single-inheritance taxonomies (the common
//!   case in frame systems),
//! * [`layered_dag`] — multiple-inheritance DAGs with tunable density
//!   (stress for conflict detection and preemption),
//! * [`flat_classes`] — one level of classes over many instances (the
//!   §1 storage-compression scenario: one class tuple replacing *n*
//!   instance tuples).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::HierarchyGraph;
use crate::node::NodeId;

/// A balanced tree of classes with `fanout^depth` leaf instances.
///
/// Depth 0 yields just the root. Interior levels are classes named
/// `C<level>_<ordinal>`; the last level consists of instances named
/// `i<ordinal>`.
pub fn balanced_tree(fanout: usize, depth: usize) -> HierarchyGraph {
    assert!(fanout >= 1, "fanout must be positive");
    let mut g = HierarchyGraph::new("D");
    let mut level = vec![g.root()];
    for d in 1..=depth {
        let mut next = Vec::with_capacity(level.len() * fanout);
        for (pi, &p) in level.iter().enumerate() {
            for f in 0..fanout {
                let ord = pi * fanout + f;
                let id = if d == depth {
                    g.add_instance(format!("i{ord}"), p)
                        .expect("generated names are unique")
                } else {
                    g.add_class(format!("C{d}_{ord}"), p)
                        .expect("generated names are unique")
                };
                next.push(id);
            }
        }
        level = next;
    }
    g
}

/// A layered random DAG: `layers` class layers of width `width`, each
/// node drawing 1..=`max_parents` parents uniformly from the previous
/// layer, followed by one instance per bottom-layer class.
///
/// With `max_parents > 1` this exercises multiple inheritance; density
/// rises with `max_parents`. Deterministic in `seed`.
pub fn layered_dag(layers: usize, width: usize, max_parents: usize, seed: u64) -> HierarchyGraph {
    assert!(width >= 1 && max_parents >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HierarchyGraph::new("D");
    let mut prev = vec![g.root()];
    for l in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for w in 0..width {
            let k = rng.gen_range(1..=max_parents.min(prev.len()));
            let mut parents: Vec<NodeId> = Vec::with_capacity(k);
            while parents.len() < k {
                let p = prev[rng.gen_range(0..prev.len())];
                if !parents.contains(&p) {
                    parents.push(p);
                }
            }
            layer.push(
                g.add_class_multi(format!("L{l}_{w}"), &parents)
                    .expect("generated names are unique"),
            );
        }
        prev = layer;
    }
    for (w, &p) in prev.clone().iter().enumerate() {
        g.add_instance(format!("i{w}"), p)
            .expect("generated names are unique");
    }
    g
}

/// `classes` sibling classes under the root, each with `members`
/// instances: the flattest hierarchy that still lets a single class tuple
/// stand for `members` facts.
pub fn flat_classes(classes: usize, members: usize) -> HierarchyGraph {
    let mut g = HierarchyGraph::new("D");
    for c in 0..classes {
        let class = g
            .add_class(format!("C{c}"), g.root())
            .expect("generated names are unique");
        for m in 0..members {
            g.add_instance(format!("i{c}_{m}"), class)
                .expect("generated names are unique");
        }
    }
    g
}

/// A random subset of `count` distinct nodes of `g` (excluding the root),
/// for seeding random relations. Deterministic in `seed`.
pub fn sample_nodes(g: &HierarchyGraph, count: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = g.node_ids().skip(1).collect();
    let count = count.min(pool.len());
    // Partial Fisher-Yates.
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(3, 3);
        // 1 root + 3 + 9 classes + 27 instances.
        assert_eq!(g.len(), 1 + 3 + 9 + 27);
        assert_eq!(g.instances().count(), 27);
        assert!(validate(&g).is_empty(), "trees are always off-path ready");
    }

    #[test]
    fn balanced_tree_depth_zero() {
        let g = balanced_tree(5, 0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn layered_dag_is_acyclic_and_rooted() {
        let g = layered_dag(4, 6, 3, 42);
        assert_eq!(g.len(), 1 + 4 * 6 + 6);
        // Every node reachable from root.
        for id in g.node_ids() {
            assert!(g.is_descendant(id, g.root()));
        }
    }

    #[test]
    fn layered_dag_deterministic_in_seed() {
        let a = layered_dag(3, 5, 2, 7);
        let b = layered_dag(3, 5, 2, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        for id in a.node_ids() {
            let pa: Vec<_> = a.parents(id).collect();
            let pb: Vec<_> = b.parents(id).collect();
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn layered_dag_different_seeds_differ() {
        let a = layered_dag(4, 8, 3, 1);
        let b = layered_dag(4, 8, 3, 2);
        // Node counts match by construction; edges almost surely differ.
        assert_eq!(a.len(), b.len());
        let edges = |g: &HierarchyGraph| -> Vec<(NodeId, Vec<NodeId>)> {
            g.node_ids().map(|n| (n, g.children(n).collect())).collect()
        };
        assert_ne!(edges(&a), edges(&b));
    }

    #[test]
    fn flat_classes_shape() {
        let g = flat_classes(4, 10);
        assert_eq!(g.len(), 1 + 4 + 40);
        assert_eq!(g.classes().count(), 4);
        assert_eq!(g.instances().count(), 40);
        let c0 = g.expect("C0");
        assert_eq!(g.extension(c0).len(), 10);
    }

    #[test]
    fn sample_nodes_distinct_and_bounded() {
        let g = balanced_tree(2, 4);
        let s = sample_nodes(&g, 10, 9);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(!s.contains(&g.root()));
        // Requesting more than available clamps.
        let all = sample_nodes(&g, 10_000, 9);
        assert_eq!(all.len(), g.len() - 1);
    }
}
