//! Indented-outline parser for taxonomies.
//!
//! Frame systems and knowledge bases write taxonomies as outlines; this
//! module parses one straight into a [`HierarchyGraph`]:
//!
//! ```text
//! Animal
//!   Bird
//!     Canary
//!       Tweety *
//!     Penguin
//!       Galapagos Penguin
//!         Paul *
//!       Amazing Flying Penguin
//!         Pamela *
//!         Peter *
//!   Patricia * < Galapagos Penguin, Amazing Flying Penguin
//! ```
//!
//! Rules: the first line names the domain (root); each subsequent line's
//! indentation selects its parent (the nearest shallower line); a
//! trailing `*` marks an instance; `< a, b` adds extra parents by name
//! (multiple inheritance — the named parents must appear earlier).
//! Blank lines and `#` comments are skipped.

use crate::error::{HierarchyError, Result};
use crate::graph::HierarchyGraph;
use crate::node::NodeId;

/// Errors produced by [`parse_outline`], wrapping graph errors with the
/// offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutlineError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for OutlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "outline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for OutlineError {}

fn err(line: usize, message: impl Into<String>) -> OutlineError {
    OutlineError {
        line,
        message: message.into(),
    }
}

fn graph_err(line: usize, e: HierarchyError) -> OutlineError {
    err(line, e.to_string())
}

/// Parse an indented outline into a hierarchy graph.
pub fn parse_outline(text: &str) -> Result<HierarchyGraph, OutlineError> {
    let mut graph: Option<HierarchyGraph> = None;
    // Stack of (indent, node) from root to the current branch tip.
    let mut stack: Vec<(usize, NodeId)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let without_comment = raw.split('#').next().unwrap_or("");
        if without_comment.trim().is_empty() {
            continue;
        }
        let indent = without_comment.len() - without_comment.trim_start().len();
        let body = without_comment.trim();

        // Split off extra parents: "Name * < P1, P2".
        let (head, extra_parents) = match body.split_once('<') {
            Some((h, rest)) => {
                let parents: Vec<&str> = rest
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect();
                if parents.is_empty() {
                    return Err(err(lineno, "'<' with no parent names"));
                }
                (h.trim(), parents)
            }
            None => (body, Vec::new()),
        };
        let (name, is_instance) = match head.strip_suffix('*') {
            Some(n) => (n.trim(), true),
            None => (head, false),
        };
        if name.is_empty() {
            return Err(err(lineno, "empty node name"));
        }

        let Some(g) = graph.as_mut() else {
            if indent != 0 {
                return Err(err(lineno, "the first (domain) line must not be indented"));
            }
            if is_instance || !extra_parents.is_empty() {
                return Err(err(
                    lineno,
                    "the domain line cannot be an instance or have parents",
                ));
            }
            let g = HierarchyGraph::new(name);
            stack.push((0, g.root()));
            graph = Some(g);
            continue;
        };

        // Parent = nearest stack entry with smaller indent.
        while stack.last().is_some_and(|&(i, _)| i >= indent) {
            stack.pop();
        }
        let Some(&(_, parent)) = stack.last() else {
            return Err(err(
                lineno,
                "node has no parent (indent must exceed the domain's)",
            ));
        };

        let mut parents = vec![parent];
        for p in extra_parents {
            let node = g.node(p).map_err(|e| graph_err(lineno, e))?;
            if !parents.contains(&node) {
                parents.push(node);
            }
        }
        let id = if is_instance {
            g.add_instance_multi(name, &parents)
        } else {
            g.add_class_multi(name, &parents)
        }
        .map_err(|e| graph_err(lineno, e))?;
        stack.push((indent, id));
    }

    graph.ok_or_else(|| err(0, "empty outline"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
Animal
  Bird
    Canary
      Tweety *
    Penguin
      Galapagos Penguin
        Paul *
      Amazing Flying Penguin
        Pamela *
        Peter *
        Patricia * < Galapagos Penguin
";

    #[test]
    fn fig1_outline_builds_the_paper_taxonomy() {
        let g = parse_outline(FIG1).unwrap();
        assert_eq!(g.len(), 11);
        assert_eq!(g.instances().count(), 5);
        let patricia = g.expect("Patricia");
        assert!(g.is_descendant(patricia, g.expect("Galapagos Penguin")));
        assert!(g.is_descendant(patricia, g.expect("Amazing Flying Penguin")));
        assert!(g.is_descendant(g.expect("Tweety"), g.expect("Bird")));
        assert!(!g.is_descendant(g.expect("Tweety"), g.expect("Penguin")));
        assert!(crate::validate::validate(&g).is_empty());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = parse_outline("# taxonomy\nD\n\n  A # a class\n    x *\n").unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.is_instance(g.expect("x")));
    }

    #[test]
    fn dedent_returns_to_outer_parent() {
        let g = parse_outline("D\n  A\n    A1\n  B\n").unwrap();
        let b = g.expect("B");
        assert!(g.is_descendant(b, g.root()));
        assert!(!g.is_descendant(b, g.expect("A")));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_outline("  D\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("line 1"));

        let e = parse_outline("D\n  A\n  A\n").unwrap_err();
        assert_eq!(e.line, 3, "duplicate name reported at its line");

        let e = parse_outline("D\n  A < Nowhere\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_outline("D\n  A <\n").unwrap_err();
        assert!(e.message.contains("no parent names"));

        let e = parse_outline("").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn instance_cannot_gain_children() {
        let e = parse_outline("D\n  x *\n    y *\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("leaf"));
    }

    #[test]
    fn domain_line_restrictions() {
        assert!(parse_outline("D *\n").is_err());
        assert!(parse_outline("D < X\n").is_err());
    }
}
