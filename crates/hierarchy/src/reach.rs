//! Reachability, transitive closure, and transitive reduction.
//!
//! The Appendix pins the paper's default (off-path) preemption semantics
//! to the *transitive reduction* of the hierarchy graph ("we wish to
//! retain only the transitive reduction"), while no-preemption semantics
//! use the *transitive closure*. This module provides both, plus a
//! reusable reachability matrix for the algorithms that repeatedly ask
//! path-existence questions (node elimination, redundancy detection).

use crate::graph::{EdgeKind, HierarchyGraph};
use crate::node::NodeId;
use crate::topo::topological_order;

/// Which edges participate in a [`Reachability`] closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClosureKind {
    /// Subset and preference edges: full path reachability, as used by
    /// binding-graph construction and no-preemption semantics.
    Both,
    /// Subset edges only: set membership (`is_descendant`), as used by
    /// the membership join and extension queries.
    SubsetOnly,
}

/// A dense reachability matrix over a graph's nodes.
///
/// `reach(i, j)` answers "is there a path i → j?" in O(1) after an
/// O(V·E/64) bitset construction. Rows are 64-bit packed.
#[derive(Clone)]
pub struct Reachability {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Build the full transitive closure of `g` (edges of both kinds).
    ///
    /// Reflexive: every node reaches itself.
    pub fn new(g: &HierarchyGraph) -> Reachability {
        Reachability::build(g, ClosureKind::Both)
    }

    /// Build the subset-edge-only closure of `g`: `reaches(b, a)` then
    /// answers the membership question `a ⊆ b` exactly as
    /// [`HierarchyGraph::is_descendant`] does, in O(1).
    pub fn subset_only(g: &HierarchyGraph) -> Reachability {
        Reachability::build(g, ClosureKind::SubsetOnly)
    }

    /// Build the closure over the given edge kinds.
    pub fn build(g: &HierarchyGraph, kind: ClosureKind) -> Reachability {
        let n = g.len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        // Process in reverse topological order so each node's row can be
        // formed by OR-ing its (already complete) children's rows.
        let order = topological_order(g);
        for &id in order.iter().rev() {
            let i = id.index();
            bits[i * words + i / 64] |= 1u64 << (i % 64);
            for &(c, ek) in g.children_with_kind(id) {
                if kind == ClosureKind::SubsetOnly && ek != EdgeKind::Subset {
                    continue;
                }
                let (row_i, row_c) = (i * words, c.index() * words);
                // Split-borrow the two rows.
                if row_i < row_c {
                    let (a, b) = bits.split_at_mut(row_c);
                    let dst = &mut a[row_i..row_i + words];
                    let src = &b[..words];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d |= *s;
                    }
                } else {
                    let (a, b) = bits.split_at_mut(row_i);
                    let src = &a[row_c..row_c + words];
                    let dst = &mut b[..words];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d |= *s;
                    }
                }
            }
        }
        Reachability { n, words, bits }
    }

    /// Is there a path `from → to` (reflexive)?
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let (i, j) = (from.index(), to.index());
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words + j / 64] >> (j % 64) & 1 == 1
    }

    /// All nodes reachable from `from`, including itself, in id order.
    pub fn reachable_set(&self, from: NodeId) -> Vec<NodeId> {
        let row = &self.bits[from.index() * self.words..][..self.words];
        let mut out = Vec::new();
        for (w, &word) in row.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                out.push(NodeId::from_index(w * 64 + b));
                word &= word - 1;
            }
        }
        out
    }

    /// All nodes reachable from *both* `a` and `b`, in id order: the
    /// AND of the two bitset rows. Over a subset-only closure this is
    /// the defined-node approximation of the set intersection `a ∩ b`
    /// (§3.1), computed in O(V/64) instead of two DFS walks per node.
    pub fn common_reachable(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let ra = &self.bits[a.index() * self.words..][..self.words];
        let rb = &self.bits[b.index() * self.words..][..self.words];
        let mut out = Vec::new();
        for (w, (&wa, &wb)) in ra.iter().zip(rb).enumerate() {
            let mut word = wa & wb;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(NodeId::from_index(w * 64 + bit));
                word &= word - 1;
            }
        }
        out
    }

    /// Is any node reachable from both `a` and `b`?
    pub fn reaches_common(&self, a: NodeId, b: NodeId) -> bool {
        let ra = &self.bits[a.index() * self.words..][..self.words];
        let rb = &self.bits[b.index() * self.words..][..self.words];
        ra.iter().zip(rb).any(|(&wa, &wb)| wa & wb != 0)
    }

    /// Number of nodes in the matrix.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty matrix (never produced from a real graph,
    /// which always has a root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// The transitive-closure edge list of `g`: every pair `(i, j)`, `i ≠ j`,
/// with a path `i → j`.
pub fn transitive_closure_edges(g: &HierarchyGraph) -> Vec<(NodeId, NodeId)> {
    let r = crate::cache::closure(g);
    let mut out = Vec::new();
    for i in g.node_ids() {
        for j in r.reachable_set(i) {
            if i != j {
                out.push((i, j));
            }
        }
    }
    out
}

/// Redundant subset/preference edges of `g`: edges `(u, v)` such that a
/// path `u → v` exists that does not use the edge itself.
///
/// The Appendix: redundant edges flip off-path preemption into on-path
/// behaviour, so the paper's default semantics require none.
pub fn redundant_edge_list(g: &HierarchyGraph) -> Vec<(NodeId, NodeId)> {
    // One shared closure replaces a DFS per (edge, sibling) pair; repeated
    // calls on an unchanged graph reuse it via the version cache.
    let r = crate::cache::closure(g);
    let mut out = Vec::new();
    for u in g.node_ids() {
        for v in g.children(u) {
            // u → w →* v for some other child w of u means (u, v) is
            // redundant. Equivalently: v reachable from some sibling.
            if g.children(u).any(|w| w != v && r.reaches(w, v)) {
                out.push((u, v));
            }
        }
    }
    out
}

/// Remove every redundant edge, leaving the transitive reduction.
///
/// For a DAG the transitive reduction is unique. Returns the number of
/// edges removed.
pub fn transitive_reduction(g: &mut HierarchyGraph) -> usize {
    // Removing one redundant edge can never make another *non*-redundant
    // (paths only shrink), and cannot create new redundancy, so a single
    // sweep over the precomputed list is sound.
    let redundant = redundant_edge_list(g);
    let removed = redundant.len();
    for (u, v) in redundant {
        g.remove_edge(u, v)
            .expect("edge listed as redundant must exist");
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HierarchyGraph;

    fn chain() -> (HierarchyGraph, Vec<NodeId>) {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn closure_matches_dfs() {
        let (g, ns) = chain();
        let r = Reachability::new(&g);
        for i in g.node_ids() {
            for j in g.node_ids() {
                assert_eq!(r.reaches(i, j), g.reaches(i, j), "{i} -> {j}");
            }
        }
        assert!(r.reaches(ns[0], ns[2]));
        assert!(!r.reaches(ns[2], ns[0]));
    }

    #[test]
    fn closure_is_reflexive() {
        let (g, _) = chain();
        let r = Reachability::new(&g);
        for i in g.node_ids() {
            assert!(r.reaches(i, i));
        }
    }

    #[test]
    fn reachable_set_lists_descendants_and_self() {
        let (g, ns) = chain();
        let r = Reachability::new(&g);
        assert_eq!(r.reachable_set(ns[1]), vec![ns[1], ns[2]]);
        assert_eq!(r.reachable_set(ns[2]), vec![ns[2]]);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn closure_edges_count_for_chain() {
        let (g, _) = chain();
        // root->A,B,C  A->B,C  B->C : 6 pairs
        assert_eq!(transitive_closure_edges(&g).len(), 6);
    }

    #[test]
    fn redundant_edges_detected_and_reduced() {
        let (mut g, ns) = chain();
        assert!(redundant_edge_list(&g).is_empty());
        g.add_edge(ns[0], ns[2]).unwrap(); // A -> C, redundant via B
        assert_eq!(redundant_edge_list(&g), vec![(ns[0], ns[2])]);
        let removed = transitive_reduction(&mut g);
        assert_eq!(removed, 1);
        assert!(redundant_edge_list(&g).is_empty());
        assert!(g.reaches(ns[0], ns[2]), "reachability preserved");
    }

    #[test]
    fn reduction_of_diamond_keeps_all_edges() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_class_multi("C", &[a, b]).unwrap();
        assert_eq!(transitive_reduction(&mut g), 0);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn reduction_removes_nested_redundancy() {
        // root -> a -> b -> c plus root -> b and root -> c: two redundant
        // edges, both from one sweep.
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let c = g.add_class("C", b).unwrap();
        g.add_edge(g.root(), b).unwrap();
        g.add_edge(g.root(), c).unwrap();
        assert_eq!(transitive_reduction(&mut g), 2);
        assert_eq!(g.edge_count(), 3);
        assert!(g.reaches(g.root(), c));
    }

    #[test]
    fn bitset_crosses_word_boundaries() {
        // >64 nodes to exercise multi-word rows.
        let mut g = HierarchyGraph::new("D");
        let mut prev = g.root();
        let mut all = vec![prev];
        for i in 0..130 {
            prev = g.add_class(format!("C{i}"), prev).unwrap();
            all.push(prev);
        }
        let r = Reachability::new(&g);
        assert!(r.reaches(all[0], all[130]));
        assert!(r.reaches(all[64], all[129]));
        assert!(!r.reaches(all[130], all[0]));
        assert_eq!(r.reachable_set(all[0]).len(), 131);
    }
}
