//! Graphviz (DOT) export.
//!
//! Regenerates the paper's hierarchy figures (Fig. 1a, Fig. 2, Fig. 4)
//! for visual inspection: classes as boxes, instances as plain ovals,
//! preference edges dashed.

use std::fmt::Write as _;

use crate::elim::EliminationGraph;
use crate::graph::{EdgeKind, HierarchyGraph, NodeKind};

/// Render `g` as a DOT digraph named `name`.
pub fn to_dot(g: &HierarchyGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=TB;");
    for id in g.node_ids() {
        let shape = match g.kind(id) {
            NodeKind::Domain => "doubleoctagon",
            NodeKind::Class => "box",
            NodeKind::Instance => "ellipse",
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", shape={}];",
            id.index(),
            escape(g.name(id).as_str()),
            shape
        );
    }
    for id in g.node_ids() {
        for &(c, kind) in g.children_with_kind(id) {
            let style = match kind {
                EdgeKind::Subset => "solid",
                EdgeKind::Preference => "dashed",
            };
            let _ = writeln!(out, "  {} -> {} [style={}];", id.index(), c.index(), style);
        }
    }
    out.push_str("}\n");
    out
}

/// Render the surviving part of an [`EliminationGraph`] (a subsumption or
/// tuple-binding graph) using the node names of the originating graph.
pub fn elimination_to_dot(e: &EliminationGraph, g: &HierarchyGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    for id in e.alive_nodes() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\"];",
            id.index(),
            escape(g.name(id).as_str())
        );
    }
    for id in e.alive_nodes() {
        for &c in e.successors(id) {
            let _ = writeln!(out, "  {} -> {};", id.index(), c.index());
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::EliminationMode;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        let dot = to_dot(&g, "fig1a");
        assert!(dot.starts_with("digraph \"fig1a\""));
        assert!(dot.contains("label=\"Animal\""));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn preference_edges_render_dashed() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_preference_edge(a, b).unwrap();
        let dot = to_dot(&g, "pref");
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn quotes_escaped() {
        let g = HierarchyGraph::new("He said \"hi\"");
        let dot = to_dot(&g, "q");
        assert!(dot.contains("He said \\\"hi\\\""));
    }

    #[test]
    fn elimination_dot_renders_survivors_only() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.eliminate(a);
        let dot = elimination_to_dot(&e, &g, "sub");
        assert!(!dot.contains("label=\"A\""));
        assert!(dot.contains("label=\"B\""));
        assert!(dot.contains(&format!("{} -> {}", g.root().index(), b.index())));
    }
}
