//! Cartesian products of hierarchy graphs (§2.2).
//!
//! "An item hierarchy is obtained as the cartesian product of the
//! hierarchy graphs for the individual attribute domains. ... there
//! exists a directed edge from uᵢ = (vᵢ, wᵢ) to uⱼ = (vⱼ, wⱼ) iff there
//! exists an edge from vᵢ to vⱼ with wᵢ = wⱼ, or an edge from wᵢ to wⱼ
//! with vᵢ = vⱼ."
//!
//! The product graph has `∏ |Vᵢ|` nodes, so it is **never materialized**
//! by the relational operators (§2.1 boasts exactly this: inheritance
//! over multi-attribute relations "without having an attendant geometric
//! growth"). [`ProductHierarchy`] answers the queries the relational
//! layer needs — reachability, direct-edge tests, neighbour enumeration,
//! extension iteration — componentwise in O(arity) per probe. An explicit
//! [`ProductHierarchy::materialize`] exists solely for the B6 growth
//! benchmark and for tests that pin the Fig. 2c product graph exactly.

use std::sync::Arc;

use crate::cache;
use crate::error::Result;
use crate::graph::{EdgeKind, HierarchyGraph};
use crate::node::NodeId;
use crate::reach::Reachability;

/// A node of the product hierarchy: one node per attribute domain.
pub type ProductNode = Vec<NodeId>;

/// A lazy Cartesian product of per-attribute hierarchy graphs.
///
/// Holds `Arc`s so a relation schema and its operators can share the
/// component graphs without cloning, plus cached reachability matrices
/// (binding reachability, over both edge kinds) per component.
#[derive(Clone)]
pub struct ProductHierarchy {
    components: Vec<Arc<HierarchyGraph>>,
    reach: Vec<Arc<Reachability>>,
    subset_reach: Vec<Arc<Reachability>>,
}

impl ProductHierarchy {
    /// Build from shared component graphs.
    ///
    /// The per-component closures come from the process-wide version
    /// cache ([`crate::cache`]), so constructing many products over the
    /// same domains — as the relational operators do for every derived
    /// schema — builds each closure once.
    pub fn new(components: Vec<Arc<HierarchyGraph>>) -> ProductHierarchy {
        let reach = components.iter().map(|g| cache::closure(g)).collect();
        let subset_reach = components
            .iter()
            .map(|g| cache::subset_closure(g))
            .collect();
        ProductHierarchy {
            components,
            reach,
            subset_reach,
        }
    }

    /// Number of attribute domains (the arity).
    #[inline]
    pub fn arity(&self) -> usize {
        self.components.len()
    }

    /// The component graphs.
    #[inline]
    pub fn components(&self) -> &[Arc<HierarchyGraph>] {
        &self.components
    }

    /// One component graph.
    #[inline]
    pub fn component(&self, i: usize) -> &HierarchyGraph {
        &self.components[i]
    }

    /// Cached binding reachability for one component.
    #[inline]
    pub fn component_reach(&self, i: usize) -> &Reachability {
        &self.reach[i]
    }

    /// Total number of product nodes (may overflow for huge components;
    /// saturates).
    pub fn node_count(&self) -> u128 {
        self.components
            .iter()
            .map(|g| g.len() as u128)
            .fold(1u128, |a, b| a.saturating_mul(b))
    }

    /// Number of edges the materialized product graph would have:
    /// `Σᵢ |Eᵢ| · ∏_{j≠i} |Vⱼ|`.
    pub fn edge_count(&self) -> u128 {
        let mut total = 0u128;
        for i in 0..self.arity() {
            let mut others = 1u128;
            for (j, g) in self.components.iter().enumerate() {
                if j != i {
                    others = others.saturating_mul(g.len() as u128);
                }
            }
            total = total
                .saturating_add(others.saturating_mul(self.components[i].edge_count() as u128));
        }
        total
    }

    /// The root product node `(root, …, root)` — the relation's domain
    /// `D*`.
    pub fn root(&self) -> ProductNode {
        vec![NodeId::ROOT; self.arity()]
    }

    /// Does `a` reach `b` in the product graph (over both edge kinds)?
    ///
    /// A product path exists iff every component reaches componentwise
    /// (moves in distinct components commute). Reflexive.
    pub fn reaches(&self, a: &[NodeId], b: &[NodeId]) -> bool {
        debug_assert_eq!(a.len(), self.arity());
        debug_assert_eq!(b.len(), self.arity());
        a.iter()
            .zip(b)
            .zip(&self.reach)
            .all(|((&x, &y), r)| r.reaches(x, y))
    }

    /// Set inclusion `b ⊆ a` over subset edges only (ignores preference
    /// edges). Reflexive.
    pub fn subsumes(&self, a: &[NodeId], b: &[NodeId]) -> bool {
        a.iter()
            .zip(b)
            .zip(&self.subset_reach)
            .all(|((&x, &y), r)| r.reaches(x, y))
    }

    /// Cached subset-only (membership) reachability for one component.
    #[inline]
    pub fn component_subset_reach(&self, i: usize) -> &Reachability {
        &self.subset_reach[i]
    }

    /// Is there a *direct* product edge `a → b`, and of what kind?
    ///
    /// Exists iff exactly one component differs, by a direct edge of that
    /// component; the edge inherits the component edge's kind.
    ///
    /// The component edge is looked up in `b`'s *parent* list rather than
    /// `a`'s child list: binding queries probe `direct_edge(class, atom)`
    /// where the class may have an enormous out-degree while the atom's
    /// in-degree is small, and this choice keeps point lookups
    /// independent of class extension size (measured in B2).
    pub fn direct_edge(&self, a: &[NodeId], b: &[NodeId]) -> Option<EdgeKind> {
        let mut found: Option<EdgeKind> = None;
        for ((&x, &y), g) in a.iter().zip(b).zip(&self.components) {
            if x == y {
                continue;
            }
            if found.is_some() {
                return None; // two components differ
            }
            let kind = g
                .parents_with_kind(y)
                .iter()
                .find(|&&(p, _)| p == x)
                .map(|&(_, k)| k)?;
            found = Some(kind);
        }
        found
    }

    /// Immediate product successors of `a` (children).
    pub fn children(&self, a: &[NodeId]) -> Vec<ProductNode> {
        let mut out = Vec::new();
        for (i, (&x, g)) in a.iter().zip(&self.components).enumerate() {
            for c in g.children(x) {
                let mut n = a.to_vec();
                n[i] = c;
                out.push(n);
            }
        }
        out
    }

    /// Immediate product predecessors of `a` (parents).
    pub fn parents(&self, a: &[NodeId]) -> Vec<ProductNode> {
        let mut out = Vec::new();
        for (i, (&x, g)) in a.iter().zip(&self.components).enumerate() {
            for p in g.parents(x) {
                let mut n = a.to_vec();
                n[i] = p;
                out.push(n);
            }
        }
        out
    }

    /// Is the product node atomic (every component an instance)?
    pub fn is_atomic(&self, a: &[NodeId]) -> bool {
        a.iter()
            .zip(&self.components)
            .all(|(&x, g)| g.is_instance(x))
    }

    /// The atomic extension of a product node: the Cartesian product of
    /// the per-component extensions (§2.1's equivalent flat relation is
    /// made of exactly these).
    ///
    /// Returned lazily; the caller decides how much to consume.
    pub fn extension(&self, a: &[NodeId]) -> ExtensionIter {
        let axes: Vec<Vec<NodeId>> = a
            .iter()
            .zip(&self.components)
            .map(|(&x, g)| g.extension(x))
            .collect();
        ExtensionIter::new(axes)
    }

    /// Size of the atomic extension without enumerating it.
    pub fn extension_size(&self, a: &[NodeId]) -> u128 {
        a.iter()
            .zip(&self.components)
            .map(|(&x, g)| g.extension(x).len() as u128)
            .fold(1u128, |p, n| p.saturating_mul(n))
    }

    /// The interval `{z : a ⊒ z ⊒ b}` in binding reachability, as the
    /// product of component intervals. Used by on-path tuple-binding
    /// derivation, where "path avoiding kept nodes" queries need the
    /// interior nodes explicitly.
    pub fn interval(&self, a: &[NodeId], b: &[NodeId]) -> Vec<ProductNode> {
        let axes: Vec<Vec<NodeId>> = a
            .iter()
            .zip(b)
            .zip(self.components.iter().zip(&self.reach))
            .map(|((&x, &y), (g, r))| {
                g.node_ids()
                    .filter(|&z| r.reaches(x, z) && r.reaches(z, y))
                    .collect()
            })
            .collect();
        ExtensionIter::new(axes).collect()
    }

    /// Materialize the product as an explicit [`HierarchyGraph`].
    ///
    /// Node names are `"(a, b, …)"`. Fails if a name collision occurs
    /// (it cannot, since component names are unique) and is intended for
    /// tests and the B6 growth benchmark only — the node count is the
    /// product of the component sizes.
    pub fn materialize(&self) -> Result<HierarchyGraph> {
        let name_of = |node: &[NodeId]| -> String {
            let parts: Vec<&str> = node
                .iter()
                .zip(&self.components)
                .map(|(&x, g)| g.name(x).as_str())
                .collect();
            format!("({})", parts.join(", "))
        };
        // Enumerate all product nodes in a topological-friendly order:
        // the Cartesian product of component id orders works because
        // component ids are themselves compatible with… not guaranteed;
        // instead add nodes by BFS from the root, then edges.
        let root = self.root();
        let mut g = HierarchyGraph::new(name_of(&root));
        let mut index: std::collections::HashMap<ProductNode, NodeId> =
            std::collections::HashMap::new();
        index.insert(root.clone(), g.root());
        // BFS layer by layer; a child may be seen before all its parents,
        // so create nodes first (under any one discovered parent), then
        // fill in remaining edges in a second pass.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(node) = queue.pop_front() {
            let id = index[&node];
            for child in self.children(&node) {
                if !index.contains_key(&child) {
                    let atomic = self.is_atomic(&child);
                    let cid = if atomic {
                        g.add_instance(name_of(&child), id)?
                    } else {
                        g.add_class(name_of(&child), id)?
                    };
                    index.insert(child.clone(), cid);
                    queue.push_back(child);
                }
            }
        }
        // Second pass: add the remaining edges.
        for (node, &id) in &index {
            for child in self.children(node) {
                let cid = index[&child];
                let kind = self.direct_edge(node, &child);
                let exists = g.children(id).any(|c| c == cid);
                if !exists {
                    match kind {
                        Some(EdgeKind::Preference) => g.add_preference_edge(id, cid)?,
                        _ => g.add_edge(id, cid)?,
                    }
                }
            }
        }
        Ok(g)
    }

    /// Human-readable name of a product node, for printing tables.
    pub fn display(&self, node: &[NodeId]) -> String {
        let parts: Vec<&str> = node
            .iter()
            .zip(&self.components)
            .map(|(&x, g)| g.name(x).as_str())
            .collect();
        if parts.len() == 1 {
            parts[0].to_string()
        } else {
            format!("({})", parts.join(", "))
        }
    }
}

/// Iterator over the Cartesian product of per-component node lists.
pub struct ExtensionIter {
    axes: Vec<Vec<NodeId>>,
    cursor: Vec<usize>,
    done: bool,
}

impl ExtensionIter {
    fn new(axes: Vec<Vec<NodeId>>) -> ExtensionIter {
        let done = axes.iter().any(|a| a.is_empty());
        let cursor = vec![0; axes.len()];
        ExtensionIter { axes, cursor, done }
    }
}

impl Iterator for ExtensionIter {
    type Item = ProductNode;

    fn next(&mut self) -> Option<ProductNode> {
        if self.done {
            return None;
        }
        let item: ProductNode = self
            .cursor
            .iter()
            .zip(&self.axes)
            .map(|(&i, axis)| axis[i])
            .collect();
        // Odometer increment.
        let mut pos = self.axes.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.cursor[pos] += 1;
            if self.cursor[pos] < self.axes[pos].len() {
                break;
            }
            self.cursor[pos] = 0;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2a: Student hierarchy.
    fn students() -> Arc<HierarchyGraph> {
        let mut g = HierarchyGraph::new("Student");
        let ob = g.add_class("Obsequious Student", g.root()).unwrap();
        g.add_instance("John", ob).unwrap();
        g.add_instance("Mary", ob).unwrap();
        Arc::new(g)
    }

    /// Fig. 2b: Teacher hierarchy.
    fn teachers() -> Arc<HierarchyGraph> {
        let mut g = HierarchyGraph::new("Teacher");
        g.add_class("Incoherent Teacher", g.root()).unwrap();
        Arc::new(g)
    }

    fn respects_product() -> ProductHierarchy {
        ProductHierarchy::new(vec![students(), teachers()])
    }

    #[test]
    fn fig2c_product_shape() {
        // Fig. 2c with the instances trimmed: the 2×2 grid of
        // {Student, Obsequious Student} × {Teacher, Incoherent Teacher}.
        let mut s = HierarchyGraph::new("Student");
        s.add_class("Obsequious Student", s.root()).unwrap();
        let mut t = HierarchyGraph::new("Teacher");
        t.add_class("Incoherent Teacher", t.root()).unwrap();
        let p = ProductHierarchy::new(vec![Arc::new(s), Arc::new(t)]);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 4); // each component edge × 2 positions of the other
        let root = p.root();
        assert_eq!(p.children(&root).len(), 2);
        // (ObsStudent, IncoTeacher) has two parents.
        let os = p.component(0).expect("Obsequious Student");
        let it = p.component(1).expect("Incoherent Teacher");
        let corner = vec![os, it];
        assert_eq!(p.parents(&corner).len(), 2);
        assert!(p.reaches(&root, &corner));
        assert!(!p.reaches(&corner, &root));
    }

    #[test]
    fn direct_edge_requires_exactly_one_component_step() {
        let p = respects_product();
        let root = p.root();
        let os = p.component(0).expect("Obsequious Student");
        let it = p.component(1).expect("Incoherent Teacher");
        assert_eq!(
            p.direct_edge(&root, &[os, NodeId::ROOT]),
            Some(EdgeKind::Subset)
        );
        // Diagonal step: both components change — not a direct edge.
        assert_eq!(p.direct_edge(&root, &[os, it]), None);
        // Identity: not an edge.
        assert_eq!(p.direct_edge(&root, &root), None);
        // Two-step in one component: not direct.
        let john = p.component(0).expect("John");
        assert_eq!(p.direct_edge(&root, &[john, NodeId::ROOT]), None);
    }

    #[test]
    fn reaches_is_componentwise() {
        let p = respects_product();
        let john = p.component(0).expect("John");
        let it = p.component(1).expect("Incoherent Teacher");
        assert!(p.reaches(&p.root(), &[john, it]));
        assert!(p.subsumes(&p.root(), &[john, it]));
        let os = p.component(0).expect("Obsequious Student");
        assert!(p.reaches(&[os, NodeId::ROOT], &[john, it]));
        assert!(!p.reaches(&[john, it], &[os, NodeId::ROOT]));
        // Incomparable: (John, Teacher) vs (Mary, Teacher).
        let mary = p.component(0).expect("Mary");
        assert!(!p.reaches(&[john, NodeId::ROOT], &[mary, NodeId::ROOT]));
    }

    #[test]
    fn atomicity_and_extension() {
        let p = respects_product();
        let john = p.component(0).expect("John");
        let mary = p.component(0).expect("Mary");
        let it = p.component(1).expect("Incoherent Teacher");
        assert!(!p.is_atomic(&p.root()));
        assert!(!p.is_atomic(&[john, it])); // Incoherent Teacher is a class
                                            // Teacher component has no instances, so extension is empty.
        assert_eq!(p.extension(&p.root()).count(), 0);
        assert_eq!(p.extension_size(&p.root()), 0);
        // Student-only product.
        let sp = ProductHierarchy::new(vec![students()]);
        let os = sp.component(0).expect("Obsequious Student");
        let ext: Vec<ProductNode> = sp.extension(&[os]).collect();
        assert_eq!(ext, vec![vec![john], vec![mary]]);
        assert_eq!(sp.extension_size(&[os]), 2);
    }

    #[test]
    fn extension_iter_is_full_cartesian_product() {
        let mut a = HierarchyGraph::new("A");
        let ca = a.add_class("CA", a.root()).unwrap();
        a.add_instance("a1", ca).unwrap();
        a.add_instance("a2", ca).unwrap();
        let mut b = HierarchyGraph::new("B");
        let cb = b.add_class("CB", b.root()).unwrap();
        b.add_instance("b1", cb).unwrap();
        b.add_instance("b2", cb).unwrap();
        b.add_instance("b3", cb).unwrap();
        let p = ProductHierarchy::new(vec![Arc::new(a), Arc::new(b)]);
        let ext: Vec<ProductNode> = p.extension(&p.root()).collect();
        assert_eq!(ext.len(), 6);
        assert_eq!(p.extension_size(&p.root()), 6);
        // All distinct.
        let set: std::collections::HashSet<_> = ext.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn interval_is_product_of_component_intervals() {
        let p = respects_product();
        let root = p.root();
        let john = p.component(0).expect("John");
        let it = p.component(1).expect("Incoherent Teacher");
        let iv = p.interval(&root, &[john, it]);
        // Student interval {Student, Obs, John} × Teacher interval
        // {Teacher, Incoherent} = 6 nodes.
        assert_eq!(iv.len(), 6);
        assert!(iv.contains(&root));
        assert!(iv.contains(&vec![john, it]));
    }

    #[test]
    fn materialized_product_matches_lazy_counts() {
        let p = respects_product();
        let m = p.materialize().unwrap();
        assert_eq!(m.len() as u128, p.node_count());
        assert_eq!(m.edge_count() as u128, p.edge_count());
        // Spot-check one reachability fact carries over.
        let corner = m.expect("(John, Incoherent Teacher)");
        assert!(m.is_descendant(corner, m.root()));
    }

    #[test]
    fn display_names() {
        let p = respects_product();
        let john = p.component(0).expect("John");
        let it = p.component(1).expect("Incoherent Teacher");
        assert_eq!(p.display(&[john, it]), "(John, Incoherent Teacher)");
        let sp = ProductHierarchy::new(vec![students()]);
        assert_eq!(sp.display(&[john]), "John");
    }

    #[test]
    fn arity_one_product_mirrors_component() {
        let sp = ProductHierarchy::new(vec![students()]);
        assert_eq!(sp.arity(), 1);
        assert_eq!(sp.node_count(), 4);
        let os = sp.component(0).expect("Obsequious Student");
        assert!(sp.reaches(&[NodeId::ROOT], &[os]));
        assert_eq!(
            sp.direct_edge(&[NodeId::ROOT], &[os]),
            Some(EdgeKind::Subset)
        );
    }
}
