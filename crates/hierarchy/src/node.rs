//! Node identifiers and interned node names.
//!
//! Every node in a [`HierarchyGraph`](crate::graph::HierarchyGraph) is
//! identified by a dense [`NodeId`] (an index into the graph's node table)
//! and carries an interned [`NodeName`]. Dense ids keep all per-node side
//! tables (visited bitmaps, topological numbers, truth values) allocation-
//! friendly `Vec`s instead of hash maps.

use std::fmt;
use std::sync::Arc;

/// A dense identifier for a node within a single [`HierarchyGraph`](crate::graph::HierarchyGraph).
///
/// Ids are only meaningful relative to the graph that created them; the
/// graph hands them out contiguously starting from the root at id 0.
/// They are `u32` rather than `usize` following the small-index guidance
/// for oft-instantiated types: an `Item` in a multi-attribute relation is a
/// vector of these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root of every hierarchy graph (the attribute domain itself).
    pub const ROOT: NodeId = NodeId(0);

    /// The position of this node in the graph's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a `NodeId` from a raw table index.
    ///
    /// Intended for side tables that iterate node indexes; passing an index
    /// not handed out by the owning graph yields an id that the graph's
    /// accessors will reject with [`HierarchyError::UnknownNode`]
    /// (or panic in slice-indexed internal paths).
    ///
    /// [`HierarchyError::UnknownNode`]: crate::error::HierarchyError::UnknownNode
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        debug_assert!(index <= u32::MAX as usize);
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An interned, cheaply clonable node name.
///
/// Names are shared (`Arc<str>`) because the relational layer copies them
/// into tuples, printed tables, and justification traces; cloning must not
/// allocate.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeName(Arc<str>);

impl NodeName {
    /// Intern a name from anything string-like.
    pub fn new(name: impl AsRef<str>) -> NodeName {
        NodeName(Arc::from(name.as_ref()))
    }

    /// View the name as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl AsRef<str> for NodeName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for NodeName {
    fn from(s: &str) -> NodeName {
        NodeName::new(s)
    }
}

impl From<String> for NodeName {
    fn from(s: String) -> NodeName {
        NodeName(Arc::from(s))
    }
}

impl PartialEq<str> for NodeName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for NodeName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_root_is_zero() {
        assert_eq!(NodeId::ROOT.index(), 0);
        assert_eq!(NodeId::from_index(0), NodeId::ROOT);
    }

    #[test]
    fn node_id_round_trips_through_index() {
        for i in [0usize, 1, 7, 1000, u32::MAX as usize] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(NodeId::ROOT < NodeId::from_index(1));
    }

    #[test]
    fn node_name_interns_and_compares() {
        let a = NodeName::new("Bird");
        let b = NodeName::from("Bird");
        let c: NodeName = String::from("Penguin").into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, "Bird");
        assert_eq!(a.as_str(), "Bird");
    }

    #[test]
    fn node_name_clone_shares_storage() {
        let a = NodeName::new("Elephant");
        let b = a.clone();
        // Arc-backed: both point at the same allocation.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(
            NodeName::new("Royal Elephant").to_string(),
            "Royal Elephant"
        );
        assert_eq!(format!("{:?}", NodeName::new("x")), "\"x\"");
    }
}
