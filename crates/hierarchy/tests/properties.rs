//! Property-based tests for the hierarchy substrate.
//!
//! The most important property here is `off_path_elimination_matches_
//! closed_form`: the relational core derives subsumption graphs over
//! *product* hierarchies (which cannot be materialized) from a closed-form
//! characterization of the paper's node-elimination procedure. This suite
//! checks that characterization against the literal procedure on random
//! DAGs, including DAGs with deliberately redundant edges.

use proptest::prelude::*;

use hrdm_hierarchy::elim::{EliminationGraph, EliminationMode};
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};
use hrdm_hierarchy::reach::{redundant_edge_list, transitive_reduction, Reachability};
use hrdm_hierarchy::topo::topological_order;
use hrdm_hierarchy::validate::{validate, Violation};
use hrdm_hierarchy::{HierarchyGraph, NodeId};

/// Strategy: a random layered DAG plus a few random extra (possibly
/// redundant) edges.
fn arb_dag() -> impl Strategy<Value = HierarchyGraph> {
    (1usize..5, 1usize..6, 1usize..4, any::<u64>(), 0usize..6).prop_map(
        |(layers, width, maxp, seed, extra)| {
            let mut g = layered_dag(layers, width, maxp, seed);
            // Sprinkle extra edges between random comparable-or-not nodes;
            // ignore rejections (cycles, duplicates).
            let nodes: Vec<NodeId> = g.node_ids().collect();
            let mut s = seed;
            for _ in 0..extra {
                // Cheap deterministic LCG so the strategy stays pure.
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = nodes[(s >> 33) as usize % nodes.len()];
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = nodes[(s >> 33) as usize % nodes.len()];
                let _ = g.add_edge(a, b);
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_dags_have_no_cycles(g in arb_dag()) {
        let cycles: Vec<_> = validate(&g)
            .into_iter()
            .filter(|v| matches!(v, Violation::Cycle(_)))
            .collect();
        prop_assert!(cycles.is_empty());
    }

    #[test]
    fn topological_order_is_valid_and_total(g in arb_dag()) {
        let order = topological_order(&g);
        prop_assert_eq!(order.len(), g.len());
        let mut pos = vec![usize::MAX; g.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for id in g.node_ids() {
            for c in g.children(id) {
                prop_assert!(pos[id.index()] < pos[c.index()]);
            }
        }
    }

    #[test]
    fn reachability_matrix_matches_dfs(g in arb_dag()) {
        let r = Reachability::new(&g);
        for i in g.node_ids() {
            for j in g.node_ids() {
                prop_assert_eq!(r.reaches(i, j), g.reaches(i, j));
            }
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability(g in arb_dag()) {
        let before = Reachability::new(&g);
        let mut reduced = g.clone();
        transitive_reduction(&mut reduced);
        let after = Reachability::new(&reduced);
        for i in g.node_ids() {
            for j in g.node_ids() {
                prop_assert_eq!(before.reaches(i, j), after.reaches(i, j));
            }
        }
        prop_assert!(redundant_edge_list(&reduced).is_empty());
    }

    #[test]
    fn elimination_preserves_reachability_among_survivors(
        g in arb_dag(),
        keep_count in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut kept = sample_nodes(&g, keep_count, seed);
        kept.push(g.root());
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.retain(|n| kept.contains(&n));
        let r = Reachability::new(&g);
        for &x in &kept {
            for &y in &kept {
                prop_assert_eq!(
                    e.has_path(x, y),
                    r.reaches(x, y),
                    "reachability must be induced for {:?} -> {:?}", x, y
                );
            }
        }
    }

    /// Closed form: after off-path elimination of all non-kept nodes,
    /// an edge x -> y survives iff x reaches y and either the *original*
    /// graph had a direct edge x -> y, or no kept node lies strictly
    /// between x and y.
    #[test]
    fn off_path_elimination_matches_closed_form(
        g in arb_dag(),
        keep_count in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut kept = sample_nodes(&g, keep_count, seed);
        kept.push(g.root());
        kept.sort_unstable();
        kept.dedup();
        let mut e = EliminationGraph::new(&g, EliminationMode::OffPath);
        e.retain(|n| kept.contains(&n));
        let r = Reachability::new(&g);
        for &x in &kept {
            for &y in &kept {
                if x == y {
                    continue;
                }
                let direct = g.children(x).any(|c| c == y);
                let intermediary = kept
                    .iter()
                    .any(|&z| z != x && z != y && r.reaches(x, z) && r.reaches(z, y));
                let expect = r.reaches(x, y) && (direct || !intermediary);
                prop_assert_eq!(
                    e.has_edge(x, y),
                    expect,
                    "edge {:?} -> {:?}: direct={} intermediary={}",
                    x, y, direct, intermediary
                );
            }
        }
    }

    /// On-path closed form: edge x -> y iff some original path x -> y has
    /// no kept interior node.
    #[test]
    fn on_path_elimination_matches_closed_form(
        g in arb_dag(),
        keep_count in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut kept = sample_nodes(&g, keep_count, seed);
        kept.push(g.root());
        kept.sort_unstable();
        kept.dedup();
        let mut e = EliminationGraph::new(&g, EliminationMode::OnPath);
        e.retain(|n| kept.contains(&n));
        for &x in &kept {
            for &y in &kept {
                if x == y {
                    continue;
                }
                // Path avoiding kept interior nodes, by DFS on the
                // original graph.
                let mut stack = vec![x];
                let mut seen = vec![false; g.len()];
                seen[x.index()] = true;
                let mut found = false;
                while let Some(n) = stack.pop() {
                    for c in g.children(n) {
                        if c == y {
                            found = true;
                            break;
                        }
                        if !seen[c.index()] && !kept.contains(&c) {
                            seen[c.index()] = true;
                            stack.push(c);
                        }
                    }
                    if found {
                        break;
                    }
                }
                prop_assert_eq!(
                    e.has_edge(x, y),
                    found,
                    "on-path edge {:?} -> {:?}", x, y
                );
            }
        }
    }

    /// Off-path elimination is independent of elimination order.
    #[test]
    fn off_path_elimination_is_order_independent(
        g in arb_dag(),
        keep_count in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut kept = sample_nodes(&g, keep_count, seed);
        kept.push(g.root());
        let doomed: Vec<NodeId> = g
            .node_ids()
            .filter(|n| !kept.contains(n))
            .collect();

        let mut fwd = EliminationGraph::new(&g, EliminationMode::OffPath);
        for &n in &doomed {
            fwd.eliminate(n);
        }
        let mut rev = EliminationGraph::new(&g, EliminationMode::OffPath);
        for &n in doomed.iter().rev() {
            rev.eliminate(n);
        }
        for &x in &kept {
            let mut a = fwd.successors(x).to_vec();
            let mut b = rev.successors(x).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "successors of {:?} differ by order", x);
        }
    }

    #[test]
    fn extension_members_are_exactly_descendant_instances(g in arb_dag()) {
        for class in g.node_ids() {
            let ext = g.extension(class);
            for inst in g.instances() {
                prop_assert_eq!(
                    ext.contains(&inst),
                    g.is_descendant(inst, class),
                    "instance {:?} vs class {:?}", inst, class
                );
            }
        }
    }
}
