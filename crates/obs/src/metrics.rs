//! The typed metrics registry: named counters, gauges, and log-scaled
//! latency histograms.
//!
//! Handles returned by [`counter`], [`gauge`] and [`histogram`] are
//! cheap clones of `Arc`-shared atomics; callers cache them in
//! `OnceLock` statics so the registry lock is only taken once per name
//! per process. Recording is a relaxed atomic op.
//!
//! [`reset_all`] zeroes every registered metric in one sweep while
//! holding the registry lock — the single reset point the bench
//! fixtures use so back-to-back runs cannot leak accumulators into each
//! other.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::escape;

/// Number of log2 buckets a histogram keeps; bucket `i` holds values
/// `v` with `floor(log2(v)) + 1 == i` (bucket 0 holds zero), so the
/// top bucket covers everything from ~2^46 ns (≈ 20 hours) up.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "obs")]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = n;
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable gauge (current size, resident entries, …).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "obs")]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = v;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A log2-bucketed latency histogram over nanosecond observations.
///
/// Quantile estimates return the *upper bound* of the bucket holding
/// the requested rank — within 2x of the true value, which is the
/// right resolution for latency regression tracking without any
/// allocation on the record path.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) of bucket `i`, in nanoseconds.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        #[cfg(feature = "obs")]
        {
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(ns, Ordering::Relaxed);
            self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = ns;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q` in `[0, 1]`; `None` before any
    /// observation.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    fn zero(&self) {
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get or register the counter called `name`.
///
/// Panics if `name` is already registered as a different metric type
/// (a programming error, caught at the first lookup).
pub fn counter(name: &'static str) -> Counter {
    let mut r = registry().lock().unwrap();
    match r
        .entry(name)
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Get or register the gauge called `name`.
pub fn gauge(name: &'static str) -> Gauge {
    let mut r = registry().lock().unwrap();
    match r
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Get or register the histogram called `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut r = registry().lock().unwrap();
    match r.entry(name).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Zero every registered metric in one sweep under the registry lock.
///
/// Cached handles stay valid — they share the same atomics. This is the
/// engine's single reset point: counters, gauges, and histograms across
/// all crates go back to zero together, so a bench harness cannot
/// observe a half-reset state where caches were cleared but wall-time
/// accumulators still carry the previous run.
pub fn reset_all() {
    let r = registry().lock().unwrap();
    for m in r.values() {
        match m {
            Metric::Counter(c) => c.zero(),
            Metric::Gauge(g) => g.zero(),
            Metric::Histogram(h) => h.zero(),
        }
    }
}

/// Names currently registered, in sorted order.
pub fn metric_names() -> Vec<&'static str> {
    registry().lock().unwrap().keys().copied().collect()
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("hrdm_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Render the whole registry as Prometheus-style text exposition.
///
/// Counters and gauges become single samples; histograms become a
/// summary (`_count`, `_sum`, and `quantile` samples for p50/p95/p99).
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    for (name, m) in r.iter() {
        let p = prom_name(name);
        match m {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {p} counter");
                let _ = writeln!(out, "{p} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {p} gauge");
                let _ = writeln!(out, "{p} {}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {p} summary");
                for q in [0.5, 0.95, 0.99] {
                    let v = h.quantile_ns(q).unwrap_or(0);
                    let _ = writeln!(out, "{p}{{quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{p}_sum {}", h.sum_ns());
                let _ = writeln!(out, "{p}_count {}", h.count());
            }
        }
    }
    out
}

/// Render the registry as machine-readable JSON (the `BENCH_obs.json`
/// format): `{"schema_version":1,"label":…,"metrics":{name:{…}}}`.
pub fn export_json(label: &str) -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":1,\"label\":\"{}\",\"metrics\":{{",
        escape(label)
    );
    for (k, (name, m)) in r.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(name));
        match m {
            Metric::Counter(c) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{}}}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\
                     \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                    h.count(),
                    h.sum_ns(),
                    h.quantile_ns(0.5).unwrap_or(0),
                    h.quantile_ns(0.95).unwrap_or(0),
                    h.quantile_ns(0.99).unwrap_or(0),
                );
            }
        }
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs")]
    #[test]
    fn counters_and_gauges_record() {
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), before + 4);
        // A second lookup shares the same atomic.
        counter("test.metrics.counter").incr();
        assert_eq!(c.get(), before + 5);

        let g = gauge("test.metrics.gauge");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_quantiles_are_log_bounded() {
        let h = histogram("test.metrics.histo");
        h.zero();
        for _ in 0..99 {
            h.observe_ns(1_000); // bucket upper bound 1023
        }
        h.observe_ns(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5).unwrap();
        assert!((1_000..2_048).contains(&p50), "{p50}");
        let p99 = h.quantile_ns(0.99).unwrap();
        assert!(p99 < 2_048, "p99 still in the small bucket: {p99}");
        let p100 = h.quantile_ns(1.0).unwrap();
        assert!(p100 >= 1_000_000, "{p100}");
    }

    #[test]
    fn zero_observation_quantile_is_none() {
        let h = histogram("test.metrics.empty");
        assert_eq!(h.quantile_ns(0.5), None);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn reset_all_zeroes_everything_in_one_sweep() {
        let c = counter("test.metrics.reset");
        let h = histogram("test.metrics.reset_histo");
        c.add(7);
        h.observe_ns(5);
        reset_all();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn exports_render() {
        let c = counter("test.metrics.export");
        c.incr();
        let prom = render_prometheus();
        assert!(prom.contains("hrdm_test_metrics_export"), "{prom}");
        assert!(prom.contains("# TYPE"), "{prom}");
        let json = export_json("unit");
        assert!(json.starts_with("{\"schema_version\":1"), "{json}");
        assert!(json.contains("\"test.metrics.export\""), "{json}");
        assert!(json.contains("\"label\":\"unit\""), "{json}");
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        let mut prev = 0;
        for shift in 0..60 {
            let b = bucket_of(1u64 << shift);
            assert!(b >= prev);
            prev = b;
        }
    }
}
