//! The typed metrics registry: named counters, gauges, and log-scaled
//! latency histograms.
//!
//! Handles returned by [`counter`], [`gauge`] and [`histogram`] are
//! cheap clones of `Arc`-shared atomics; callers cache them in
//! `OnceLock` statics so the registry lock is only taken once per name
//! per process. Recording is a relaxed atomic op.
//!
//! [`reset_all`] zeroes every registered metric in one sweep while
//! holding the registry lock — the single reset point the bench
//! fixtures use so back-to-back runs cannot leak accumulators into each
//! other.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::escape;

/// Number of log2 buckets a histogram keeps; bucket `i` holds values
/// `v` with `floor(log2(v)) + 1 == i` (bucket 0 holds zero), so the
/// top bucket covers everything from ~2^46 ns (≈ 20 hours) up.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "obs")]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = n;
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable gauge (current size, resident entries, …).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "obs")]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = v;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A log2-bucketed latency histogram over nanosecond observations.
///
/// Quantile estimates return the *upper bound* of the bucket holding
/// the requested rank — within 2x of the true value, which is the
/// right resolution for latency regression tracking without any
/// allocation on the record path.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) of bucket `i`, in nanoseconds.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        #[cfg(feature = "obs")]
        {
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(ns, Ordering::Relaxed);
            self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = ns;
    }

    /// Record one dimensionless observation (queue depths, batch
    /// sizes, ready-event counts, frame bytes, …).
    ///
    /// Histograms are unit-agnostic log2 buckets; this alias exists so
    /// call sites recording non-latency values don't claim nanoseconds.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.observe_ns(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q` in `[0, 1]`; `None` before any
    /// observation.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    fn zero(&self) {
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get or register the counter called `name`.
///
/// Panics if `name` is already registered as a different metric type
/// (a programming error, caught at the first lookup).
pub fn counter(name: &'static str) -> Counter {
    let mut r = registry().lock().unwrap();
    match r
        .entry(name)
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Get or register the gauge called `name`.
pub fn gauge(name: &'static str) -> Gauge {
    let mut r = registry().lock().unwrap();
    match r
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Get or register the histogram called `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut r = registry().lock().unwrap();
    match r.entry(name).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Zero every registered metric in one sweep under the registry lock.
///
/// Cached handles stay valid — they share the same atomics. This is the
/// engine's single reset point: counters, gauges, and histograms across
/// all crates go back to zero together, so a bench harness cannot
/// observe a half-reset state where caches were cleared but wall-time
/// accumulators still carry the previous run.
pub fn reset_all() {
    let r = registry().lock().unwrap();
    for m in r.values() {
        match m {
            Metric::Counter(c) => c.zero(),
            Metric::Gauge(g) => g.zero(),
            Metric::Histogram(h) => h.zero(),
        }
    }
}

/// Names currently registered, in sorted order.
pub fn metric_names() -> Vec<&'static str> {
    registry().lock().unwrap().keys().copied().collect()
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("hrdm_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escape a string for use as a Prometheus label *value* (the
/// exposition format: backslash, double quote, and line feed must be
/// escaped inside the surrounding quotes).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a string for a `# HELP` line (backslash and line feed).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render the whole registry as Prometheus text exposition.
///
/// Every series gets a `# HELP` and a `# TYPE` line before its
/// samples. Counters and gauges become single samples; histograms
/// become a summary (`_count`, `_sum`, and `quantile` samples for
/// p50/p95/p99) whose label values are escaped per the exposition
/// format.
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    for (name, m) in r.iter() {
        let p = prom_name(name);
        let help = escape_help(name);
        match m {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# HELP {p} hrdm counter {help}");
                let _ = writeln!(out, "# TYPE {p} counter");
                let _ = writeln!(out, "{p} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# HELP {p} hrdm gauge {help}");
                let _ = writeln!(out, "# TYPE {p} gauge");
                let _ = writeln!(out, "{p} {}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# HELP {p} hrdm latency histogram {help} (ns)");
                let _ = writeln!(out, "# TYPE {p} summary");
                for q in [0.5, 0.95, 0.99] {
                    let v = h.quantile_ns(q).unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "{p}{{quantile=\"{}\"}} {v}",
                        escape_label_value(&q.to_string())
                    );
                }
                let _ = writeln!(out, "{p}_sum {}", h.sum_ns());
                let _ = writeln!(out, "{p}_count {}", h.count());
            }
        }
    }
    out
}

/// Render the registry as machine-readable JSON (the `BENCH_obs.json`
/// format): `{"schema_version":1,"label":…,"metrics":{name:{…}}}`.
pub fn export_json(label: &str) -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":1,\"label\":\"{}\",\"metrics\":{{",
        escape(label)
    );
    for (k, (name, m)) in r.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(name));
        match m {
            Metric::Counter(c) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{}}}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\
                     \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                    h.count(),
                    h.sum_ns(),
                    h.quantile_ns(0.5).unwrap_or(0),
                    h.quantile_ns(0.95).unwrap_or(0),
                    h.quantile_ns(0.99).unwrap_or(0),
                );
            }
        }
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs")]
    #[test]
    fn counters_and_gauges_record() {
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), before + 4);
        // A second lookup shares the same atomic.
        counter("test.metrics.counter").incr();
        assert_eq!(c.get(), before + 5);

        let g = gauge("test.metrics.gauge");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_quantiles_are_log_bounded() {
        let h = histogram("test.metrics.histo");
        h.zero();
        for _ in 0..99 {
            h.observe_ns(1_000); // bucket upper bound 1023
        }
        h.observe_ns(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5).unwrap();
        assert!((1_000..2_048).contains(&p50), "{p50}");
        let p99 = h.quantile_ns(0.99).unwrap();
        assert!(p99 < 2_048, "p99 still in the small bucket: {p99}");
        let p100 = h.quantile_ns(1.0).unwrap();
        assert!(p100 >= 1_000_000, "{p100}");
    }

    #[test]
    fn zero_observation_quantile_is_none() {
        let h = histogram("test.metrics.empty");
        assert_eq!(h.quantile_ns(0.5), None);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn reset_all_zeroes_everything_in_one_sweep() {
        let c = counter("test.metrics.reset");
        let h = histogram("test.metrics.reset_histo");
        c.add(7);
        h.observe_ns(5);
        reset_all();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn exports_render() {
        let c = counter("test.metrics.export");
        c.incr();
        let prom = render_prometheus();
        assert!(prom.contains("hrdm_test_metrics_export"), "{prom}");
        assert!(prom.contains("# TYPE"), "{prom}");
        let json = export_json("unit");
        assert!(json.starts_with("{\"schema_version\":1"), "{json}");
        assert!(json.contains("\"test.metrics.export\""), "{json}");
        assert!(json.contains("\"label\":\"unit\""), "{json}");
    }

    /// Line-by-line exposition-format check: every line is a `# HELP`,
    /// a `# TYPE`, or a sample `name[{labels}] value`; metric names are
    /// legal; every sampled family is preceded by its own HELP and TYPE
    /// lines; label values are well-formed quoted strings.
    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_output_parses_against_the_exposition_format() {
        use std::collections::BTreeSet;

        counter("test.metrics.prom.counter").incr();
        gauge("test.metrics.prom.gauge").set(3);
        histogram("test.metrics.prom.histo").observe_ns(500);

        fn legal_name(s: &str) -> bool {
            let mut chars = s.chars();
            let ok_first = |c: char| c.is_ascii_alphabetic() || c == '_' || c == ':';
            match chars.next() {
                Some(c) if ok_first(c) => {}
                _ => return false,
            }
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }

        // A sample's base family: `name_sum`/`name_count` fold into
        // `name` only when `name` itself was announced.
        let text = render_prometheus();
        let mut helped: BTreeSet<String> = BTreeSet::new();
        let mut typed: BTreeSet<String> = BTreeSet::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in the exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has text");
                assert!(legal_name(name), "bad HELP name {name:?}");
                assert!(!help.is_empty(), "empty HELP text for {name}");
                helped.insert(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has a kind");
                assert!(legal_name(name), "bad TYPE name {name:?}");
                assert!(
                    ["counter", "gauge", "summary"].contains(&kind),
                    "unknown TYPE {kind:?}"
                );
                assert!(
                    helped.contains(name),
                    "# TYPE {name} appears before its # HELP"
                );
                typed.insert(name.to_string());
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment line {line:?}");
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("sample value {value:?} is not a number in {line:?}"));
            let name = match series.split_once('{') {
                None => series,
                Some((name, labels)) => {
                    let labels = labels.strip_suffix('}').expect("labels close");
                    for pair in labels.split(',') {
                        let (k, v) = pair.split_once('=').expect("label has a value");
                        assert!(legal_name(k), "bad label name {k:?}");
                        let v = v
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .unwrap_or_else(|| panic!("label value {v:?} is not quoted"));
                        // Inside the quotes, every `"` and `\` must be
                        // escaped and no raw newline can appear.
                        let mut chars = v.chars();
                        while let Some(c) = chars.next() {
                            match c {
                                '\\' => {
                                    let e = chars.next().expect("dangling escape");
                                    assert!(
                                        matches!(e, '\\' | '"' | 'n'),
                                        "bad escape \\{e} in label value {v:?}"
                                    );
                                }
                                '"' => panic!("unescaped quote in label value {v:?}"),
                                '\n' => panic!("raw newline in label value {v:?}"),
                                _ => {}
                            }
                        }
                    }
                    name
                }
            };
            assert!(legal_name(name), "bad sample name {name:?}");
            let family = ["_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = name.strip_suffix(suffix)?;
                    typed.contains(base).then_some(base)
                })
                .unwrap_or(name);
            assert!(helped.contains(family), "{name} sampled without # HELP");
            assert!(typed.contains(family), "{name} sampled without # TYPE");
        }
        assert!(
            helped.contains("hrdm_test_metrics_prom_counter"),
            "registered counter missing from the exposition"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn label_values_escape_per_the_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        let mut prev = 0;
        for shift in 0..60 {
            let b = bucket_of(1u64 << shift);
            assert!(b >= prev);
            prev = b;
        }
    }
}
