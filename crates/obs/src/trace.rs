//! Per-query execution traces: capture the spans closed while a
//! closure runs and assemble them into a tree.

use crate::span::{self, SpanEvent, SpanId};
use std::collections::BTreeMap;

/// One node of an assembled trace tree.
#[derive(Clone, Debug)]
pub struct TraceNode {
    pub name: &'static str,
    pub thread: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    pub fields: Vec<(&'static str, String)>,
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Inclusive wall time of this span (children overlap it).
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up a field by key (first match).
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Field parsed as an integer, if present and numeric.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }
}

/// The tree of spans recorded during one [`capture`].
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    /// The capture's root span, with all reachable descendants.
    pub root: Option<TraceNode>,
    /// Events recorded during the capture that were *not* reachable
    /// from the root — zero unless another capture ran concurrently or
    /// a span escaped its parent's lifetime.
    pub orphans: usize,
}

impl QueryTrace {
    /// A trace with nothing in it (what captures return with the `obs`
    /// feature off).
    pub fn empty() -> Self {
        QueryTrace::default()
    }

    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// All nodes in pre-order (root first).
    pub fn nodes(&self) -> Vec<&TraceNode> {
        fn walk<'a>(n: &'a TraceNode, out: &mut Vec<&'a TraceNode>) {
            out.push(n);
            for c in &n.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        if let Some(r) = &self.root {
            walk(r, &mut out);
        }
        out
    }

    /// First node (pre-order) whose name matches.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        self.nodes().into_iter().find(|n| n.name == name)
    }

    /// Build a trace tree out of a flat event list, rooted at
    /// `root_id`. Children are ordered by `(start_ns, id)` so sibling
    /// order is deterministic even when workers race.
    pub fn assemble(events: &[SpanEvent], root_id: Option<SpanId>) -> Self {
        let Some(root_id) = root_id else {
            return QueryTrace::default();
        };
        let mut by_parent: BTreeMap<SpanId, Vec<&SpanEvent>> = BTreeMap::new();
        let mut root_event = None;
        for e in events {
            if e.id == root_id {
                root_event = Some(e);
            } else if let Some(p) = e.parent {
                by_parent.entry(p).or_default().push(e);
            }
        }
        for kids in by_parent.values_mut() {
            kids.sort_by_key(|e| (e.start_ns, e.id));
        }
        fn build(
            e: &SpanEvent,
            by_parent: &BTreeMap<SpanId, Vec<&SpanEvent>>,
        ) -> (TraceNode, usize) {
            let mut reached = 1;
            let mut children = Vec::new();
            for c in by_parent.get(&e.id).map(|v| v.as_slice()).unwrap_or(&[]) {
                let (node, n) = build(c, by_parent);
                children.push(node);
                reached += n;
            }
            (
                TraceNode {
                    name: e.name,
                    thread: e.thread,
                    start_ns: e.start_ns,
                    end_ns: e.end_ns,
                    fields: e.fields.clone(),
                    children,
                },
                reached,
            )
        }
        match root_event {
            Some(r) => {
                let (root, reached) = build(r, &by_parent);
                QueryTrace {
                    root: Some(root),
                    orphans: events.len() - reached,
                }
            }
            None => QueryTrace {
                root: None,
                orphans: events.len(),
            },
        }
    }

    /// Render the tree with wall times — the `TRACE` statement output.
    pub fn render(&self) -> String {
        self.render_inner(true)
    }

    /// Render only the stable fields: wall times are elided and any
    /// field whose key ends in `_ns` is dropped, so the output is
    /// golden-snapshot safe.
    pub fn render_stable(&self) -> String {
        self.render_inner(false)
    }

    fn render_inner(&self, with_times: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        fn walk(n: &TraceNode, depth: usize, with_times: bool, out: &mut String) {
            let _ = write!(out, "{:indent$}{}", "", n.name, indent = depth * 2);
            for (k, v) in &n.fields {
                if !with_times && k.ends_with("_ns") {
                    continue;
                }
                let _ = write!(out, " {k}={v}");
            }
            if with_times {
                let _ = write!(out, " [{}]", fmt_ns(n.wall_ns()));
            }
            out.push('\n');
            for c in &n.children {
                walk(c, depth + 1, with_times, out);
            }
        }
        match &self.root {
            Some(r) => walk(r, 0, with_times, &mut out),
            None => out.push_str("(empty trace)\n"),
        }
        out
    }
}

/// Human-readable duration: ns under 1µs, then µs/ms/s with one
/// decimal.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.1}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Run `f` while recording spans; return its result plus the assembled
/// [`QueryTrace`] rooted at a fresh span called `name`.
///
/// Captures nest: an inner capture copies out its slice of the shared
/// buffer without disturbing the outer capture, and the buffer is
/// cleared only when the last capture ends. With the `obs` feature off
/// this runs `f` and returns [`QueryTrace::empty`].
pub fn capture<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, QueryTrace) {
    let start = span::begin_recording();
    let (out, root_id) = {
        let root = span::span(name);
        let id = root.id();
        (f(), id)
    };
    let events = span::end_recording(start);
    (out, QueryTrace::assemble(&events, root_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs")]
    #[test]
    fn capture_assembles_a_tree() {
        let ((), trace) = capture("test.trace.root", || {
            let a = crate::span!("test.trace.a", rows = 3);
            drop(a);
            let _b = crate::span!("test.trace.b");
        });
        let root = trace.root.as_ref().expect("root");
        assert_eq!(root.name, "test.trace.root");
        assert_eq!(root.children.len(), 2);
        // Sibling order is by start time: a before b.
        assert_eq!(root.children[0].name, "test.trace.a");
        assert_eq!(root.children[0].field_u64("rows"), Some(3));
        assert_eq!(trace.orphans, 0);
        assert!(trace.find("test.trace.b").is_some());
        assert_eq!(trace.nodes().len(), 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn nested_captures_do_not_disturb_each_other() {
        let ((), outer) = capture("test.trace.outer", || {
            let ((), inner) = capture("test.trace.inner", || {
                let _x = crate::span!("test.trace.leaf");
            });
            assert_eq!(inner.root.as_ref().unwrap().name, "test.trace.inner");
            assert_eq!(inner.nodes().len(), 2);
        });
        // The outer capture sees the inner root as its child.
        let root = outer.root.as_ref().unwrap();
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "test.trace.inner");
        assert_eq!(root.children[0].children[0].name, "test.trace.leaf");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stable_render_elides_times() {
        let ((), trace) = capture("test.trace.stable", || {
            let mut g = crate::span!("test.trace.op");
            g.field_u64("rows", 9);
            g.field_u64("own_ns", 123_456);
        });
        let with_times = trace.render();
        assert!(with_times.contains('['), "{with_times}");
        assert!(with_times.contains("own_ns=123456"), "{with_times}");
        let stable = trace.render_stable();
        assert!(!stable.contains('['), "{stable}");
        assert!(!stable.contains("own_ns"), "{stable}");
        assert!(stable.contains("rows=9"), "{stable}");
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn capture_is_a_no_op_without_the_feature() {
        let (v, trace) = capture("test.trace.off", || 7);
        assert_eq!(v, 7);
        assert!(trace.is_empty());
        assert_eq!(trace.render_stable(), "(empty trace)\n");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.0s");
    }
}
