//! `hrdm-obs`: structured tracing and metrics for the engine, with no
//! external dependencies.
//!
//! The crate replaces the two disconnected ad-hoc mechanisms the engine
//! grew earlier — process-global `EngineStats` counters and the
//! plan-local `NodeProfile` tree — with one layered subsystem:
//!
//! * [`metrics`] — a typed registry of named counters, gauges and
//!   log-scaled latency histograms (p50/p95/p99). Handles are cached
//!   `Arc`s over relaxed atomics, so recording costs a few nanoseconds
//!   and is safe from parallel workers. [`metrics::reset_all`] zeroes
//!   *every* registered metric in one sweep under the registry lock, so
//!   benchmark harnesses get an atomic reset instead of chasing
//!   per-crate counter sets.
//! * [`mod@span`] — `span!("consolidate", rel = name)` guards with
//!   monotonic timing, thread id, and parent linkage. Parenting uses a
//!   thread-local stack; scoped worker threads link to their spawner
//!   explicitly ([`span::span_with_parent`]), so fan-out stages stay
//!   attached to the query that spawned them. When no capture is
//!   active, a guard is fully inert — one relaxed atomic load.
//! * [`trace`] — per-query execution traces:
//!   [`trace::capture`] records every span closed during a closure and
//!   assembles the ones reachable from the capture root into a
//!   [`trace::QueryTrace`] tree with per-node rows, wall time, and
//!   cache-attribution fields.
//! * [`attrib`] — thread-local attribution slots (closure and
//!   subsumption cache hits/misses, heap I/O) that let a plan node
//!   report *its own* cache traffic deterministically even while other
//!   threads hammer the shared caches.
//! * [`chrome`] — `chrome://tracing`-loadable JSON export of a trace.
//! * [`slowlog`] — a process-global bounded buffer of the N slowest
//!   requests (wall time, epoch, rendered trace tree) that the serving
//!   layer feeds and exposes over the wire via its `SLOWLOG` verb.
//!
//! # Feature gating
//!
//! Everything is behind the `obs` feature (on by default). With
//! `--no-default-features` the same API compiles to no-ops: guards are
//! zero-variant, counters don't register, captures run the closure and
//! return an empty trace. Instrumented crates therefore carry no cfg.

pub mod attrib;
pub mod chrome;
mod json;
pub mod metrics;
pub mod slowlog;
pub mod span;
pub mod trace;

pub use span::SpanGuard;
pub use trace::QueryTrace;

/// Open a span guard, optionally attaching `key = value` fields.
///
/// ```
/// let name = "Flying";
/// let _g = hrdm_obs::span!("consolidate", rel = name);
/// ```
///
/// Fields are only rendered (and only allocate) when a capture is
/// active; otherwise the guard is inert.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        let mut guard = $crate::span::span($name);
        if guard.is_active() {
            $(guard.field_str(stringify!($key), $val.to_string());)+
        }
        guard
    }};
}
