//! Minimal JSON string escaping (the crate hand-rolls its exports; no
//! serde).

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::escape;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }
}
