//! Thread-local attribution counters.
//!
//! The global metrics registry answers "how much cache traffic did the
//! whole process generate", but a plan node wants to report *its own*
//! closure-cache hits — and under `cargo test` or parallel workers the
//! global counters are polluted by whatever else is running. These
//! slots are per-thread: an operator snapshots them, does its work, and
//! takes the delta, which is deterministic no matter what other threads
//! do to the shared caches.
//!
//! Instrumented code bumps both the registry metric *and* the matching
//! attribution slot; the registry feeds exports, the slots feed trace
//! fields.

use std::cell::Cell;

/// The attribution slots an operator can charge work to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AttribKey {
    /// Closure-cache hit in `hierarchy::cache`.
    ClosureHit,
    /// Closure-cache miss (a reachability closure was built).
    ClosureMiss,
    /// Subsumption-core reuse from the shared core cache.
    SubsumptionHit,
    /// Subsumption-core build (cache miss).
    SubsumptionMiss,
    /// Storage heap page reads.
    HeapRead,
    /// Storage heap page writes.
    HeapWrite,
}

/// Number of distinct [`AttribKey`] slots.
pub const KEY_COUNT: usize = 6;

/// Every key with its trace-field name, in slot order.
pub const ALL_KEYS: [(AttribKey, &str); KEY_COUNT] = [
    (AttribKey::ClosureHit, "closure_hits"),
    (AttribKey::ClosureMiss, "closure_misses"),
    (AttribKey::SubsumptionHit, "subsumption_hits"),
    (AttribKey::SubsumptionMiss, "subsumption_misses"),
    (AttribKey::HeapRead, "heap_reads"),
    (AttribKey::HeapWrite, "heap_writes"),
];

impl AttribKey {
    fn slot(self) -> usize {
        match self {
            AttribKey::ClosureHit => 0,
            AttribKey::ClosureMiss => 1,
            AttribKey::SubsumptionHit => 2,
            AttribKey::SubsumptionMiss => 3,
            AttribKey::HeapRead => 4,
            AttribKey::HeapWrite => 5,
        }
    }
}

thread_local! {
    static SLOTS: Cell<[u64; KEY_COUNT]> = const { Cell::new([0; KEY_COUNT]) };
}

/// Add `n` to this thread's slot for `key`.
#[inline]
pub fn add(key: AttribKey, n: u64) {
    if cfg!(feature = "obs") {
        SLOTS.with(|s| {
            let mut v = s.get();
            v[key.slot()] += n;
            s.set(v);
        });
    }
}

/// Increment this thread's slot for `key` by one.
#[inline]
pub fn bump(key: AttribKey) {
    add(key, 1);
}

/// A point-in-time copy of this thread's slots; subtract two to
/// attribute the work done in between.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AttribSnapshot([u64; KEY_COUNT]);

impl AttribSnapshot {
    /// Value of one slot.
    pub fn get(&self, key: AttribKey) -> u64 {
        self.0[key.slot()]
    }

    /// Slot-wise `self - earlier` (saturating).
    pub fn since(&self, earlier: &AttribSnapshot) -> AttribSnapshot {
        let mut out = [0u64; KEY_COUNT];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].saturating_sub(earlier.0[i]);
        }
        AttribSnapshot(out)
    }

    /// True when every slot is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

/// Copy this thread's current slots.
pub fn snapshot() -> AttribSnapshot {
    if cfg!(feature = "obs") {
        AttribSnapshot(SLOTS.with(|s| s.get()))
    } else {
        AttribSnapshot::default()
    }
}

/// Delta of this thread's slots since `earlier`.
pub fn since(earlier: &AttribSnapshot) -> AttribSnapshot {
    snapshot().since(earlier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs")]
    #[test]
    fn deltas_attribute_per_thread() {
        let before = snapshot();
        bump(AttribKey::ClosureHit);
        add(AttribKey::HeapRead, 3);
        let delta = since(&before);
        assert_eq!(delta.get(AttribKey::ClosureHit), 1);
        assert_eq!(delta.get(AttribKey::HeapRead), 3);
        assert_eq!(delta.get(AttribKey::SubsumptionMiss), 0);
        assert!(!delta.is_zero());

        // Another thread's bumps never show up in this thread's delta.
        let before = snapshot();
        std::thread::scope(|s| {
            s.spawn(|| {
                bump(AttribKey::ClosureMiss);
                assert_eq!(snapshot().get(AttribKey::ClosureMiss), 1);
            });
        });
        assert!(since(&before).is_zero());
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn slots_are_inert_without_the_feature() {
        bump(AttribKey::ClosureHit);
        assert!(snapshot().is_zero());
    }

    #[test]
    fn all_keys_cover_every_slot() {
        let mut seen = [false; KEY_COUNT];
        for (k, _) in ALL_KEYS {
            seen[k.slot()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
