//! Span guards: scoped timing with thread-local parenting.
//!
//! A span is opened with [`span`] (or the [`crate::span!`] macro, which
//! also attaches fields) and closed when the returned [`SpanGuard`]
//! drops. While at least one [`crate::trace::capture`] is active, every
//! closed span is appended to a process-global buffer as a
//! [`SpanEvent`]; otherwise guards are fully inert — opening one costs
//! a single relaxed atomic load.
//!
//! Parenting is a thread-local stack: the span open at the top of the
//! current thread's stack becomes the parent of the next span opened on
//! that thread. Scoped worker threads (see `core::parallel`) have empty
//! stacks of their own, so they link to the spawning thread's span
//! *explicitly* via [`span_with_parent`], keeping fan-out chunks
//! attached to the query that spawned them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identifier of one span, unique within the process.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// One closed span, as recorded into the capture buffer.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: &'static str,
    /// Process-local sequential thread index (stable per thread).
    pub thread: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    pub fields: Vec<(&'static str, String)>,
}

/// Nanoseconds since the process-wide monotonic epoch (first use).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn thread_index() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|ix| *ix)
}

static CAPTURES: AtomicU64 = AtomicU64::new(0);

fn next_id() -> SpanId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
}

fn buffer() -> &'static Mutex<Vec<SpanEvent>> {
    static BUF: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// Is any capture currently recording spans?
#[inline]
pub fn recording_active() -> bool {
    cfg!(feature = "obs") && CAPTURES.load(Ordering::Relaxed) > 0
}

/// Refcount a capture in. Returns the buffer index at which this
/// capture's events will start.
pub(crate) fn begin_recording() -> usize {
    if !cfg!(feature = "obs") {
        return 0;
    }
    // Hold the buffer lock across the refcount bump so the start index
    // is consistent with concurrent appends.
    let buf = buffer().lock().unwrap();
    CAPTURES.fetch_add(1, Ordering::Relaxed);
    buf.len()
}

/// Copy out the events recorded since `start`, then refcount the
/// capture out; the last capture to end clears the buffer.
pub(crate) fn end_recording(start: usize) -> Vec<SpanEvent> {
    if !cfg!(feature = "obs") {
        return Vec::new();
    }
    let mut buf = buffer().lock().unwrap();
    let events = buf.get(start..).unwrap_or(&[]).to_vec();
    if CAPTURES.fetch_sub(1, Ordering::Relaxed) == 1 {
        buf.clear();
    }
    events
}

/// The span currently open at the top of this thread's stack, if any.
pub fn current_span() -> Option<SpanId> {
    STACK.with(|s| s.borrow().last().copied())
}

/// How many spans are open on this thread right now (0 once every
/// guard has dropped — the closure property the span tests assert).
pub fn thread_open_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

struct ActiveSpan {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, String)>,
}

/// RAII guard for one span; records a [`SpanEvent`] on drop when a
/// capture is active, does nothing otherwise.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Whether this guard is actually recording (a capture was active
    /// when it was opened). Fields are only worth computing when true.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// This span's id, if recording.
    pub fn id(&self) -> Option<SpanId> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Attach a string field. No-op on an inert guard.
    pub fn field_str(&mut self, key: &'static str, value: String) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((key, value));
        }
    }

    /// Attach an integer field. No-op on an inert guard.
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last(), Some(&a.id), "span guards dropped out of order");
            s.pop();
        });
        let event = SpanEvent {
            id: a.id,
            parent: a.parent,
            name: a.name,
            thread: thread_index(),
            start_ns: a.start_ns,
            end_ns: now_ns(),
            fields: a.fields,
        };
        let mut buf = buffer().lock().unwrap();
        // The capture that saw this span open may have ended already
        // (guard leaked past the closure); only append while someone is
        // still recording, so the cleared buffer stays empty.
        if CAPTURES.load(Ordering::Relaxed) > 0 {
            buf.push(event);
        }
    }
}

fn open(name: &'static str, parent: Option<SpanId>) -> SpanGuard {
    if !recording_active() {
        return SpanGuard { active: None };
    }
    let id = next_id();
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            start_ns: now_ns(),
            fields: Vec::new(),
        }),
    }
}

/// Open a span parented to the span currently open on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    let parent = if recording_active() {
        current_span()
    } else {
        None
    };
    open(name, parent)
}

/// Open a span with an explicit parent — the cross-thread form.
///
/// `core::parallel` captures [`current_span`] *before* spawning scoped
/// workers and hands it to each worker, so per-chunk spans stay linked
/// to the operator that fanned out even though the workers' own
/// thread-local stacks start empty.
pub fn span_with_parent(name: &'static str, parent: Option<SpanId>) -> SpanGuard {
    open(name, parent)
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_outside_capture() {
        let g = span("test.span.inert");
        assert!(!g.is_active());
        assert_eq!(g.id(), None);
        assert_eq!(thread_open_depth(), 0);
    }

    #[test]
    fn parenting_follows_the_thread_stack() {
        let start = begin_recording();
        let root_id;
        {
            let root = span("test.span.root");
            root_id = root.id().unwrap();
            assert_eq!(current_span(), Some(root_id));
            {
                let child = span("test.span.child");
                assert_eq!(thread_open_depth(), 2);
                assert_eq!(current_span(), child.id());
            }
            assert_eq!(thread_open_depth(), 1);
        }
        assert_eq!(thread_open_depth(), 0);
        let events = end_recording(start);
        let child = events
            .iter()
            .find(|e| e.name == "test.span.child")
            .expect("child recorded");
        assert_eq!(child.parent, Some(root_id));
        let root = events
            .iter()
            .find(|e| e.id == root_id)
            .expect("root recorded");
        assert!(root.start_ns <= child.start_ns);
        assert!(root.end_ns >= child.end_ns);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let start = begin_recording();
        let root_id;
        {
            let root = span("test.span.xroot");
            root_id = root.id();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span_with_parent("test.span.worker", root_id);
                    assert_eq!(thread_open_depth(), 1);
                });
            });
        }
        let events = end_recording(start);
        let worker = events
            .iter()
            .find(|e| e.name == "test.span.worker")
            .expect("worker recorded");
        assert_eq!(worker.parent, root_id);
        let root = events.iter().find(|e| Some(e.id) == root_id).unwrap();
        assert_ne!(worker.thread, root.thread);
    }
}
