//! Chrome `chrome://tracing` JSON export.
//!
//! Each trace node becomes one complete ("X") event with microsecond
//! timestamps; span fields ride along under `args`. The output is a
//! single JSON object `{"traceEvents":[...]}` that loads directly in
//! `chrome://tracing` or Perfetto.

use crate::json::escape;
use crate::trace::{QueryTrace, TraceNode};
use std::fmt::Write as _;

fn write_event(n: &TraceNode, out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let ts_us = n.start_ns as f64 / 1_000.0;
    let dur_us = n.wall_ns() as f64 / 1_000.0;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\
         \"pid\":1,\"tid\":{},\"args\":{{",
        escape(n.name),
        n.thread,
    );
    for (i, (k, v)) in n.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
    }
    out.push_str("}}");
    for c in &n.children {
        write_event(c, out, first);
    }
}

/// Render a [`QueryTrace`] as chrome-trace JSON.
pub fn render(trace: &QueryTrace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    if let Some(root) = &trace.root {
        write_event(root, &mut out, &mut first);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render several traces into one chrome-trace file (events from every
/// trace share the timeline; the per-trace root names tell them apart).
pub fn render_many(traces: &[&QueryTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for t in traces {
        if let Some(root) = &t.root {
            write_event(root, &mut out, &mut first);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use crate::trace::capture;

    #[test]
    fn renders_one_event_per_span() {
        let ((), trace) = capture("test.chrome.root", || {
            let _a = crate::span!("test.chrome.child", rows = 4);
        });
        let json = render(&trace);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"), "{json}");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2, "{json}");
        assert!(json.contains("\"name\":\"test.chrome.child\""), "{json}");
        assert!(json.contains("\"rows\":\"4\""), "{json}");
    }

    #[test]
    fn empty_trace_renders_empty_event_list() {
        let json = render(&QueryTrace::empty());
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
