//! The process-global slow-query log: a bounded buffer holding the N
//! slowest requests seen so far, each with its rendered
//! [`QueryTrace`](crate::trace::QueryTrace) tree.
//!
//! The serving layer decides *what* counts as slow (its
//! `--slowlog-ms` threshold) and only then calls [`record`], so the
//! mutex here is taken once per slow request plus once per `SLOWLOG`
//! read — never on the fast path. With the `obs` feature off the whole
//! module is inert: [`record`] drops the entry and [`entries`] is
//! always empty.
//!
//! Admission keeps the *slowest* requests, not the most recent: while
//! the buffer is below capacity every entry is admitted; at capacity a
//! new entry evicts the current fastest resident only if it is slower.
//! [`clear`] is wired into the bench fixtures' shared-cache reset so
//! back-to-back runs cannot leak each other's outliers.

use std::sync::{Mutex, OnceLock};

/// Default bound on resident entries ([`set_capacity`] overrides).
pub const DEFAULT_CAPACITY: usize = 32;

/// Longest script preview stored per entry; the rest is elided.
pub const PREVIEW_LIMIT: usize = 160;

/// One slow request, as captured by the serving layer.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// The wire verb that carried the request (`QUERY`, `TRACE`, …).
    pub verb: String,
    /// The request script, truncated to [`PREVIEW_LIMIT`] characters.
    pub preview: String,
    /// Wall time of the whole request, nanoseconds.
    pub wall_ns: u64,
    /// Engine epoch when the request completed.
    pub epoch: u64,
    /// Admission order (process-global, monotone): ties in `wall_ns`
    /// sort by earliest admission.
    pub seq: u64,
    /// The rendered `QueryTrace` tree of the request.
    pub trace: String,
}

struct SlowLog {
    capacity: usize,
    next_seq: u64,
    entries: Vec<SlowEntry>,
}

fn log() -> &'static Mutex<SlowLog> {
    static LOG: OnceLock<Mutex<SlowLog>> = OnceLock::new();
    LOG.get_or_init(|| {
        Mutex::new(SlowLog {
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            entries: Vec::new(),
        })
    })
}

/// Bound the buffer to `n` entries (at least 1). Shrinking evicts the
/// fastest residents first.
pub fn set_capacity(n: usize) {
    let mut l = log().lock().unwrap();
    l.capacity = n.max(1);
    while l.entries.len() > l.capacity {
        let fastest = fastest_index(&l.entries);
        l.entries.swap_remove(fastest);
    }
}

fn fastest_index(entries: &[SlowEntry]) -> usize {
    entries
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| (e.wall_ns, u64::MAX - e.seq))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Offer one request to the log. Returns `true` if it was admitted
/// (the buffer had room, or the request is slower than the current
/// fastest resident). A no-op returning `false` with the `obs` feature
/// off.
pub fn record(verb: &str, script: &str, wall_ns: u64, epoch: u64, trace: String) -> bool {
    if !cfg!(feature = "obs") {
        return false;
    }
    let preview: String = {
        let mut p: String = script.trim().chars().take(PREVIEW_LIMIT).collect();
        if script.trim().chars().count() > PREVIEW_LIMIT {
            p.push('…');
        }
        p
    };
    let mut l = log().lock().unwrap();
    let seq = l.next_seq;
    l.next_seq += 1;
    let entry = SlowEntry {
        verb: verb.to_string(),
        preview,
        wall_ns,
        epoch,
        seq,
        trace,
    };
    if l.entries.len() < l.capacity {
        l.entries.push(entry);
        return true;
    }
    let fastest = fastest_index(&l.entries);
    if l.entries[fastest].wall_ns < wall_ns {
        l.entries[fastest] = entry;
        return true;
    }
    false
}

/// Snapshot of the resident entries, slowest first (ties by earliest
/// admission). Empty with the `obs` feature off.
pub fn entries() -> Vec<SlowEntry> {
    let l = log().lock().unwrap();
    let mut out = l.entries.clone();
    out.sort_by_key(|e| (u64::MAX - e.wall_ns, e.seq));
    out
}

/// Number of resident entries.
pub fn len() -> usize {
    log().lock().unwrap().entries.len()
}

/// Drop every resident entry (capacity is kept). Part of the bench
/// fixtures' shared-cache reset.
pub fn clear() {
    log().lock().unwrap().entries.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, MutexGuard};

    /// The log is process-global; tests here serialize so one test's
    /// clear cannot race another's admission checks.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: TestMutex<()> = TestMutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[cfg(feature = "obs")]
    #[test]
    fn keeps_the_slowest_entries_at_capacity() {
        let _guard = exclusive();
        clear();
        set_capacity(3);
        for (i, wall) in [10u64, 50, 30, 5, 70, 40].into_iter().enumerate() {
            record("QUERY", &format!("q{i}"), wall, i as u64, String::new());
        }
        let got = entries();
        assert_eq!(got.len(), 3);
        let walls: Vec<u64> = got.iter().map(|e| e.wall_ns).collect();
        assert_eq!(walls, vec![70, 50, 40], "slowest three, slowest first");
        clear();
        assert_eq!(len(), 0);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn previews_truncate_and_traces_ride_along() {
        let _guard = exclusive();
        clear();
        set_capacity(DEFAULT_CAPACITY);
        let long = "x".repeat(PREVIEW_LIMIT + 40);
        assert!(record("TRACE", &long, 9, 2, "server.query\n".into()));
        let got = entries();
        let e = got.iter().find(|e| e.verb == "TRACE").expect("admitted");
        assert!(e.preview.chars().count() <= PREVIEW_LIMIT + 1, "truncated");
        assert!(e.preview.ends_with('…'));
        assert_eq!(e.trace, "server.query\n");
        assert_eq!(e.epoch, 2);
        clear();
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn inert_without_the_feature() {
        let _guard = exclusive();
        assert!(!record("QUERY", "SHOW R;", 1_000_000, 1, String::new()));
        assert_eq!(len(), 0);
        assert!(entries().is_empty());
    }
}
