//! Stratification: layering rules so negation only looks down.
//!
//! A program is *stratifiable* when no predicate depends on itself
//! through a negation. Strata are computed with the standard iterative
//! algorithm: `stratum(head) ≥ stratum(body-pred)` for positive
//! dependencies, strictly greater for negated ones; failure to converge
//! within `|preds|` rounds means recursion through negation.

use std::collections::BTreeMap;

use crate::ast::Program;
use crate::error::{DatalogError, Result};

/// Rule indexes grouped by stratum, in evaluation order.
pub type Strata = Vec<Vec<usize>>;

/// Stratify `program` or report the offending predicate.
pub fn stratify(program: &Program) -> Result<Strata> {
    let idb = program.idb_predicates();
    let mut stratum: BTreeMap<&str, usize> = idb.iter().map(|&p| (p, 0)).collect();

    let bound = idb.len().max(1);
    for _round in 0..=bound {
        let mut changed = false;
        for rule in &program.rules {
            let head = rule.head.predicate.as_str();
            let mut need = stratum[head];
            for lit in &rule.body {
                let p = lit.atom.predicate.as_str();
                if let Some(&s) = stratum.get(p) {
                    let min = if lit.positive { s } else { s + 1 };
                    need = need.max(min);
                }
            }
            if need > stratum[head] {
                if need > bound {
                    return Err(DatalogError::NotStratifiable(head.to_string()));
                }
                stratum.insert(head, need);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // A stratum above |preds| can only come from a negative cycle.
    if let Some((&p, _)) = stratum.iter().find(|&(_, &s)| s > bound) {
        return Err(DatalogError::NotStratifiable(p.to_string()));
    }

    let max = stratum.values().copied().max().unwrap_or(0);
    let mut out: Strata = vec![Vec::new(); max + 1];
    for (i, rule) in program.rules.iter().enumerate() {
        out[stratum[rule.head.predicate.as_str()]].push(i);
    }
    out.retain(|s| !s.is_empty());
    if out.is_empty() && !program.rules.is_empty() {
        out.push((0..program.rules.len()).collect());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Program, Rule};

    fn prog(lines: &[&str]) -> Program {
        Program::new(lines.iter().map(|l| Rule::parse(l).unwrap()).collect())
    }

    #[test]
    fn positive_recursion_is_one_stratum() {
        let p = prog(&[
            "path(X, Y) :- edge(X, Y)",
            "path(X, Z) :- path(X, Y), edge(Y, Z)",
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0], vec![0, 1]);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let p = prog(&[
            "flies(X) :- bird(X)",
            "grounded(X) :- creature(X), !flies(X)",
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], vec![0]);
        assert_eq!(s[1], vec![1]);
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let p = prog(&["win(X) :- move(X, Y), !win(Y)"]);
        assert!(matches!(
            stratify(&p),
            Err(DatalogError::NotStratifiable(p)) if p == "win"
        ));
    }

    #[test]
    fn mutual_recursion_through_negation_rejected() {
        let p = prog(&["p(X) :- e(X), !q(X)", "q(X) :- e(X), !p(X)"]);
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn edb_only_negation_is_fine() {
        let p = prog(&["p(X) :- e(X), !f(X)"]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn chain_of_negations_builds_strata() {
        let p = prog(&["a(X) :- e(X)", "b(X) :- e(X), !a(X)", "c(X) :- e(X), !b(X)"]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert!(stratify(&p).unwrap().is_empty());
    }
}
