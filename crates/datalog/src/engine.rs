//! The semi-naive bottom-up evaluator.
//!
//! EDB predicates come from hierarchical relations (their flat models,
//! tagged per domain so ids from different hierarchies never unify) and
//! from the built-in taxonomy predicate registered by
//! [`Engine::add_isa`]. Evaluation is stratum by stratum; within a
//! stratum, semi-naive iteration: after the first (naive) round, a rule
//! only re-fires with at least one body literal drawn from the previous
//! round's delta.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use hrdm_core::flat::flatten;
use hrdm_core::{Catalog, HRelation};
use hrdm_hierarchy::HierarchyGraph;

use crate::ast::{Atom, Program, Rule, Term, Value};
use crate::error::{DatalogError, Result};
use crate::strata::stratify;

/// A ground fact.
pub type Fact = Vec<Value>;
/// A set of ground facts for one predicate.
pub type Relation = BTreeSet<Fact>;

/// The Datalog engine: registered domains, EDB facts, and the evaluator.
#[derive(Default)]
pub struct Engine {
    domains: Vec<Arc<HierarchyGraph>>,
    edb: BTreeMap<String, Relation>,
}

impl Engine {
    /// An empty engine.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Intern a domain graph, returning its tag.
    fn domain_tag(&mut self, g: &Arc<HierarchyGraph>) -> u32 {
        if let Some(i) = self.domains.iter().position(|d| Arc::ptr_eq(d, g)) {
            return i as u32;
        }
        self.domains.push(g.clone());
        (self.domains.len() - 1) as u32
    }

    /// The graph behind a tag (for rendering results).
    pub fn domain(&self, tag: u32) -> &Arc<HierarchyGraph> {
        &self.domains[tag as usize]
    }

    /// Register a hierarchical relation's *flat model* as EDB facts for
    /// `name`. The condensed relation stays where it is; this flattens
    /// on registration.
    pub fn add_relation(&mut self, name: impl Into<String>, relation: &HRelation) {
        let tags: Vec<u32> = relation
            .schema()
            .attributes()
            .iter()
            .map(|a| self.domain_tag(a.domain()))
            .collect();
        let facts: Relation = flatten(relation)
            .iter()
            .map(|item| {
                item.components()
                    .iter()
                    .zip(&tags)
                    .map(|(&node, &domain)| Value { domain, node })
                    .collect()
            })
            .collect();
        self.edb.insert(name.into(), facts);
    }

    /// Register every relation of a catalog under its catalog name.
    pub fn add_catalog(&mut self, catalog: &Catalog) {
        let names: Vec<String> = catalog.relation_names().map(String::from).collect();
        for name in names {
            let rel = catalog.relation(&name).expect("name from the catalog");
            self.add_relation(name, rel);
        }
    }

    /// Register the taxonomy of `graph` as the binary predicate `name`:
    /// facts `name(member, container)` for every transitive
    /// member/subset pair (instances *and* classes, per the paper's
    /// reading of `∈`/`⊆` as one relation).
    pub fn add_isa(&mut self, name: impl Into<String>, graph: &Arc<HierarchyGraph>) {
        let tag = self.domain_tag(graph);
        let mut facts = Relation::new();
        for a in graph.node_ids() {
            for b in graph.node_ids() {
                if a != b && graph.is_descendant(a, b) {
                    facts.insert(vec![
                        Value {
                            domain: tag,
                            node: a,
                        },
                        Value {
                            domain: tag,
                            node: b,
                        },
                    ]);
                }
            }
        }
        self.edb.insert(name.into(), facts);
    }

    /// Add one ground EDB fact by node names, resolving each name in the
    /// registered domains.
    pub fn add_fact(&mut self, predicate: impl Into<String>, names: &[&str]) -> Result<()> {
        let values = names
            .iter()
            .map(|n| self.resolve_symbol(n))
            .collect::<Result<Fact>>()?;
        self.edb.entry(predicate.into()).or_default().insert(values);
        Ok(())
    }

    /// Remove one ground EDB fact by node names; returns whether it was
    /// present.
    pub fn remove_fact(&mut self, predicate: &str, names: &[&str]) -> Result<bool> {
        let values = names
            .iter()
            .map(|n| self.resolve_symbol(n))
            .collect::<Result<Fact>>()?;
        Ok(self
            .edb
            .get_mut(predicate)
            .is_some_and(|rel| rel.remove(&values)))
    }

    /// Resolve a symbolic constant to a unique node across all
    /// registered domains.
    fn resolve_symbol(&self, symbol: &str) -> Result<Value> {
        resolve_in(&self.domains, symbol)
    }

    /// Resolve every `Term::Sym` in the program to constants.
    pub(crate) fn resolve_program(&self, program: &Program) -> Result<Program> {
        let mut rules = Vec::with_capacity(program.rules.len());
        for rule in &program.rules {
            let fix_atom = |atom: &Atom| -> Result<Atom> {
                let terms = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Sym(s) => Ok(Term::Const(self.resolve_symbol(s)?)),
                        other => Ok(other.clone()),
                    })
                    .collect::<Result<Vec<Term>>>()?;
                Ok(Atom::new(atom.predicate.clone(), terms))
            };
            let head = fix_atom(&rule.head)?;
            let body = rule
                .body
                .iter()
                .map(|l| {
                    Ok(crate::ast::Literal {
                        atom: fix_atom(&l.atom)?,
                        positive: l.positive,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            rules.push(Rule { head, body });
        }
        Ok(Program::new(rules))
    }

    /// Register a domain graph so symbolic constants and
    /// [`Engine::add_fact`] can resolve names against it, even before
    /// any relation over it is added.
    pub fn register_domain(&mut self, graph: &Arc<HierarchyGraph>) -> u32 {
        self.domain_tag(graph)
    }

    /// Validate arities and unknown predicates across program + EDB.
    pub(crate) fn check_program(&self, program: &Program) -> Result<()> {
        let mut arity: HashMap<String, usize> = HashMap::new();
        for (name, rel) in &self.edb {
            if let Some(f) = rel.iter().next() {
                arity.insert(name.clone(), f.len());
            }
        }
        let idb = program.idb_predicates();
        let mut check = |atom: &Atom| -> Result<()> {
            match arity.get(atom.predicate.as_str()) {
                Some(&a) if a != atom.terms.len() => Err(DatalogError::ArityMismatch {
                    predicate: atom.predicate.clone(),
                    expected: a,
                    got: atom.terms.len(),
                }),
                Some(_) => Ok(()),
                None => {
                    arity.insert(atom.predicate.clone(), atom.terms.len());
                    Ok(())
                }
            }
        };
        for rule in &program.rules {
            check(&rule.head)?;
            for lit in &rule.body {
                check(&lit.atom)?;
                let p = lit.atom.predicate.as_str();
                if !idb.contains(p) && !self.edb.contains_key(p) {
                    return Err(DatalogError::UnknownPredicate(p.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Evaluate `program` to a fixpoint; returns every IDB relation.
    pub fn run(&self, program: &Program) -> Result<BTreeMap<String, Relation>> {
        let program = self.resolve_program(program)?;
        self.check_program(&program)?;
        let strata = stratify(&program)?;
        fixpoint(&program, &strata, &self.edb)
    }

    /// The EDB as registered so far (for materialization snapshots).
    pub(crate) fn edb(&self) -> &BTreeMap<String, Relation> {
        &self.edb
    }

    /// The registered domain graphs, in tag order.
    pub(crate) fn domain_list(&self) -> &[Arc<HierarchyGraph>] {
        &self.domains
    }

    /// Evaluate and render one predicate's facts as name tuples.
    pub fn run_pretty(&self, program: &Program, predicate: &str) -> Result<Vec<Vec<String>>> {
        let out = self.run(program)?;
        let rel = out
            .get(predicate)
            .ok_or_else(|| DatalogError::UnknownPredicate(predicate.to_string()))?;
        Ok(rel
            .iter()
            .map(|fact| {
                fact.iter()
                    .map(|v| self.domain(v.domain).name(v.node).to_string())
                    .collect()
            })
            .collect())
    }
}

/// Resolve a symbolic constant to a unique node across `domains`.
pub(crate) fn resolve_in(domains: &[Arc<HierarchyGraph>], symbol: &str) -> Result<Value> {
    let mut hits = Vec::new();
    for (tag, g) in domains.iter().enumerate() {
        if let Ok(node) = g.node(symbol) {
            hits.push(Value {
                domain: tag as u32,
                node,
            });
        }
    }
    match hits.len() {
        1 => Ok(hits[0]),
        n => Err(DatalogError::UnresolvedConstant {
            symbol: symbol.to_string(),
            matches: n,
        }),
    }
}

/// Full stratified semi-naive evaluation of an already-resolved,
/// checked program over `edb`. Shared by [`Engine::run`] and the
/// initial materialization of a [`crate::incremental::LiveProgram`].
pub(crate) fn fixpoint(
    program: &Program,
    strata: &crate::strata::Strata,
    edb: &BTreeMap<String, Relation>,
) -> Result<BTreeMap<String, Relation>> {
    // Working database: EDB plus accumulating IDB.
    let mut db: BTreeMap<&str, Relation> =
        edb.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    for p in program.idb_predicates() {
        db.entry(p).or_default();
    }

    for stratum in strata {
        let rules: Vec<&Rule> = stratum.iter().map(|&i| &program.rules[i]).collect();
        let stratum_preds: BTreeSet<&str> =
            rules.iter().map(|r| r.head.predicate.as_str()).collect();

        // Naive first round.
        let mut delta: BTreeMap<&str, Relation> = BTreeMap::new();
        for rule in &rules {
            for fact in eval_rule(rule, &db, None, &stratum_preds)? {
                let head = rule.head.predicate.as_str();
                if !db[head].contains(&fact) {
                    delta.entry(head).or_default().insert(fact);
                }
            }
        }
        merge(&mut db, &delta);

        // Semi-naive rounds.
        while delta.values().any(|d| !d.is_empty()) {
            let mut next: BTreeMap<&str, Relation> = BTreeMap::new();
            for rule in &rules {
                for (pos, lit) in rule.body.iter().enumerate() {
                    if !lit.positive {
                        continue;
                    }
                    let p = lit.atom.predicate.as_str();
                    let Some(d) = delta.get(p) else { continue };
                    if d.is_empty() {
                        continue;
                    }
                    for fact in eval_rule(rule, &db, Some((pos, d)), &stratum_preds)? {
                        let head = rule.head.predicate.as_str();
                        if !db[head].contains(&fact)
                            && !next.get(head).is_some_and(|n| n.contains(&fact))
                        {
                            next.entry(head).or_default().insert(fact);
                        }
                    }
                }
            }
            merge(&mut db, &next);
            delta = next;
        }
    }

    Ok(program
        .idb_predicates()
        .into_iter()
        .map(|p| (p.to_string(), db[p].clone()))
        .collect())
}

fn merge<'a>(db: &mut BTreeMap<&'a str, Relation>, delta: &BTreeMap<&'a str, Relation>) {
    for (p, facts) in delta {
        db.entry(p).or_default().extend(facts.iter().cloned());
    }
}

pub(crate) type Subst = BTreeMap<String, Value>;

pub(crate) fn unify(atom: &Atom, fact: &[Value], subst: &Subst) -> Option<Subst> {
    if atom.terms.len() != fact.len() {
        return None;
    }
    let mut s = subst.clone();
    for (t, &v) in atom.terms.iter().zip(fact) {
        match t {
            Term::Const(c) => {
                if *c != v {
                    return None;
                }
            }
            Term::Var(name) => match s.get(name) {
                Some(&bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    s.insert(name.clone(), v);
                }
            },
            Term::Sym(_) => unreachable!("symbols resolved before evaluation"),
        }
    }
    Some(s)
}

pub(crate) fn instantiate(atom: &Atom, subst: &Subst) -> Fact {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(v) => subst[v],
            Term::Sym(_) => unreachable!("symbols resolved before evaluation"),
        })
        .collect()
}

/// Evaluate one rule against the database. With `delta_at = Some((i,
/// d))`, body literal `i` ranges over `d` instead of the full relation
/// (semi-naive focus).
fn eval_rule(
    rule: &Rule,
    db: &BTreeMap<&str, Relation>,
    delta_at: Option<(usize, &Relation)>,
    _stratum_preds: &BTreeSet<&str>,
) -> Result<Vec<Fact>> {
    let empty = Relation::new();
    let mut substs: Vec<Subst> = vec![Subst::new()];
    for (i, lit) in rule.body.iter().enumerate() {
        let rel: &Relation = match delta_at {
            Some((pos, d)) if pos == i => d,
            _ => db.get(lit.atom.predicate.as_str()).unwrap_or(&empty),
        };
        let mut next = Vec::new();
        if lit.positive {
            for s in &substs {
                for fact in rel {
                    if let Some(s2) = unify(&lit.atom, fact, s) {
                        next.push(s2);
                    }
                }
            }
        } else {
            // Safety guarantees groundness here.
            for s in substs {
                let ground = instantiate(&lit.atom, &s);
                if !rel.contains(&ground) {
                    next.push(s);
                }
            }
        }
        substs = next;
        if substs.is_empty() {
            break;
        }
    }
    Ok(substs
        .into_iter()
        .map(|s| instantiate(&rule.head, &s))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::prelude::*;

    fn flying_world() -> (Engine, Arc<Schema>) {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_instance("Paul", penguin).unwrap();
        let fish = g.add_class("Fish", g.root()).unwrap();
        g.add_instance("Nemo", fish).unwrap();
        let g = Arc::new(g);
        let schema = Arc::new(Schema::single("Creature", g.clone()));

        let mut flies = HRelation::new(schema.clone());
        flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
        flies.assert_fact(&["Penguin"], Truth::Negative).unwrap();

        let mut creature = HRelation::new(schema.clone());
        creature.assert_fact(&["Animal"], Truth::Positive).unwrap();

        let mut engine = Engine::new();
        engine.add_relation("flies", &flies);
        engine.add_relation("creature", &creature);
        engine.add_isa("isa", &g);
        (engine, schema)
    }

    #[test]
    fn single_rule_inference() {
        // The paper's own example: flying things can travel far, so
        // Tweety can travel far.
        let (engine, _) = flying_world();
        let p = Program::parse("travels_far(X) :- flies(X).").unwrap();
        let rows = engine.run_pretty(&p, "travels_far").unwrap();
        assert_eq!(rows, vec![vec!["Tweety".to_string()]]);
    }

    #[test]
    fn negation_with_cwa() {
        let (engine, _) = flying_world();
        let p = Program::parse("grounded(X) :- creature(X), !flies(X).").unwrap();
        let mut rows = engine.run_pretty(&p, "grounded").unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![vec!["Nemo".to_string()], vec!["Paul".to_string()]]
        );
    }

    #[test]
    fn constants_resolve_against_domains() {
        let (engine, _) = flying_world();
        let p = Program::parse(r#"is_bird(X) :- isa(X, "Bird")."#).unwrap();
        let mut rows = engine.run_pretty(&p, "is_bird").unwrap();
        rows.sort();
        // Members and subclasses of Bird: Canary, Tweety, Penguin, Paul.
        assert_eq!(rows.len(), 4);
        assert!(rows.contains(&vec!["Tweety".to_string()]));
        assert!(rows.contains(&vec!["Penguin".to_string()]));
    }

    #[test]
    fn recursive_transitive_closure() {
        let mut g = HierarchyGraph::new("Node");
        for n in ["a", "b", "c", "d"] {
            g.add_instance(n, g.root()).unwrap();
        }
        let g = Arc::new(g);
        let mut engine = Engine::new();
        engine.register_domain(&g);
        engine.add_fact("edge", &["a", "b"]).unwrap();
        engine.add_fact("edge", &["b", "c"]).unwrap();
        engine.add_fact("edge", &["c", "d"]).unwrap();
        let p = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let rows = engine.run_pretty(&p, "path").unwrap();
        assert_eq!(rows.len(), 6); // ab ac ad bc bd cd
    }

    #[test]
    fn unknown_predicate_rejected() {
        let (engine, _) = flying_world();
        let p = Program::parse("p(X) :- nonexistent(X).").unwrap();
        assert!(matches!(
            engine.run(&p),
            Err(DatalogError::UnknownPredicate(n)) if n == "nonexistent"
        ));
    }

    #[test]
    fn ambiguous_constant_rejected() {
        let mut g1 = HierarchyGraph::new("D1");
        g1.add_instance("dup", g1.root()).unwrap();
        let mut g2 = HierarchyGraph::new("D2");
        g2.add_instance("dup", g2.root()).unwrap();
        let mut engine = Engine::new();
        engine.register_domain(&Arc::new(g1));
        engine.register_domain(&Arc::new(g2));
        assert!(matches!(
            engine.add_fact("p", &["dup"]),
            Err(DatalogError::UnresolvedConstant { matches: 2, .. })
        ));
        assert!(matches!(
            engine.add_fact("p", &["missing"]),
            Err(DatalogError::UnresolvedConstant { matches: 0, .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (engine, _) = flying_world();
        let p = Program::parse("p(X) :- flies(X, X).").unwrap();
        assert!(matches!(
            engine.run(&p),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn domains_do_not_unify_across_tags() {
        // Two different domains with numerically identical node ids must
        // not join.
        let mut g1 = HierarchyGraph::new("D1");
        g1.add_instance("x1", g1.root()).unwrap();
        let mut g2 = HierarchyGraph::new("D2");
        g2.add_instance("x2", g2.root()).unwrap();
        let (g1, g2) = (Arc::new(g1), Arc::new(g2));
        let s1 = Arc::new(Schema::single("A", g1));
        let s2 = Arc::new(Schema::single("B", g2));
        let mut r1 = HRelation::new(s1);
        r1.assert_fact(&["x1"], Truth::Positive).unwrap();
        let mut r2 = HRelation::new(s2);
        r2.assert_fact(&["x2"], Truth::Positive).unwrap();
        let mut engine = Engine::new();
        engine.add_relation("p", &r1);
        engine.add_relation("q", &r2);
        let prog = Program::parse("same(X) :- p(X), q(X).").unwrap();
        let out = engine.run(&prog).unwrap();
        assert!(
            out["same"].is_empty(),
            "x1 and x2 share NodeId but differ in domain"
        );
    }

    #[test]
    fn catalog_registration() {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        let mut cat = Catalog::new();
        let dom = cat.add_domain("Animal", g);
        let schema = Arc::new(Schema::single("Creature", dom));
        let mut flies = HRelation::new(schema);
        flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
        cat.add_relation("flies", flies);
        let mut engine = Engine::new();
        engine.add_catalog(&cat);
        let p = Program::parse("f(X) :- flies(X).").unwrap();
        assert_eq!(engine.run(&p).unwrap()["f"].len(), 1);
    }

    #[test]
    fn semi_naive_matches_naive_on_deep_chain() {
        // Longer chain exercises multiple delta rounds.
        let mut g = HierarchyGraph::new("Node");
        let names: Vec<String> = (0..30).map(|i| format!("n{i}")).collect();
        for n in &names {
            g.add_instance(n.as_str(), g.root()).unwrap();
        }
        let mut engine = Engine::new();
        engine.register_domain(&Arc::new(g));
        for w in names.windows(2) {
            engine
                .add_fact("edge", &[w[0].as_str(), w[1].as_str()])
                .unwrap();
        }
        let p = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let rows = engine.run(&p).unwrap();
        assert_eq!(rows["path"].len(), 30 * 29 / 2);
    }
}
