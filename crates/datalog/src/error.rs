//! Error type for the Datalog layer.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T, E = DatalogError> = std::result::Result<T, E>;

/// Errors raised by parsing, stratification, or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule failed to parse; the payload explains where.
    Parse(String),
    /// A head variable does not occur in any positive body literal
    /// (range restriction), or a negated literal has an unbound
    /// variable.
    Unsafe {
        /// The offending rule, rendered.
        rule: String,
        /// The unbound variable.
        variable: String,
    },
    /// The program has recursion through negation: not stratifiable.
    NotStratifiable(String),
    /// A body predicate has no EDB relation and no rule defining it.
    UnknownPredicate(String),
    /// A symbolic constant did not resolve to a node in any registered
    /// domain, or resolved in several.
    UnresolvedConstant {
        /// The symbol as written.
        symbol: String,
        /// How many domains matched.
        matches: usize,
    },
    /// A fact write targeted a predicate defined by rules: the IDB is
    /// derived, only EDB predicates accept direct fact edits.
    NotExtensional(String),
    /// An atom's arity differs between uses.
    ArityMismatch {
        /// The predicate involved.
        predicate: String,
        /// Arities observed.
        expected: usize,
        /// Conflicting arity.
        got: usize,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse(msg) => write!(f, "parse error: {msg}"),
            DatalogError::Unsafe { rule, variable } => {
                write!(f, "unsafe rule {rule:?}: variable {variable} is unbound")
            }
            DatalogError::NotStratifiable(p) => {
                write!(f, "recursion through negation involving predicate {p:?}")
            }
            DatalogError::UnknownPredicate(p) => {
                write!(f, "predicate {p:?} has no facts and no rules")
            }
            DatalogError::UnresolvedConstant { symbol, matches } => write!(
                f,
                "constant {symbol:?} resolved in {matches} domains (need exactly 1)"
            ),
            DatalogError::NotExtensional(p) => {
                write!(
                    f,
                    "predicate {p:?} is derived by rules; edit its EDB inputs instead"
                )
            }
            DatalogError::ArityMismatch {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "predicate {predicate:?} used with arity {got}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DatalogError::Parse("x".into()).to_string().contains("x"));
        assert!(DatalogError::NotStratifiable("p".into())
            .to_string()
            .contains("\"p\""));
        assert!(DatalogError::UnresolvedConstant {
            symbol: "bird".into(),
            matches: 2
        }
        .to_string()
        .contains("2 domains"));
    }
}
