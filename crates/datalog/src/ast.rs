//! Terms, atoms, literals, rules, and programs.
//!
//! The concrete syntax is classic Datalog:
//!
//! ```text
//! travels_far(X) :- flies(X).
//! grounded(X)    :- creature(X), !flies(X).
//! respects_some(S) :- respects(S, T).
//! white_royal(X) :- isa(X, "Royal Elephant"), color(X, white).
//! ```
//!
//! Identifiers starting with an uppercase letter (or `_`) are variables;
//! lowercase identifiers and `"quoted strings"` are *symbolic constants*,
//! resolved against the engine's registered domain hierarchies by node
//! name at evaluation time. Negation is `!` (or `not `).

use std::collections::BTreeSet;
use std::fmt;

use hrdm_hierarchy::NodeId;

use crate::error::{DatalogError, Result};

/// A fully resolved constant: a node of one registered domain.
///
/// The `domain` tag keeps node ids from different hierarchy graphs from
/// unifying by numeric accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value {
    /// Engine-assigned domain tag.
    pub domain: u32,
    /// Node within that domain's hierarchy graph.
    pub node: NodeId,
}

/// A term of an atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (uppercase identifier).
    Var(String),
    /// A symbolic constant awaiting resolution by the engine.
    Sym(String),
    /// A resolved constant.
    Const(Value),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// A predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(predicate: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Variables occurring in the atom.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }
}

/// A possibly negated atom in a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// `true` for a plain literal, `false` under negation.
    pub positive: bool,
}

/// A Horn rule with (stratified) negation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule and check safety: every head variable and every
    /// variable of a negated literal must occur in some positive body
    /// literal.
    pub fn new(head: Atom, body: Vec<Literal>) -> Result<Rule> {
        let rule = Rule { head, body };
        rule.check_safety()?;
        Ok(rule)
    }

    fn check_safety(&self) -> Result<()> {
        let bound: BTreeSet<&str> = self
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.atom.variables())
            .collect();
        for v in self.head.variables() {
            if !bound.contains(v) {
                return Err(DatalogError::Unsafe {
                    rule: self.to_string(),
                    variable: v.to_string(),
                });
            }
        }
        for l in &self.body {
            if !l.positive {
                for v in l.atom.variables() {
                    if !bound.contains(v) {
                        return Err(DatalogError::Unsafe {
                            rule: self.to_string(),
                            variable: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Parse one rule from text (see the module docs for the grammar).
    /// A trailing `.` is optional. Facts (`p(a).`) are rules with empty
    /// bodies.
    pub fn parse(text: &str) -> Result<Rule> {
        let text = text.trim().trim_end_matches('.').trim();
        let (head_s, body_s) = match text.split_once(":-") {
            Some((h, b)) => (h.trim(), Some(b.trim())),
            None => (text, None),
        };
        let head = parse_atom(head_s)?;
        let mut body = Vec::new();
        if let Some(body_s) = body_s {
            for lit in split_top_level(body_s)? {
                let lit = lit.trim();
                let (positive, atom_s) = if let Some(rest) = lit.strip_prefix('!') {
                    (false, rest.trim())
                } else if let Some(rest) = lit.strip_prefix("not ") {
                    (false, rest.trim())
                } else {
                    (true, lit)
                };
                body.push(Literal {
                    atom: parse_atom(atom_s)?,
                    positive,
                });
            }
        }
        Rule::new(head, body)
    }
}

/// Split a body on commas that are not inside parentheses or quotes.
fn split_top_level(s: &str) -> Result<Vec<&str>> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| DatalogError::Parse(format!("unbalanced ')' in {s:?}")))?;
            }
            ',' if !in_str && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err(DatalogError::Parse(format!(
            "unbalanced delimiters in {s:?}"
        )));
    }
    out.push(&s[start..]);
    Ok(out)
}

fn parse_atom(s: &str) -> Result<Atom> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| DatalogError::Parse(format!("expected '(' in atom {s:?}")))?;
    if !s.ends_with(')') {
        return Err(DatalogError::Parse(format!("expected ')' at end of {s:?}")));
    }
    let pred = s[..open].trim();
    if pred.is_empty() || !pred.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(DatalogError::Parse(format!("bad predicate name {pred:?}")));
    }
    let inner = &s[open + 1..s.len() - 1];
    let mut terms = Vec::new();
    if !inner.trim().is_empty() {
        for t in split_top_level(inner)? {
            terms.push(parse_term(t.trim())?);
        }
    }
    Ok(Atom::new(pred, terms))
}

fn parse_term(s: &str) -> Result<Term> {
    if s.is_empty() {
        return Err(DatalogError::Parse("empty term".into()));
    }
    if let Some(stripped) = s.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| DatalogError::Parse(format!("unterminated string {s:?}")))?;
        return Ok(Term::Sym(inner.to_string()));
    }
    let first = s.chars().next().expect("non-empty");
    if !s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(DatalogError::Parse(format!("bad term {s:?}")));
    }
    if first.is_ascii_uppercase() || first == '_' {
        Ok(Term::Var(s.to_string()))
    } else {
        Ok(Term::Sym(s.to_string()))
    }
}

/// A list of rules evaluated together.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build from rules.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Parse a multi-line program; `%` starts a comment, blank lines are
    /// skipped.
    pub fn parse(text: &str) -> Result<Program> {
        let mut rules = Vec::new();
        for line in text.lines() {
            let line = line.split('%').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            rules.push(Rule::parse(line)?);
        }
        Ok(Program::new(rules))
    }

    /// All predicates defined by rule heads (the IDB).
    pub fn idb_predicates(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.as_str())
            .collect()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Sym(s) => write!(f, "{s:?}"),
            Term::Const(c) => write!(f, "<{}:{}>", c.domain, c.node),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if !l.positive {
                    write!(f, "!")?;
                }
                write!(f, "{}", l.atom)?;
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_rule() {
        let r = Rule::parse("travels_far(X) :- flies(X).").unwrap();
        assert_eq!(r.head.predicate, "travels_far");
        assert_eq!(r.body.len(), 1);
        assert!(r.body[0].positive);
        assert_eq!(r.body[0].atom.terms, vec![Term::Var("X".into())]);
    }

    #[test]
    fn parse_negation_both_spellings() {
        for text in [
            "grounded(X) :- creature(X), !flies(X)",
            "grounded(X) :- creature(X), not flies(X)",
        ] {
            let r = Rule::parse(text).unwrap();
            assert!(!r.body[1].positive);
        }
    }

    #[test]
    fn parse_constants_and_strings() {
        let r =
            Rule::parse(r#"white_royal(X) :- isa(X, "Royal Elephant"), color(X, white)"#).unwrap();
        assert_eq!(r.body[0].atom.terms[1], Term::Sym("Royal Elephant".into()));
        assert_eq!(r.body[1].atom.terms[1], Term::Sym("white".into()));
    }

    #[test]
    fn parse_fact() {
        let r = Rule::parse("p(a, b).").unwrap();
        assert!(r.body.is_empty());
        assert_eq!(r.head.terms.len(), 2);
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        assert!(matches!(
            Rule::parse("p(X, Y) :- q(X)"),
            Err(DatalogError::Unsafe { variable, .. }) if variable == "Y"
        ));
    }

    #[test]
    fn unsafe_negated_variable_rejected() {
        assert!(matches!(
            Rule::parse("p(X) :- q(X), !r(Y)"),
            Err(DatalogError::Unsafe { variable, .. }) if variable == "Y"
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(Rule::parse("p(X :- q(X)").is_err());
        assert!(Rule::parse("(X) :- q(X)").is_err());
        assert!(Rule::parse("p(X) :- q(\"unterminated)").is_err());
        assert!(Rule::parse("p() :- q()").is_ok(), "nullary atoms are fine");
        assert!(Rule::parse("p(x y)").is_err());
    }

    #[test]
    fn program_parse_with_comments() {
        let p = Program::parse(
            "% transitive travel\n\
             travels_far(X) :- flies(X).\n\
             \n\
             grounded(X) :- creature(X), !flies(X). % CWA\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        let idb = p.idb_predicates();
        assert!(idb.contains("travels_far"));
        assert!(idb.contains("grounded"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let r = Rule::parse("p(X) :- q(X, y), !r(X)").unwrap();
        let again = Rule::parse(&r.to_string()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn underscore_leading_is_variable() {
        let r = Rule::parse("p(X) :- q(X, _ignored)").unwrap();
        assert_eq!(r.body[0].atom.terms[1], Term::Var("_ignored".into()));
    }
}
