#![warn(missing_docs)]

//! Datalog over hierarchical relations.
//!
//! §2.1 of the paper: by separating taxonomy from association, the model
//! gives up the semantic-net trick of inferring "Tweety can travel far"
//! from "flying things can travel far" — and the paper's answer is that
//! "through the use of logic programming, such as PROLOG or DATALOG, on
//! top of our hierarchical data model, we are able to provide an even
//! more powerful inference mechanism with no loss of succinctness."
//!
//! This crate is that layer: a semi-naive, bottom-up Datalog engine with
//! stratified negation whose EDB predicates are hierarchical relations
//! (added directly or resolved through a [`hrdm_core::Catalog`]) and
//! whose built-in `isa`-style predicates expose each domain's taxonomy
//! as facts.
//!
//! * [`ast`] — terms, atoms, literals, rules, programs, safety checks,
//! * [`strata`] — stratification for negation,
//! * [`engine`] — the semi-naive evaluator,
//! * [`incremental`] — materialized programs maintained under EDB
//!   edits with delete/rederive (DRed).
//!
//! ```
//! use std::sync::Arc;
//! use hrdm_core::prelude::*;
//! use hrdm_datalog::ast::{Program, Rule};
//! use hrdm_datalog::engine::Engine;
//! use hrdm_hierarchy::HierarchyGraph;
//!
//! let mut g = HierarchyGraph::new("Animal");
//! let bird = g.add_class("Bird", g.root()).unwrap();
//! g.add_instance("Tweety", bird).unwrap();
//! let schema = Arc::new(Schema::single("Creature", Arc::new(g)));
//! let mut flies = HRelation::new(schema.clone());
//! flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
//!
//! let mut engine = Engine::new();
//! engine.add_relation("flies", &flies);
//! let program = Program::new(vec![
//!     Rule::parse("travels_far(X) :- flies(X)").unwrap(),
//! ]);
//! let result = engine.run(&program).unwrap();
//! assert_eq!(result["travels_far"].len(), 1); // Tweety
//! ```

pub mod ast;
pub mod engine;
pub mod error;
pub mod incremental;
pub mod strata;

pub use ast::{Atom, Literal, Program, Rule, Term, Value};
pub use engine::Engine;
pub use error::{DatalogError, Result};
pub use incremental::{ChangeSummary, LiveProgram};
