//! Incremental IDB maintenance: a materialized program that stays at
//! fixpoint under single-fact EDB edits.
//!
//! [`Engine::materialize`] evaluates a program once and returns a
//! [`LiveProgram`] holding both databases. [`LiveProgram::add_fact`] and
//! [`LiveProgram::retract_fact`] then maintain every IDB relation with
//! the classical *delete/rederive* (DRed) algorithm, stratum by
//! stratum:
//!
//! 1. **Overdelete** — every derivation that consumed a removed fact
//!    (or, through a negated literal, a newly *added* fact of a lower
//!    stratum) is cancelled; deletions cascade through positive
//!    recursion within the stratum.
//! 2. **Rederive** — overdeleted facts that still have an alternative
//!    derivation in the surviving database are put back.
//! 3. **Insert** — semi-naive rounds seeded with the added facts (and
//!    with removals of negated predicates, which can *enable* rules)
//!    grow the stratum to its new fixpoint.
//!
//! Net per-stratum differences feed the next stratum up, so a single
//! EDB edit touches only the derivations that depend on it; the rest of
//! the IDB is reused as-is. The parity tests drive random edit scripts
//! and require the maintained IDB to equal a fresh [`Engine::run`]
//! after every step.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hrdm_hierarchy::HierarchyGraph;

use crate::ast::{Program, Rule};
use crate::engine::{fixpoint, instantiate, resolve_in, unify, Engine, Fact, Relation, Subst};
use crate::error::{DatalogError, Result};
use crate::strata::{stratify, Strata};

/// Net IDB change produced by one EDB edit: per-predicate additions and
/// removals, including the EDB edit itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSummary {
    /// Facts that appeared, keyed by predicate.
    pub added: BTreeMap<String, Relation>,
    /// Facts that disappeared, keyed by predicate.
    pub removed: BTreeMap<String, Relation>,
}

impl ChangeSummary {
    /// True when the edit changed nothing (e.g. re-adding a present
    /// fact).
    pub fn is_empty(&self) -> bool {
        self.added.values().all(Relation::is_empty) && self.removed.values().all(Relation::is_empty)
    }

    /// Total facts touched, across both directions.
    pub fn row_count(&self) -> usize {
        self.added.values().map(Relation::len).sum::<usize>()
            + self.removed.values().map(Relation::len).sum::<usize>()
    }

    fn record(&mut self, predicate: &str, fact: Fact, added: bool) {
        let side = if added {
            &mut self.added
        } else {
            &mut self.removed
        };
        side.entry(predicate.to_string()).or_default().insert(fact);
    }
}

/// A program kept at fixpoint: the resolved rules, their strata, and
/// both databases, maintained incrementally under EDB edits.
pub struct LiveProgram {
    domains: Vec<Arc<HierarchyGraph>>,
    program: Program,
    strata: Strata,
    idb_preds: BTreeSet<String>,
    edb: BTreeMap<String, Relation>,
    idb: BTreeMap<String, Relation>,
}

impl Engine {
    /// Evaluate `program` once and return a [`LiveProgram`] that keeps
    /// the result maintained under fact-level EDB edits.
    pub fn materialize(&self, program: &Program) -> Result<LiveProgram> {
        let program = self.resolve_program(program)?;
        self.check_program(&program)?;
        let strata = stratify(&program)?;
        let edb = self.edb().clone();
        let idb = fixpoint(&program, &strata, &edb)?;
        let idb_preds = program
            .idb_predicates()
            .into_iter()
            .map(String::from)
            .collect();
        Ok(LiveProgram {
            domains: self.domain_list().to_vec(),
            program,
            strata,
            idb_preds,
            edb,
            idb,
        })
    }
}

impl LiveProgram {
    /// The maintained facts of one predicate (IDB or EDB).
    pub fn relation(&self, predicate: &str) -> Option<&Relation> {
        self.idb.get(predicate).or_else(|| self.edb.get(predicate))
    }

    /// Every maintained IDB relation, as [`Engine::run`] would return.
    pub fn idb(&self) -> &BTreeMap<String, Relation> {
        &self.idb
    }

    /// Add one EDB fact (by node names) and maintain the IDB.
    pub fn add_fact(&mut self, predicate: &str, names: &[&str]) -> Result<ChangeSummary> {
        let fact = self.resolve_fact(names)?;
        self.apply(predicate, fact, true)
    }

    /// Retract one EDB fact (by node names) and maintain the IDB.
    pub fn retract_fact(&mut self, predicate: &str, names: &[&str]) -> Result<ChangeSummary> {
        let fact = self.resolve_fact(names)?;
        self.apply(predicate, fact, false)
    }

    fn resolve_fact(&self, names: &[&str]) -> Result<Fact> {
        names.iter().map(|n| resolve_in(&self.domains, n)).collect()
    }

    fn apply(&mut self, predicate: &str, fact: Fact, added: bool) -> Result<ChangeSummary> {
        if self.idb_preds.contains(predicate) {
            return Err(DatalogError::NotExtensional(predicate.to_string()));
        }
        if let Some(existing) = self.edb.get(predicate).and_then(|r| r.iter().next()) {
            if existing.len() != fact.len() {
                return Err(DatalogError::ArityMismatch {
                    predicate: predicate.to_string(),
                    expected: existing.len(),
                    got: fact.len(),
                });
            }
        }
        let rel = self.edb.entry(predicate.to_string()).or_default();
        let changed = if added {
            rel.insert(fact.clone())
        } else {
            rel.remove(&fact)
        };
        let mut summary = ChangeSummary::default();
        if !changed {
            return Ok(summary);
        }
        summary.record(predicate, fact, added);
        self.maintain(&mut summary)?;
        Ok(summary)
    }

    /// Propagate `summary` (so far: the EDB edit) through every stratum
    /// with delete/rederive, recording net IDB changes as it goes.
    fn maintain(&mut self, summary: &mut ChangeSummary) -> Result<()> {
        // The pre-edit database: EDB with the edit undone, plus the old
        // IDB. Overdeletion runs against this state — it must see the
        // derivations as they existed.
        let mut db_old = self.edb.clone();
        for (p, facts) in &summary.added {
            if let Some(r) = db_old.get_mut(p) {
                for f in facts {
                    r.remove(f);
                }
            }
        }
        for (p, facts) in &summary.removed {
            db_old
                .entry(p.clone())
                .or_default()
                .extend(facts.iter().cloned());
        }
        for (p, r) in &self.idb {
            db_old.insert(p.clone(), r.clone());
        }
        // The post-edit database, rewritten stratum by stratum.
        let mut db_new = self.edb.clone();
        for (p, r) in &self.idb {
            db_new.insert(p.clone(), r.clone());
        }

        let program = self.program.clone();
        for stratum in &self.strata {
            let rules: Vec<&Rule> = stratum.iter().map(|&i| &program.rules[i]).collect();
            let heads: BTreeSet<&str> = rules.iter().map(|r| r.head.predicate.as_str()).collect();
            let mut deleted = overdelete(&rules, &db_old, &mut db_new, summary);
            rederive(&rules, &mut db_new, &mut deleted);
            insert(&rules, &mut db_new, summary);
            // Net stratum difference drives the next stratum up and the
            // caller's view of the edit.
            for head in heads {
                let old = &db_old[head];
                let new = &db_new[head];
                for f in new.difference(old) {
                    summary.record(head, f.clone(), true);
                }
                for f in old.difference(new) {
                    summary.record(head, f.clone(), false);
                }
            }
        }

        for p in &self.idb_preds {
            self.idb.insert(p.clone(), db_new[p.as_str()].clone());
        }
        // Drop empty entries so no-op strata leave the summary clean.
        summary.added.retain(|_, r| !r.is_empty());
        summary.removed.retain(|_, r| !r.is_empty());
        Ok(())
    }
}

/// How one body literal is focused during a maintenance pass.
enum Mode<'a> {
    /// Positive literal at the position ranges over the delta instead
    /// of the full relation.
    PosDelta(usize, &'a Relation),
    /// Negated literal at the position *matches* the delta: the ground
    /// atom must be one of the delta facts. Used for "the negation used
    /// to hold / now holds" pivots; the usual absence check against the
    /// database is replaced by delta membership.
    NegDelta(usize, &'a Relation),
}

/// Evaluate one rule with a focused literal; all other literals read
/// `db` with their normal semantics.
fn eval_focused(rule: &Rule, db: &BTreeMap<String, Relation>, mode: &Mode<'_>) -> Vec<Fact> {
    let empty = Relation::new();
    let mut substs: Vec<Subst> = vec![Subst::new()];
    for (i, lit) in rule.body.iter().enumerate() {
        let focused: Option<&Relation> = match mode {
            Mode::PosDelta(pos, d) | Mode::NegDelta(pos, d) if *pos == i => Some(d),
            _ => None,
        };
        let rel: &Relation = focused
            .or_else(|| db.get(lit.atom.predicate.as_str()))
            .unwrap_or(&empty);
        let mut next = Vec::new();
        if lit.positive || focused.is_some() {
            // A focused negated literal flips to delta *membership*:
            // safety guarantees the atom is ground here.
            if lit.positive {
                for s in &substs {
                    for fact in rel {
                        if let Some(s2) = unify(&lit.atom, fact, s) {
                            next.push(s2);
                        }
                    }
                }
            } else {
                for s in substs {
                    if rel.contains(&instantiate(&lit.atom, &s)) {
                        next.push(s);
                    }
                }
            }
        } else {
            for s in substs {
                if !rel.contains(&instantiate(&lit.atom, &s)) {
                    next.push(s);
                }
            }
        }
        substs = next;
        if substs.is_empty() {
            break;
        }
    }
    substs
        .into_iter()
        .map(|s| instantiate(&rule.head, &s))
        .collect()
}

/// DRed phase 1: cancel every derivation that consumed a removed fact
/// (positive literals over removals; negated literals over additions),
/// cascading through the stratum's own recursion.
fn overdelete(
    rules: &[&Rule],
    db_old: &BTreeMap<String, Relation>,
    db_new: &mut BTreeMap<String, Relation>,
    summary: &ChangeSummary,
) -> BTreeMap<String, Relation> {
    let mut deleted: BTreeMap<String, Relation> = BTreeMap::new();
    let mut frontier_removed = summary.removed.clone();
    let mut first = true;
    loop {
        let mut round: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in rules {
            let head = rule.head.predicate.as_str();
            for (i, lit) in rule.body.iter().enumerate() {
                let p = lit.atom.predicate.as_str();
                let delta = if lit.positive {
                    frontier_removed.get(p)
                } else if first {
                    // A fact *added* to a negated (strictly lower)
                    // predicate kills derivations that relied on its
                    // absence. Lower strata are final by now, so one
                    // seed round suffices.
                    summary.added.get(p)
                } else {
                    None
                };
                let Some(delta) = delta.filter(|d| !d.is_empty()) else {
                    continue;
                };
                let mode = if lit.positive {
                    Mode::PosDelta(i, delta)
                } else {
                    Mode::NegDelta(i, delta)
                };
                for fact in eval_focused(rule, db_old, &mode) {
                    if db_new.get(head).is_some_and(|r| r.contains(&fact)) {
                        round.entry(head.to_string()).or_default().insert(fact);
                    }
                }
            }
        }
        if round.is_empty() {
            break;
        }
        for (p, facts) in &round {
            let rel = db_new.get_mut(p.as_str()).expect("stratum head present");
            for f in facts {
                rel.remove(f);
            }
            deleted
                .entry(p.clone())
                .or_default()
                .extend(facts.iter().cloned());
        }
        frontier_removed = round;
        first = false;
    }
    deleted
}

/// DRed phase 2: an overdeleted fact with an alternative derivation in
/// the surviving database comes back (which may rederive others
/// through recursion). Only runs when something was overdeleted, and
/// only puts back candidates from that set.
fn rederive(
    rules: &[&Rule],
    db_new: &mut BTreeMap<String, Relation>,
    deleted: &mut BTreeMap<String, Relation>,
) {
    while deleted.values().any(|d| !d.is_empty()) {
        let mut back: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in rules {
            let head = rule.head.predicate.as_str();
            let Some(pending) = deleted.get(head).filter(|d| !d.is_empty()) else {
                continue;
            };
            for fact in eval_full(rule, db_new) {
                if pending.contains(&fact) && !back.get(head).is_some_and(|r| r.contains(&fact)) {
                    back.entry(head.to_string()).or_default().insert(fact);
                }
            }
        }
        if back.is_empty() {
            break;
        }
        for (p, facts) in &back {
            db_new
                .entry(p.clone())
                .or_default()
                .extend(facts.iter().cloned());
            let pending = deleted.get_mut(p.as_str()).expect("candidate tracked");
            for f in facts {
                pending.remove(f);
            }
        }
    }
}

/// DRed phase 3: semi-naive insertion rounds, seeded with the edit's
/// additions (positive pivots) and removals of negated predicates
/// (absence newly holds).
fn insert(rules: &[&Rule], db_new: &mut BTreeMap<String, Relation>, summary: &ChangeSummary) {
    let mut frontier_added = summary.added.clone();
    let mut first = true;
    loop {
        let mut round: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in rules {
            let head = rule.head.predicate.as_str();
            for (i, lit) in rule.body.iter().enumerate() {
                let p = lit.atom.predicate.as_str();
                let delta = if lit.positive {
                    frontier_added.get(p)
                } else if first {
                    summary.removed.get(p)
                } else {
                    None
                };
                let Some(delta) = delta.filter(|d| !d.is_empty()) else {
                    continue;
                };
                let mode = if lit.positive {
                    Mode::PosDelta(i, delta)
                } else {
                    Mode::NegDelta(i, delta)
                };
                for fact in eval_focused(rule, db_new, &mode) {
                    if !db_new.get(head).is_some_and(|r| r.contains(&fact))
                        && !round.get(head).is_some_and(|r| r.contains(&fact))
                    {
                        round.entry(head.to_string()).or_default().insert(fact);
                    }
                }
            }
        }
        if round.is_empty() {
            break;
        }
        for (p, facts) in &round {
            db_new
                .entry(p.clone())
                .or_default()
                .extend(facts.iter().cloned());
        }
        frontier_added = round;
        first = false;
    }
}

/// Plain (unfocused) evaluation of one rule against `db`.
fn eval_full(rule: &Rule, db: &BTreeMap<String, Relation>) -> Vec<Fact> {
    let empty = Relation::new();
    let mut substs: Vec<Subst> = vec![Subst::new()];
    for lit in &rule.body {
        let rel = db.get(lit.atom.predicate.as_str()).unwrap_or(&empty);
        let mut next = Vec::new();
        if lit.positive {
            for s in &substs {
                for fact in rel {
                    if let Some(s2) = unify(&lit.atom, fact, s) {
                        next.push(s2);
                    }
                }
            }
        } else {
            for s in substs {
                if !rel.contains(&instantiate(&lit.atom, &s)) {
                    next.push(s);
                }
            }
        }
        substs = next;
        if substs.is_empty() {
            break;
        }
    }
    substs
        .into_iter()
        .map(|s| instantiate(&rule.head, &s))
        .collect()
}
