//! Property tests for the Datalog engine: the semi-naive evaluator must
//! agree with a naive reference evaluator on random programs and EDBs.

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_datalog::ast::{Atom, Program, Rule, Term, Value};
use hrdm_datalog::engine::{Engine, Relation};
use hrdm_hierarchy::HierarchyGraph;

/// Naive reference: repeat full rule evaluation until fixpoint,
/// stratum-agnostic version for negation-free programs.
fn naive_eval(
    edb: &std::collections::BTreeMap<String, Relation>,
    program: &Program,
) -> std::collections::BTreeMap<String, Relation> {
    let mut db: std::collections::BTreeMap<String, Relation> = edb.clone();
    for p in program.idb_predicates() {
        db.entry(p.to_string()).or_default();
    }
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let derived = naive_rule(rule, &db);
            let head = rule.head.predicate.clone();
            for fact in derived {
                if db.get_mut(&head).expect("initialized").insert(fact) {
                    changed = true;
                }
            }
        }
        if !changed {
            let mut out = std::collections::BTreeMap::new();
            for p in program.idb_predicates() {
                out.insert(p.to_string(), db[p].clone());
            }
            return out;
        }
    }
}

fn naive_rule(rule: &Rule, db: &std::collections::BTreeMap<String, Relation>) -> Vec<Vec<Value>> {
    type Subst = std::collections::BTreeMap<String, Value>;
    fn unify(atom: &Atom, fact: &[Value], s: &Subst) -> Option<Subst> {
        if atom.terms.len() != fact.len() {
            return None;
        }
        let mut s = s.clone();
        for (t, &v) in atom.terms.iter().zip(fact) {
            match t {
                Term::Const(c) if *c != v => return None,
                Term::Const(_) => {}
                Term::Var(name) => match s.get(name) {
                    Some(&b) if b != v => return None,
                    Some(_) => {}
                    None => {
                        s.insert(name.clone(), v);
                    }
                },
                Term::Sym(_) => unreachable!("no symbols in generated programs"),
            }
        }
        Some(s)
    }
    let empty = Relation::new();
    let mut substs: Vec<Subst> = vec![Subst::new()];
    for lit in &rule.body {
        let rel = db.get(&lit.atom.predicate).unwrap_or(&empty);
        let mut next = Vec::new();
        if lit.positive {
            for s in &substs {
                for fact in rel {
                    if let Some(s2) = unify(&lit.atom, fact, s) {
                        next.push(s2);
                    }
                }
            }
        } else {
            for s in substs {
                let ground: Vec<Value> = lit
                    .atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => s[v],
                        Term::Sym(_) => unreachable!(),
                    })
                    .collect();
                if !rel.contains(&ground) {
                    next.push(s);
                }
            }
        }
        substs = next;
    }
    substs
        .into_iter()
        .map(|s| {
            rule.head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => s[v],
                    Term::Sym(_) => unreachable!(),
                })
                .collect()
        })
        .collect()
}

/// Random edge EDB over `n` nodes.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..8).prop_flat_map(|n| (Just(n), prop::collection::vec((0..n, 0..n), 0..20)))
}

fn build_engine(n: usize, edges: &[(usize, usize)]) -> (Engine, Vec<String>) {
    let mut g = HierarchyGraph::new("Node");
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    for name in &names {
        g.add_instance(name.as_str(), g.root()).expect("fresh");
    }
    let mut engine = Engine::new();
    engine.register_domain(&Arc::new(g));
    for &(a, b) in edges {
        engine
            .add_fact("edge", &[names[a].as_str(), names[b].as_str()])
            .expect("registered domain");
    }
    // Always make the predicate exist even with no facts.
    if edges.is_empty() {
        // add_fact above never ran; seed via a rule-less EDB by adding
        // and removing is not supported — instead declare edge via an
        // empty program is fine because the engine rejects unknown
        // predicates. Add one self-loop... no: keep at least one edge.
    }
    (engine, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transitive_closure_semi_naive_matches_naive((n, edges) in edges_strategy()) {
        prop_assume!(!edges.is_empty());
        let (engine, _names) = build_engine(n, &edges);
        let program = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        ).expect("static program");
        let semi = engine.run(&program).expect("no negation");

        // Reference: naive iteration over the same EDB.
        let mut edb = std::collections::BTreeMap::new();
        let facts: Relation = edges
            .iter()
            .map(|&(a, b)| {
                vec![
                    Value { domain: 0, node: hrdm_hierarchy::NodeId::from_index(a + 1) },
                    Value { domain: 0, node: hrdm_hierarchy::NodeId::from_index(b + 1) },
                ]
            })
            .collect();
        edb.insert("edge".to_string(), facts);
        let naive = naive_eval(&edb, &program);
        prop_assert_eq!(&semi["path"], &naive["path"]);
    }

    #[test]
    fn closure_is_actually_transitive((n, edges) in edges_strategy()) {
        prop_assume!(!edges.is_empty());
        let (engine, _names) = build_engine(n, &edges);
        let program = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        ).expect("static program");
        let out = engine.run(&program).expect("no negation");
        let path = &out["path"];
        // Transitivity.
        for p in path {
            for q in path {
                if p[1] == q[0] {
                    prop_assert!(path.contains(&vec![p[0], q[1]]));
                }
            }
        }
        // Soundness: every path endpoint pair is connected in the raw
        // edge relation (BFS check).
        let adj: std::collections::BTreeMap<_, Vec<_>> = edges.iter().fold(
            std::collections::BTreeMap::new(),
            |mut m, &(a, b)| {
                m.entry(a).or_default().push(b);
                m
            },
        );
        for p in path {
            let start = p[0].node.index() - 1;
            let goal = p[1].node.index() - 1;
            let mut seen = vec![false; n];
            let mut stack = vec![start];
            let mut found = false;
            while let Some(x) = stack.pop() {
                for &y in adj.get(&x).map(Vec::as_slice).unwrap_or(&[]) {
                    if y == goal {
                        found = true;
                    }
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
                if found {
                    break;
                }
            }
            prop_assert!(found, "derived path {:?} not connected", p);
        }
    }

    #[test]
    fn stratified_negation_partitions((n, edges) in edges_strategy()) {
        prop_assume!(!edges.is_empty());
        let (mut engine, names) = build_engine(n, &edges);
        // node(X) EDB.
        for name in &names {
            engine.add_fact("node", &[name.as_str()]).expect("registered");
        }
        let program = Program::parse(
            "has_out(X) :- edge(X, Y).\n\
             sink(X) :- node(X), !has_out(X).",
        ).expect("static program");
        let out = engine.run(&program).expect("stratifiable");
        // sink ∪ has_out = node, disjointly.
        let sinks = &out["sink"];
        let outs = &out["has_out"];
        prop_assert_eq!(sinks.len() + outs.len(), n);
        for s in sinks {
            prop_assert!(!outs.contains(s));
        }
    }
}
