//! Incremental IDB maintenance: DRed edge cases and random parity
//! against full re-evaluation.

use std::sync::Arc;

use hrdm_datalog::ast::Program;
use hrdm_datalog::engine::Engine;
use hrdm_datalog::DatalogError;
use hrdm_hierarchy::HierarchyGraph;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A flat domain of `n` named nodes.
fn nodes(n: usize) -> (Arc<HierarchyGraph>, Vec<String>) {
    let mut g = HierarchyGraph::new("Node");
    let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    for name in &names {
        g.add_instance(name.as_str(), g.root()).unwrap();
    }
    (Arc::new(g), names)
}

/// Retracting one support of a fact with an *alternative derivation*
/// must keep the fact: DRed overdeletes it, rederivation brings it
/// back.
#[test]
fn retraction_with_alternative_derivation_rederives() {
    let (g, _) = nodes(3);
    let mut engine = Engine::new();
    engine.register_domain(&g);
    // Two routes n0 → n2: direct, and via n1.
    engine.add_fact("edge", &["n0", "n1"]).unwrap();
    engine.add_fact("edge", &["n1", "n2"]).unwrap();
    engine.add_fact("edge", &["n0", "n2"]).unwrap();
    let program = Program::parse(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).",
    )
    .unwrap();
    let mut live = engine.materialize(&program).unwrap();
    assert_eq!(live.relation("path").unwrap().len(), 3); // 01 12 02

    // Drop the via-n1 leg: path(n1,n2) dies, but path(n0,n2) survives
    // through the direct edge — the rederivation step must notice.
    let summary = live.retract_fact("edge", &["n1", "n2"]).unwrap();
    assert_eq!(live.relation("path").unwrap().len(), 2);
    let removed: usize = summary.removed.values().map(|r| r.len()).sum();
    assert_eq!(removed, 2, "edge(n1,n2) and path(n1,n2) only");
    assert!(summary.added.is_empty());

    // And the maintained state matches a fresh evaluation.
    engine.remove_fact("edge", &["n1", "n2"]).unwrap();
    assert_eq!(live.idb(), &engine.run(&program).unwrap());
}

/// Retraction under stratified negation: removing a fact from a lower
/// stratum can *create* facts above it (absence newly holds), and
/// adding one can *remove* them.
#[test]
fn retraction_under_stratified_negation() {
    let (g, _) = nodes(3);
    let mut engine = Engine::new();
    engine.register_domain(&g);
    engine.add_fact("creature", &["n0"]).unwrap();
    engine.add_fact("creature", &["n1"]).unwrap();
    engine.add_fact("bird", &["n0"]).unwrap();
    let program = Program::parse(
        "flies(X) :- bird(X).\n\
         grounded(X) :- creature(X), !flies(X).",
    )
    .unwrap();
    let mut live = engine.materialize(&program).unwrap();
    assert_eq!(live.relation("grounded").unwrap().len(), 1); // n1

    // n0 stops being a bird: flies(n0) dies, grounded(n0) appears.
    let summary = live.retract_fact("bird", &["n0"]).unwrap();
    assert!(summary.removed.contains_key("flies"));
    assert!(summary.added.contains_key("grounded"));
    assert_eq!(live.relation("grounded").unwrap().len(), 2);

    // And back: a new bird fact must *retract* through the negation.
    let summary = live.add_fact("bird", &["n1"]).unwrap();
    assert!(summary.added.contains_key("flies"));
    assert!(summary.removed.contains_key("grounded"));
    assert_eq!(live.relation("grounded").unwrap().len(), 1); // n0 again
}

/// Writes into rule-defined predicates are rejected: the IDB is
/// derived.
#[test]
fn idb_writes_rejected() {
    let (g, _) = nodes(2);
    let mut engine = Engine::new();
    engine.register_domain(&g);
    engine.add_fact("edge", &["n0", "n1"]).unwrap();
    let program = Program::parse("path(X, Y) :- edge(X, Y).").unwrap();
    let mut live = engine.materialize(&program).unwrap();
    assert!(matches!(
        live.add_fact("path", &["n0", "n1"]),
        Err(DatalogError::NotExtensional(p)) if p == "path"
    ));
    assert!(matches!(
        live.add_fact("edge", &["n0"]),
        Err(DatalogError::ArityMismatch { .. })
    ));
}

/// Random edit scripts: after every add/retract the maintained IDB
/// must equal a fresh full evaluation over the same EDB.
#[test]
fn random_edits_match_full_reevaluation() {
    let program_text = "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n\
         unreachable(X, Y) :- node(X), node(Y), !path(X, Y).\n\
         looped(X) :- path(X, X).";
    let program = Program::parse(program_text).unwrap();

    const N: usize = 6;
    const SCRIPTS: u64 = 64;
    const STEPS: usize = 24;
    let mut rng = 0x000d_1ab0_1155_u64;
    let mut maintained_rows = 0usize;
    for _ in 0..SCRIPTS {
        let (g, names) = nodes(N);
        let mut engine = Engine::new();
        engine.register_domain(&g);
        for name in &names {
            engine.add_fact("node", &[name.as_str()]).unwrap();
        }
        // Seed a few edges so the first materialization is non-trivial.
        for w in names.windows(2).take(3) {
            engine
                .add_fact("edge", &[w[0].as_str(), w[1].as_str()])
                .unwrap();
        }
        let mut live = engine.materialize(&program).unwrap();
        for _ in 0..STEPS {
            let r = splitmix(&mut rng);
            let a = names[(r as usize >> 8) % N].clone();
            let b = names[(r as usize >> 20) % N].clone();
            let summary = if r.is_multiple_of(2) {
                live.add_fact("edge", &[a.as_str(), b.as_str()]).unwrap()
            } else {
                live.retract_fact("edge", &[a.as_str(), b.as_str()])
                    .unwrap()
            };
            maintained_rows += summary.row_count();
            // Mirror the edit in the oracle engine and re-run from
            // scratch.
            if r.is_multiple_of(2) {
                engine.add_fact("edge", &[a.as_str(), b.as_str()]).unwrap();
            } else {
                engine
                    .remove_fact("edge", &[a.as_str(), b.as_str()])
                    .unwrap();
            }
            let fresh = engine.run(&program).unwrap();
            assert_eq!(
                live.idb(),
                &fresh,
                "maintained IDB diverged from full evaluation after {}ing edge({a},{b})",
                if r.is_multiple_of(2) {
                    "add"
                } else {
                    "retract"
                },
            );
        }
    }
    assert!(
        maintained_rows > 1_000,
        "only {maintained_rows} maintained rows across the sweep"
    );
}
