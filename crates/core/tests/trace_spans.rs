//! Property test: every span opened during a random-plan execution is
//! closed and parented correctly, even when `core::parallel` fans out
//! across scoped threads.
//!
//! This file deliberately holds a SINGLE test. Orphan counts compare a
//! capture's buffer slice against the spans reachable from its root, so
//! any other capture running concurrently in the same process leaks
//! events into the slice; `cargo test` runs a binary's tests on
//! concurrent threads, but a one-test binary cannot race itself.

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_core::parallel::PAR_THRESHOLD;
use hrdm_core::plan::LogicalPlan;
use hrdm_core::prelude::*;
use hrdm_hierarchy::gen::layered_dag;

/// A positive-only (hence always consistent) relation wide enough that
/// the subsumption build and explicate fan-out stages clear
/// [`PAR_THRESHOLD`].
fn big_relation(seed: u64) -> HRelation {
    let g = Arc::new(layered_dag(4, 12, 2, seed));
    let schema = Arc::new(Schema::single("D", g.clone()));
    let mut r = HRelation::new(schema);
    let nodes: Vec<_> = g.classes().chain(g.instances()).collect();
    for node in nodes {
        r.insert(Tuple::positive(Item::new(vec![node])))
            .expect("fresh positive tuple");
    }
    assert!(
        r.len() >= PAR_THRESHOLD,
        "workload must clear the threshold"
    );
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn spans_close_and_parent_under_parallel_fanout(seed in any::<u64>(), shape in 0usize..4) {
        let r = big_relation(seed);
        let root_region = Item::new(vec![r.schema().domain(0).root()]);
        let scan = LogicalPlan::scan("R", r.clone());
        let plan = match shape {
            0 => scan,
            1 => scan.explicate(vec![0]),
            2 => scan.consolidate(),
            _ => scan.explicate(vec![0]).select(root_region),
        };

        prop_assert_eq!(hrdm_obs::span::thread_open_depth(), 0);
        let executed = plan.execute().expect("positive-only relations are consistent");
        // Every guard dropped: nothing left open on this thread.
        prop_assert_eq!(hrdm_obs::span::thread_open_depth(), 0);

        let trace = &executed.trace;
        let root = trace.root.as_ref().expect("execution recorded a trace");
        prop_assert_eq!(root.name, "plan.execute");
        // Parented correctly: every recorded span is reachable from the
        // root — including spans recorded on scoped worker threads,
        // which link to the spawning operator explicitly.
        prop_assert_eq!(trace.orphans, 0);
        for node in trace.nodes() {
            // Closed correctly: an event is only appended when its
            // guard drops, and the monotonic clock orders start ≤ end.
            prop_assert!(node.end_ns >= node.start_ns, "span {} never closed", node.name);
        }

        let chunks: Vec<_> = trace
            .nodes()
            .into_iter()
            .filter(|n| n.name == "parallel.chunk")
            .collect();
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if cores > 1 {
            // The root consolidation alone rebuilds the subsumption
            // graph over ≥ PAR_THRESHOLD tuples, so a multi-core run
            // must have fanned out somewhere.
            prop_assert!(!chunks.is_empty(), "a {}-tuple workload must fan out", r.len());
        }
        for c in &chunks {
            prop_assert!(c.field_u64("worker").is_some());
            prop_assert!(c.field_u64("hi").unwrap_or(0) >= c.field_u64("lo").unwrap_or(0));
        }
    }
}
