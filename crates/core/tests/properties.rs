//! Property tests for the hierarchical relational core.
//!
//! The §3 invariant — "any manipulations on hierarchical relations
//! should have the same effect whether performed on the hierarchical
//! relations or on the equivalent flat relations" — is the specification
//! of every operator. These tests generate random taxonomies and random
//! *consistent* relations and check each operator against its flat
//! counterpart, plus the physical operators' equivalence-preservation
//! guarantees and the paper-faithfulness of the binding closed form
//! against the literal node-elimination procedure.

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_core::conflict::{find_conflicts, is_consistent};
use hrdm_core::consolidate::consolidate;
use hrdm_core::explicate::{explicate, explicate_all};
use hrdm_core::flat::{equivalent, flatten, flatten_via_binding};
use hrdm_core::ops::{difference, intersection, join, project, select, union};
use hrdm_core::parallel::run_serial;
use hrdm_core::plan::LogicalPlan;
use hrdm_core::prelude::*;
use hrdm_hierarchy::elim::{EliminationGraph, EliminationMode};
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};
use hrdm_hierarchy::HierarchyGraph;

/// Owned atom set of a relation's flat model (avoids borrow lifetimes in
/// proptest macros).
fn atoms_of(r: &HRelation) -> std::collections::BTreeSet<Item> {
    flatten(r).into_atoms()
}

/// A small random taxonomy.
fn arb_graph(seed: u64) -> HierarchyGraph {
    let layers = 1 + (seed % 3) as usize;
    let width = 2 + (seed / 3 % 3) as usize;
    let maxp = 1 + (seed / 9 % 2) as usize;
    layered_dag(layers, width, maxp, seed)
}

/// Force consistency by resolving every conflict positively, repeating
/// to a fixpoint (terminates: resolution tuples move strictly down the
/// finite item hierarchy).
fn make_consistent(r: &mut HRelation) {
    loop {
        let conflicts = find_conflicts(r);
        if conflicts.is_empty() {
            return;
        }
        for c in conflicts {
            r.insert(Tuple::positive(c.item)).unwrap();
        }
    }
}

/// Random consistent single-attribute relation plus its schema.
fn arb_relation() -> impl Strategy<Value = HRelation> {
    (any::<u64>(), 1usize..6, any::<u64>()).prop_map(|(gseed, ntuples, tseed)| {
        let g = arb_graph(gseed);
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema.clone());
        let nodes = sample_nodes(schema.domain(0), ntuples, tseed);
        for (k, node) in nodes.into_iter().enumerate() {
            let truth = if (tseed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        make_consistent(&mut r);
        r
    })
}

/// Exact tuple sequence of a relation — the byte-level identity used by
/// the parity properties (not just flat-model equivalence).
fn tuples_of(r: &HRelation) -> Vec<(Item, Truth)> {
    r.iter().map(|(i, t)| (i.clone(), t)).collect()
}

/// Run `f` against cold shared caches, so serial and parallel runs both
/// build everything from scratch (a cached core built by one mode and
/// reused by the other would make the comparison vacuous).
fn cold<T>(f: impl FnOnce() -> T) -> T {
    hrdm_core::subsumption::clear_cache();
    hrdm_hierarchy::cache::clear();
    f()
}

/// A consistent single-attribute relation big enough (typically 40+
/// tuples) that the chunked `std::thread::scope` paths actually spawn
/// workers instead of falling back to serial under `PAR_THRESHOLD`.
fn arb_large_relation() -> impl Strategy<Value = HRelation> {
    (any::<u64>(), 40usize..96, any::<u64>()).prop_map(|(gseed, ntuples, tseed)| {
        let g = layered_dag(3, 8, 2, gseed);
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema.clone());
        for (k, node) in sample_nodes(schema.domain(0), ntuples, tseed)
            .into_iter()
            .enumerate()
        {
            let truth = if (tseed >> (k % 64)) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        make_consistent(&mut r);
        r
    })
}

/// Random consistent two-attribute relation over shared-able graphs.
fn arb_relation2() -> impl Strategy<Value = HRelation> {
    (any::<u64>(), any::<u64>(), 1usize..5, any::<u64>()).prop_map(|(s1, s2, ntuples, tseed)| {
        let g1 = Arc::new(arb_graph(s1));
        let g2 = Arc::new(arb_graph(s2));
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("A", g1.clone()),
            Attribute::new("B", g2.clone()),
        ]));
        let mut r = HRelation::new(schema.clone());
        let n1 = sample_nodes(&g1, ntuples, tseed);
        let n2 = sample_nodes(&g2, ntuples, tseed ^ 0x5a5a);
        for (k, (a, b)) in n1.into_iter().zip(n2).enumerate() {
            let truth = if (tseed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![a, b]), truth));
        }
        make_consistent(&mut r);
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flatten_matches_binding_oracle(r in arb_relation()) {
        prop_assert_eq!(atoms_of(&r), flatten_via_binding(&r).into_atoms());
    }

    #[test]
    fn flatten_matches_binding_oracle_2attr(r in arb_relation2()) {
        prop_assert_eq!(atoms_of(&r), flatten_via_binding(&r).into_atoms());
    }

    #[test]
    fn consolidate_preserves_model_and_minimizes(r in arb_relation2()) {
        let c = consolidate(&r);
        prop_assert!(equivalent(&r, &c.relation));
        prop_assert!(c.relation.len() <= r.len());
        // Idempotent: a second pass removes nothing.
        prop_assert!(consolidate(&c.relation).removed.is_empty());
        // Consistency preserved.
        prop_assert!(is_consistent(&c.relation));
    }

    #[test]
    fn explicate_preserves_model(r in arb_relation2()) {
        let full = explicate_all(&r);
        prop_assert!(equivalent(&r, &full));
        // Partial explication of either attribute also preserves it.
        for attrs in [[0usize], [1usize]] {
            let part = explicate(&r, &attrs).unwrap();
            prop_assert!(equivalent(&r, &part), "attrs {:?}", attrs);
        }
    }

    #[test]
    fn select_matches_flat_selection(r in arb_relation(), rseed in any::<u64>()) {
        // Random region node.
        let region_node = sample_nodes(r.schema().domain(0), 1, rseed)
            .into_iter()
            .next()
            .unwrap_or(hrdm_hierarchy::NodeId::ROOT);
        let region = Item::new(vec![region_node]);
        let result = select(&r, &region).unwrap();
        let product = r.schema().product();
        let expected: std::collections::BTreeSet<Item> = flatten(&r)
            .into_atoms()
            .into_iter()
            .filter(|a| product.subsumes(region.components(), a.components()))
            .collect();
        prop_assert_eq!(atoms_of(&result), expected);
        prop_assert!(is_consistent(&result));
    }

    #[test]
    fn set_ops_match_flat_set_ops(
        (r1, r2) in (any::<u64>(), 1usize..5, 1usize..5, any::<u64>(), any::<u64>())
            .prop_map(|(gseed, n1, n2, t1, t2)| {
                let g = arb_graph(gseed);
                let schema = Arc::new(Schema::single("D", Arc::new(g)));
                let mk = |n: usize, seed: u64| {
                    let mut r = HRelation::new(schema.clone());
                    for (k, node) in sample_nodes(schema.domain(0), n, seed)
                        .into_iter()
                        .enumerate()
                    {
                        let truth = if (seed >> k) & 1 == 1 {
                            Truth::Positive
                        } else {
                            Truth::Negative
                        };
                        let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
                    }
                    make_consistent(&mut r);
                    r
                };
                (mk(n1, t1), mk(n2, t2))
            })
    ) {
        let f1 = flatten(&r1);
        let f2 = flatten(&r2);
        let mut all: std::collections::BTreeSet<Item> = f1.atoms().clone();
        all.extend(f2.atoms().iter().cloned());

        let u = union(&r1, &r2).unwrap();
        let expected: std::collections::BTreeSet<Item> =
            all.iter().filter(|i| f1.contains(i) || f2.contains(i)).cloned().collect();
        prop_assert_eq!(atoms_of(&u), expected, "union");

        let i = intersection(&r1, &r2).unwrap();
        let expected: std::collections::BTreeSet<Item> =
            all.iter().filter(|i| f1.contains(i) && f2.contains(i)).cloned().collect();
        prop_assert_eq!(atoms_of(&i), expected, "intersection");

        let d = difference(&r1, &r2).unwrap();
        let expected: std::collections::BTreeSet<Item> =
            all.iter().filter(|i| f1.contains(i) && !f2.contains(i)).cloned().collect();
        prop_assert_eq!(atoms_of(&d), expected, "difference");
    }

    #[test]
    fn join_matches_flat_join(
        (r1, r2) in (any::<u64>(), any::<u64>(), any::<u64>(), 1usize..4, 1usize..4, any::<u64>(), any::<u64>())
            .prop_map(|(gs, gb, gc, n1, n2, t1, t2)| {
                let shared = Arc::new(arb_graph(gs));
                let gb = Arc::new(arb_graph(gb));
                let gc = Arc::new(arb_graph(gc));
                let s1 = Arc::new(Schema::new(vec![
                    Attribute::new("K", shared.clone()),
                    Attribute::new("B", gb),
                ]));
                let s2 = Arc::new(Schema::new(vec![
                    Attribute::new("K", shared),
                    Attribute::new("C", gc),
                ]));
                let mk = |schema: &Arc<Schema>, n: usize, seed: u64| {
                    let mut r = HRelation::new(schema.clone());
                    let ka = sample_nodes(schema.domain(0), n, seed);
                    let kb = sample_nodes(schema.domain(1), n, seed ^ 0xbeef);
                    for (k, (a, b)) in ka.into_iter().zip(kb).enumerate() {
                        let truth = if (seed >> k) & 1 == 1 {
                            Truth::Positive
                        } else {
                            Truth::Negative
                        };
                        let _ = r.insert(Tuple::new(Item::new(vec![a, b]), truth));
                    }
                    make_consistent(&mut r);
                    r
                };
                (mk(&s1, n1, t1), mk(&s2, n2, t2))
            })
    ) {
        let joined = join(&r1, &r2).unwrap();
        let f1 = flatten(&r1);
        let f2 = flatten(&r2);
        let mut expected = std::collections::BTreeSet::new();
        for a in f1.iter() {
            for b in f2.iter() {
                if a.component(0) == b.component(0) {
                    expected.insert(Item::new(vec![
                        a.component(0),
                        a.component(1),
                        b.component(1),
                    ]));
                }
            }
        }
        prop_assert_eq!(atoms_of(&joined), expected);
    }

    #[test]
    fn project_positive_only_matches_exists_semantics(r in arb_relation2()) {
        // Keep only positive tuples whose dropped component has a
        // non-empty extension: that is the precondition under which
        // tuple-wise projection coincides with the extensional reading
        // (see DESIGN.md — intensional classes are kept deliberately).
        let mut pos = HRelation::new(r.schema().clone());
        let dropped_domain = r.schema().domain(1);
        for (item, truth) in r.iter() {
            if truth == Truth::Positive
                && !dropped_domain.extension(item.component(1)).is_empty()
            {
                pos.insert(Tuple::positive(item.clone())).unwrap();
            }
        }
        let p = project(&pos, &[0]).unwrap();
        let expected: std::collections::BTreeSet<Item> = flatten(&pos)
            .iter()
            .map(|a| a.select_components(&[0]))
            .collect();
        prop_assert_eq!(atoms_of(&p), expected);
    }

    /// Paper-faithfulness: the closed-form strongest-binder computation
    /// must agree with the literal node-elimination procedure on
    /// single-attribute relations, in all three preemption modes.
    #[test]
    fn binding_matches_literal_elimination(
        r in arb_relation(),
        qseed in any::<u64>(),
        mode in prop::sample::select(vec![
            Preemption::OffPath,
            Preemption::OnPath,
            Preemption::NoPreemption,
        ]),
    ) {
        let mut r = r;
        r.set_preemption(mode);
        let g = r.schema().domain(0);
        let q = sample_nodes(g, 1, qseed)
            .into_iter()
            .next()
            .unwrap_or(hrdm_hierarchy::NodeId::ROOT);
        let qitem = Item::new(vec![q]);
        if r.contains(&qitem) {
            return Ok(()); // explicit tuples preempt everything, trivially equal
        }

        // Literal: eliminate all hierarchy nodes without tuples (except
        // the query node), per §2.1, in the right elimination flavour.
        let tuple_nodes: Vec<hrdm_hierarchy::NodeId> =
            r.items().map(|i| i.component(0)).collect();
        let mut e = match mode {
            Preemption::OffPath => EliminationGraph::new(g, EliminationMode::OffPath),
            Preemption::OnPath => EliminationGraph::new(g, EliminationMode::OnPath),
            Preemption::NoPreemption => EliminationGraph::from_closure(g),
        };
        e.retain(|n| n == q || tuple_nodes.contains(&n));
        let mut literal: Vec<hrdm_hierarchy::NodeId> = e
            .predecessors(q)
            .iter()
            .copied()
            .filter(|p| tuple_nodes.contains(p)) // only tuple nodes bind
            .collect();
        literal.sort_unstable();
        literal.dedup();

        let mut closed: Vec<hrdm_hierarchy::NodeId> =
            hrdm_core::binding::strongest_binders(&r, &qitem)
                .into_iter()
                .map(|(i, _)| i.component(0))
                .collect();
        closed.sort_unstable();
        closed.dedup();

        prop_assert_eq!(closed, literal, "mode {:?}, query {:?}", mode, q);
    }

    #[test]
    fn discovery_round_trips_and_compresses(r in arb_relation()) {
        let flat = flatten(&r);
        let d = hrdm_core::discover::discover(&flat);
        prop_assert_eq!(atoms_of(&d.relation), flat.atoms().clone());
        prop_assert!(d.stats.hierarchical_tuples <= d.stats.flat_tuples.max(1));
        prop_assert!(is_consistent(&d.relation));
    }

    #[test]
    fn operators_never_panic_on_consistent_inputs(r in arb_relation2()) {
        // Smoke property: every unary operator succeeds on consistent
        // input and yields a consistent result.
        let c = consolidate(&r).relation;
        prop_assert!(is_consistent(&c));
        let e = explicate_all(&r);
        prop_assert!(is_consistent(&e));
        let s = select(&r, &r.schema().universal_item()).unwrap();
        prop_assert!(is_consistent(&s));
    }
}

// Algebraic laws of the physical operators, compared at the byte level
// (exact tuple sequences with truths), not just up to flat-model
// equivalence.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Consolidation never changes what explication means:
    /// explicate(consolidate(r)) and explicate(r) have the same flat
    /// model, and the two can differ only by redundant negated tuples
    /// (§3.3.2) — so consolidating both yields byte-identical relations
    /// (the §3.3.1 unique minimum of that shared model).
    #[test]
    fn explicate_after_consolidate_is_identity(r in arb_relation2()) {
        let direct = explicate_all(&r);
        let via = explicate_all(&consolidate(&r).relation);
        prop_assert!(equivalent(&direct, &via));
        prop_assert_eq!(
            tuples_of(&consolidate(&direct).relation),
            tuples_of(&consolidate(&via).relation)
        );
    }

    /// §3.3.1's "unique minimal relation": the consolidated result
    /// depends only on the tuple set — not the order tuples were
    /// inserted — and a second pass is a byte-level fixpoint.
    #[test]
    fn consolidate_unique_minimum_regardless_of_order(
        r in arb_relation2(),
        seed in any::<u64>(),
    ) {
        let c1 = consolidate(&r);
        let tuples = tuples_of(&r);
        for variant in 0..2 {
            let mut order = tuples.clone();
            if variant == 0 {
                order.reverse();
            } else {
                let rot = (seed as usize) % order.len().max(1);
                order.rotate_left(rot);
            }
            let mut r2 = HRelation::with_preemption(r.schema().clone(), r.preemption());
            for (item, truth) in order {
                r2.insert(Tuple::new(item, truth)).unwrap();
            }
            let c2 = consolidate(&r2);
            prop_assert_eq!(tuples_of(&c1.relation), tuples_of(&c2.relation));
            prop_assert_eq!(&c1.removed, &c2.removed);
        }
        let again = consolidate(&c1.relation);
        prop_assert!(again.removed.is_empty());
        prop_assert_eq!(tuples_of(&c1.relation), tuples_of(&again.relation));
    }
}

// ---------------------------------------------------------------------
// Logical-plan properties: rewrite soundness at the byte level.
// ---------------------------------------------------------------------

/// A pool of consistent base relations over one shared single-attribute
/// schema, so every binary plan node (join included) is well-formed.
fn plan_bases(gseed: u64, t1: u64, t2: u64) -> (Arc<Schema>, Vec<HRelation>) {
    let g = Arc::new(arb_graph(gseed));
    let schema = Arc::new(Schema::single("D", g));
    let mk = |n: usize, seed: u64| {
        let mut r = HRelation::new(schema.clone());
        for (k, node) in sample_nodes(schema.domain(0), n, seed)
            .into_iter()
            .enumerate()
        {
            let truth = if (seed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        make_consistent(&mut r);
        r
    };
    (schema.clone(), vec![mk(3, t1), mk(4, t2)])
}

/// Deterministically grow a random plan tree from a seed: every
/// operator of the IR appears, regions/values are sampled from the
/// shared domain, and leaves scan the base-relation pool.
fn build_plan(schema: &Arc<Schema>, bases: &[HRelation], seed: u64, depth: usize) -> LogicalPlan {
    if depth == 0 || seed.is_multiple_of(5) {
        let k = (seed as usize / 5) % bases.len();
        return LogicalPlan::scan(format!("R{k}"), bases[k].clone());
    }
    let op = (seed / 5) % 9;
    let next = seed
        .wrapping_div(45)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(1);
    let child = build_plan(schema, bases, next, depth - 1);
    let node = || {
        sample_nodes(schema.domain(0), 1, seed ^ 0x00ff_00ff)
            .pop()
            .unwrap_or(hrdm_hierarchy::NodeId::ROOT)
    };
    match op {
        0 => child.select(Item::new(vec![node()])),
        1 => {
            let value = schema.domain(0).name(node()).to_string();
            child.select_eq("D", value)
        }
        2 => child.union(build_plan(schema, bases, next ^ 0xabcd, depth - 1)),
        3 => child.intersect(build_plan(schema, bases, next ^ 0x1234, depth - 1)),
        4 => child.diff(build_plan(schema, bases, next ^ 0x5a5a, depth - 1)),
        5 => child.join(build_plan(schema, bases, next ^ 0xbeef, depth - 1)),
        6 => child.consolidate(),
        7 => child.explicate(vec![0]),
        _ => child.project(vec![0]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimizer is a byte-level no-op on the canonical output:
    /// 4 random plans per proptest case × 64 cases = 256 plan/relation
    /// pairs where the rewritten pipeline's result is identical — exact
    /// tuple sequences with truths — to naive bottom-up evaluation.
    #[test]
    fn optimized_plan_matches_naive_evaluation(
        gseed in any::<u64>(),
        t1 in any::<u64>(),
        t2 in any::<u64>(),
        pseed in any::<u64>(),
    ) {
        let (schema, bases) = plan_bases(gseed, t1, t2);
        for variant in 0..4u64 {
            let seed = pseed.wrapping_add(variant.wrapping_mul(0x9e37_79b9));
            let depth = 2 + (seed % 3) as usize;
            let plan = build_plan(&schema, &bases, seed, depth);
            let (optimized, _rewrites) = plan.optimize();
            match (plan.execute(), optimized.execute()) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    tuples_of(&a.relation),
                    tuples_of(&b.relation),
                    "plan {:?}",
                    plan
                ),
                // Both evaluation orders may legitimately reject (e.g.
                // a conflicted intermediate), as long as they agree.
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "naive ok={} vs optimized ok={} for plan {:?}",
                    a.is_ok(),
                    b.is_ok(),
                    plan
                ),
            }
        }
    }

    /// `Consolidate(Consolidate(p))` ≡ `Consolidate(p)` as executed
    /// plans — §3.3.1 idempotence at the plan layer, byte for byte.
    #[test]
    fn plan_consolidate_is_idempotent(
        gseed in any::<u64>(),
        t1 in any::<u64>(),
        t2 in any::<u64>(),
        pseed in any::<u64>(),
    ) {
        let (schema, bases) = plan_bases(gseed, t1, t2);
        let depth = 1 + (pseed % 2) as usize;
        let p = build_plan(&schema, &bases, pseed, depth);
        let single = p.clone().consolidate().execute();
        let double = p.consolidate().consolidate().execute();
        match (single, double) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                tuples_of(&a.relation),
                tuples_of(&b.relation)
            ),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "ok={} vs ok={}", a.is_ok(), b.is_ok()),
        }
    }
}

// Serial/parallel parity: the chunked `std::thread::scope` execution
// layer must be a pure performance knob. Every pair below runs the same
// operator against cold caches in both modes and demands byte-identical
// results (relations compared as exact tuple sequences, eliminated and
// conflicting tuples in their exact reported order).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn serial_parallel_parity_consolidate(r in arb_large_relation()) {
        let par = cold(|| consolidate(&r));
        let ser = run_serial(|| cold(|| consolidate(&r)));
        prop_assert_eq!(tuples_of(&par.relation), tuples_of(&ser.relation));
        prop_assert_eq!(par.removed, ser.removed);
    }

    #[test]
    fn serial_parallel_parity_explicate(r in arb_large_relation()) {
        let par = cold(|| explicate_all(&r));
        let ser = run_serial(|| cold(|| explicate_all(&r)));
        prop_assert_eq!(tuples_of(&par), tuples_of(&ser));
    }

    #[test]
    fn serial_parallel_parity_conflicts(r in arb_large_relation()) {
        // Conflict detection over the *unresolved* relation exercises
        // the parallel candidate-binding sweep with real conflicts: undo
        // consistency by flipping some truths.
        let mut noisy = HRelation::with_preemption(r.schema().clone(), r.preemption());
        for (k, (item, truth)) in tuples_of(&r).into_iter().enumerate() {
            let t = if k % 5 == 0 {
                Truth::from_bool(!truth.holds())
            } else {
                truth
            };
            noisy.insert(Tuple::new(item, t)).unwrap();
        }
        let par = cold(|| find_conflicts(&noisy));
        let ser = run_serial(|| cold(|| find_conflicts(&noisy)));
        prop_assert_eq!(par, ser);
        let par_ok = cold(|| is_consistent(&noisy));
        let ser_ok = run_serial(|| cold(|| is_consistent(&noisy)));
        prop_assert_eq!(par_ok, ser_ok);
    }

    #[test]
    fn serial_parallel_parity_join(
        (r1, r2) in (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(gseed, t1, t2)| {
            let g = Arc::new(layered_dag(3, 6, 2, gseed));
            let schema = Arc::new(Schema::single("D", g));
            let mk = |seed: u64| {
                let mut r = HRelation::new(schema.clone());
                for (k, node) in sample_nodes(schema.domain(0), 12, seed)
                    .into_iter()
                    .enumerate()
                {
                    let truth = if (seed >> k) & 1 == 1 {
                        Truth::Positive
                    } else {
                        Truth::Negative
                    };
                    let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
                }
                make_consistent(&mut r);
                r
            };
            (mk(t1), mk(t2))
        })
    ) {
        let par = cold(|| join(&r1, &r2).unwrap());
        let ser = run_serial(|| cold(|| join(&r1, &r2).unwrap()));
        prop_assert_eq!(tuples_of(&par), tuples_of(&ser));
    }

    #[test]
    fn serial_parallel_parity_plan_execution(
        (r, rseed) in (arb_large_relation(), any::<u64>())
    ) {
        // A whole optimized pipeline (explicate → select, which the
        // fusion rule reorders) must execute identically whether the
        // underlying operators fan out across threads or not.
        let region = sample_nodes(r.schema().domain(0), 1, rseed)
            .pop()
            .map(|n| Item::new(vec![n]))
            .unwrap_or_else(|| r.schema().universal_item());
        let plan = LogicalPlan::scan("R", r)
            .explicate(vec![0])
            .select(region);
        let (optimized, _) = plan.optimize();
        let par = cold(|| optimized.execute().unwrap());
        let ser = run_serial(|| cold(|| optimized.execute().unwrap()));
        prop_assert_eq!(tuples_of(&par.relation), tuples_of(&ser.relation));
        prop_assert_eq!(par.canonicalized_away, ser.canonicalized_away);
    }
}
