//! Multi-attribute paper-faithfulness: the closed-form subsumption /
//! binding construction over *product* item hierarchies must agree with
//! the literal node-elimination procedure run on the **materialized**
//! product graph.
//!
//! The arity-1 agreement is property-tested in `properties.rs`; this
//! suite materializes small two-attribute products (feasible only at
//! test scale — that's the point of the closed form) and compares
//! immediate-predecessor sets for every atomic item, in all three
//! preemption modes.

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_core::binding::strongest_binders;
use hrdm_core::prelude::*;
use hrdm_hierarchy::elim::{EliminationGraph, EliminationMode};
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};
use hrdm_hierarchy::{HierarchyGraph, NodeId, ProductHierarchy};

/// Build a small random 2-attribute relation plus the materialized
/// product graph with a mapping between product nodes and names.
fn setup(
    s1: u64,
    s2: u64,
    ntuples: usize,
    tseed: u64,
) -> (HRelation, HierarchyGraph, Vec<(Item, NodeId)>) {
    let g1 = Arc::new(layered_dag(
        1 + (s1 % 2) as usize,
        2 + (s1 / 2 % 2) as usize,
        2,
        s1,
    ));
    let g2 = Arc::new(layered_dag(
        1 + (s2 % 2) as usize,
        2 + (s2 / 2 % 2) as usize,
        2,
        s2,
    ));
    let schema = Arc::new(Schema::new(vec![
        Attribute::new("A", g1.clone()),
        Attribute::new("B", g2.clone()),
    ]));
    let mut r = HRelation::new(schema);
    let n1 = sample_nodes(&g1, ntuples, tseed);
    let n2 = sample_nodes(&g2, ntuples, tseed ^ 0xabcd);
    for (k, (a, b)) in n1.into_iter().zip(n2).enumerate() {
        let truth = if (tseed >> k) & 1 == 1 {
            Truth::Positive
        } else {
            Truth::Negative
        };
        let _ = r.insert(Tuple::new(Item::new(vec![a, b]), truth));
    }

    // Materialize the product and build the item <-> product-node map by
    // name, which `ProductHierarchy::materialize` guarantees unique.
    let product = ProductHierarchy::new(vec![g1.clone(), g2.clone()]);
    let materialized = product.materialize().expect("small product");
    let mut mapping = Vec::new();
    for a in g1.node_ids() {
        for b in g2.node_ids() {
            let name = format!("({}, {})", g1.name(a), g2.name(b));
            let node = materialized.expect(&name);
            mapping.push((Item::new(vec![a, b]), node));
        }
    }
    (r, materialized, mapping)
}

fn node_of(mapping: &[(Item, NodeId)], item: &Item) -> NodeId {
    mapping
        .iter()
        .find(|(i, _)| i == item)
        .map(|&(_, n)| n)
        .expect("every product item is mapped")
}

fn item_of(mapping: &[(Item, NodeId)], node: NodeId) -> &Item {
    mapping
        .iter()
        .find(|&&(_, n)| n == node)
        .map(|(i, _)| i)
        .expect("every product node is mapped")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binding_matches_literal_elimination_on_materialized_product(
        s1 in 0u64..1000,
        s2 in 0u64..1000,
        ntuples in 1usize..5,
        tseed in any::<u64>(),
        mode in prop::sample::select(vec![
            Preemption::OffPath,
            Preemption::OnPath,
            Preemption::NoPreemption,
        ]),
    ) {
        let (mut r, materialized, mapping) = setup(s1, s2, ntuples, tseed);
        r.set_preemption(mode);

        let tuple_nodes: Vec<NodeId> = r
            .items()
            .map(|i| node_of(&mapping, i))
            .collect();

        // Query every atomic item without a stored tuple.
        let schema = r.schema().clone();
        let atoms: Vec<Item> = schema.domain(0).instances()
            .flat_map(|a| {
                schema.domain(1).instances().map(move |b| Item::new(vec![a, b]))
            })
            .collect();

        for q in atoms {
            if r.contains(&q) {
                continue;
            }
            let qn = node_of(&mapping, &q);

            // Literal: eliminate every materialized product node that
            // has no tuple (except the query), per §2.1/Appendix.
            let mut e = match mode {
                Preemption::OffPath => {
                    EliminationGraph::new(&materialized, EliminationMode::OffPath)
                }
                Preemption::OnPath => {
                    EliminationGraph::new(&materialized, EliminationMode::OnPath)
                }
                Preemption::NoPreemption => EliminationGraph::from_closure(&materialized),
            };
            e.retain(|n| n == qn || tuple_nodes.contains(&n));
            let mut literal: Vec<Item> = e
                .predecessors(qn)
                .iter()
                .filter(|p| tuple_nodes.contains(p))
                .map(|&p| item_of(&mapping, p).clone())
                .collect();
            literal.sort();
            literal.dedup();

            let mut closed: Vec<Item> = strongest_binders(&r, &q)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            closed.sort();
            closed.dedup();

            prop_assert_eq!(
                closed,
                literal,
                "mode {:?}, query {:?}",
                mode,
                r.schema().display_item(&q)
            );
        }
    }
}
