//! Differential harness: the batch-at-a-time executor versus the
//! tuple-at-a-time executor, on thousands of random plans.
//!
//! [`hrdm_core::batch::execute_batch`] re-implements every physical
//! operator over sorted columnar runs. Its correctness claim is not
//! "equivalent flat model" but **byte identity**: for any plan, the
//! batch pipeline must produce the *exact* canonical relation — same
//! tuple sequence, same truths, same eliminated-tuple report, same
//! rendering — and must fail with the *same* error whenever the tuple
//! pipeline fails. This is the same oracle discipline the
//! serial/parallel parity suite uses, scaled up: 8 192 deterministic
//! random plans covering every IR operator, plus the cost-based join
//! commute on top.
//!
//! The generator is seeded and split-mix driven, so a reported seed
//! reproduces its plan exactly.

use std::sync::Arc;

use hrdm_core::batch::execute_batch;
use hrdm_core::conflict::find_conflicts;
use hrdm_core::cost::{optimize_with_cost, CostModel};
use hrdm_core::plan::LogicalPlan;
use hrdm_core::prelude::*;
use hrdm_core::render::render_table;
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};

/// Exact tuple sequence — the byte-level identity.
fn tuples_of(r: &HRelation) -> Vec<(Item, Truth)> {
    r.iter().map(|(i, t)| (i.clone(), t)).collect()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Force consistency by resolving conflicts positively to a fixpoint.
fn make_consistent(r: &mut HRelation) {
    loop {
        let conflicts = find_conflicts(r);
        if conflicts.is_empty() {
            return;
        }
        for c in conflicts {
            r.insert(Tuple::positive(c.item)).unwrap();
        }
    }
}

/// A pool of consistent base relations over one shared single-attribute
/// schema (so joins are always well-formed).
fn plan_bases(gseed: u64, t1: u64, t2: u64) -> (Arc<Schema>, Vec<HRelation>) {
    let layers = 1 + (gseed % 3) as usize;
    let width = 2 + (gseed / 3 % 3) as usize;
    let maxp = 1 + (gseed / 9 % 2) as usize;
    let g = Arc::new(layered_dag(layers, width, maxp, gseed));
    let schema = Arc::new(Schema::single("D", g));
    let mk = |n: usize, seed: u64| {
        let mut r = HRelation::new(schema.clone());
        for (k, node) in sample_nodes(schema.domain(0), n, seed)
            .into_iter()
            .enumerate()
        {
            let truth = if (seed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        make_consistent(&mut r);
        r
    };
    (schema.clone(), vec![mk(3, t1), mk(4, t2)])
}

/// Deterministically grow a random plan from a seed; every IR operator
/// is reachable (same shape as the optimizer-parity generator).
fn build_plan(schema: &Arc<Schema>, bases: &[HRelation], seed: u64, depth: usize) -> LogicalPlan {
    if depth == 0 || seed.is_multiple_of(5) {
        let k = (seed as usize / 5) % bases.len();
        return LogicalPlan::scan(format!("R{k}"), bases[k].clone());
    }
    let op = (seed / 5) % 9;
    let next = seed
        .wrapping_div(45)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(1);
    let child = build_plan(schema, bases, next, depth - 1);
    let node = || {
        sample_nodes(schema.domain(0), 1, seed ^ 0x00ff_00ff)
            .pop()
            .unwrap_or(hrdm_hierarchy::NodeId::ROOT)
    };
    match op {
        0 => child.select(Item::new(vec![node()])),
        1 => {
            let value = schema.domain(0).name(node()).to_string();
            child.select_eq("D", value)
        }
        2 => child.union(build_plan(schema, bases, next ^ 0xabcd, depth - 1)),
        3 => child.intersect(build_plan(schema, bases, next ^ 0x1234, depth - 1)),
        4 => child.diff(build_plan(schema, bases, next ^ 0x5a5a, depth - 1)),
        5 => child.join(build_plan(schema, bases, next ^ 0xbeef, depth - 1)),
        6 => child.consolidate(),
        7 => child.explicate(vec![0]),
        _ => child.project(vec![0]),
    }
}

/// One differential check: tuple executor vs. batch executor on `plan`.
/// Ok results must agree byte for byte (tuple sequence, eliminated
/// report, rendered table); errors must be the same error.
fn check(plan: &LogicalPlan, seed: u64) {
    match (plan.execute(), execute_batch(plan)) {
        (Ok(t), Ok(b)) => {
            assert_eq!(
                tuples_of(&t.relation),
                tuples_of(&b.relation),
                "seed {seed}: tuple/batch relations differ for {plan:?}"
            );
            assert_eq!(
                t.canonicalized_away, b.canonicalized_away,
                "seed {seed}: eliminated-tuple reports differ for {plan:?}"
            );
            assert_eq!(
                render_table(&t.relation).into_bytes(),
                render_table(&b.relation).into_bytes(),
                "seed {seed}: renderings differ for {plan:?}"
            );
        }
        (Err(te), Err(be)) => {
            assert_eq!(
                format!("{te:?}"),
                format!("{be:?}"),
                "seed {seed}: executors fail differently for {plan:?}"
            );
        }
        (t, b) => panic!(
            "seed {seed}: tuple ok={} but batch ok={} for {plan:?}",
            t.is_ok(),
            b.is_ok()
        ),
    }
}

/// The headline differential: 8 192 random plans, byte-identical
/// executors. Base pools rotate every 16 plans so the sweep sees many
/// taxonomies, not just many plans over one.
#[test]
fn batch_executor_matches_tuple_executor_on_8k_random_plans() {
    const PLANS: u64 = 8_192;
    const PLANS_PER_POOL: u64 = 16;
    let mut rng = 0xd1ff_e7e4_7e57_0001u64;
    let mut checked = 0u64;
    while checked < PLANS {
        let (schema, bases) =
            plan_bases(splitmix(&mut rng), splitmix(&mut rng), splitmix(&mut rng));
        for _ in 0..PLANS_PER_POOL.min(PLANS - checked) {
            let seed = splitmix(&mut rng);
            let depth = 2 + (seed % 3) as usize;
            let plan = build_plan(&schema, &bases, seed, depth);
            check(&plan, seed);
            checked += 1;
        }
    }
    assert_eq!(checked, PLANS);
}

/// The cost-based join commute composes with batch execution: for plans
/// containing joins, `optimize_with_cost` output under the batch
/// executor still matches the naive tuple execution of the original.
#[test]
fn cost_reordered_plans_stay_byte_identical_under_batch_execution() {
    let model = CostModel::default_calibration();
    let mut rng = 0xc057_0000_0000_0001u64;
    let mut reordered_seen = 0u64;
    for _ in 0..64 {
        let (schema, bases) =
            plan_bases(splitmix(&mut rng), splitmix(&mut rng), splitmix(&mut rng));
        for _ in 0..8 {
            let seed = splitmix(&mut rng);
            // Bias toward join-bearing plans: join a random subtree
            // with a base scan, then wrap in a random operator.
            let sub = build_plan(&schema, &bases, seed, 2);
            let plan = sub.join(LogicalPlan::scan("R0", bases[0].clone()));
            let (costed, rewrites) = optimize_with_cost(&plan, &model);
            if rewrites.iter().any(|r| r.rule == "cost-join-order") {
                reordered_seen += 1;
            }
            match (plan.execute(), execute_batch(&costed)) {
                (Ok(t), Ok(b)) => {
                    assert_eq!(
                        tuples_of(&t.relation),
                        tuples_of(&b.relation),
                        "seed {seed}: cost-reordered batch differs for {plan:?}"
                    );
                }
                (Err(_), Err(_)) => {}
                (t, b) => panic!(
                    "seed {seed}: tuple ok={} vs cost+batch ok={} for {plan:?}",
                    t.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
    // The sweep must actually exercise the rewrite, not just pass
    // vacuously.
    assert!(
        reordered_seen > 0,
        "no plan triggered the cost-join-order rewrite"
    );
}
