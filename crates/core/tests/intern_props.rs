//! Property tests for the global string interner.
//!
//! The interner underpins the columnar layer: every `Sym` stored in a
//! [`hrdm_core::columnar::ColumnarRelation`] must resolve back to
//! exactly the string it was interned from (bijection), from any
//! thread (the table is shared), and for as long as any snapshot that
//! saw it is alive (snapshot safety) — even across the bench harness's
//! `reset_for_bench`, which is the regression that motivates the last
//! test: a published snapshot must never observe a dangling `Sym`.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use hrdm_core::intern::{intern, reset_for_bench, resolve, snapshot, Sym};

/// The interner is process-global and one test here resets it; the
/// tests in this binary serialize on this lock so a reset can never
/// interleave with another test's intern/resolve round trip.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// intern/resolve is a bijection on whatever strings this process
    /// interns: equal strings get equal syms, distinct strings get
    /// distinct syms, and resolve inverts intern exactly.
    #[test]
    fn intern_resolve_bijection(names in prop::collection::vec("[a-zA-Z0-9_]{1,24}", 1..40)) {
        let _guard = exclusive();
        let mut seen: HashMap<String, Sym> = HashMap::new();
        for name in &names {
            let sym = intern(name);
            // Idempotent: re-interning returns the same sym.
            prop_assert_eq!(sym, intern(name));
            // Resolve inverts intern.
            let back = resolve(sym);
            prop_assert_eq!(back.as_deref(), Some(name.as_str()));
            if let Some(prev) = seen.insert(name.clone(), sym) {
                prop_assert_eq!(prev, sym);
            } else {
                // Distinct strings never collide on a sym.
                for (other, &osym) in &seen {
                    if other != name {
                        prop_assert_ne!(osym, sym, "{} vs {}", other, name);
                    }
                }
            }
        }
    }

    /// Concurrent interning from scoped threads agrees: every thread
    /// interning the same strings sees the same syms, and all of them
    /// resolve back correctly afterwards.
    #[test]
    fn concurrent_interning_is_consistent(
        names in prop::collection::vec("[a-z]{1,12}", 1..16),
        threads in 2usize..5,
    ) {
        let _guard = exclusive();
        let per_thread: Vec<Vec<Sym>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let names = &names;
                    s.spawn(move || {
                        // Each thread starts at a different offset so
                        // first-interning races are actually exercised.
                        let mut syms: Vec<Option<Sym>> = vec![None; names.len()];
                        for k in 0..names.len() {
                            let j = (k + t) % names.len();
                            syms[j] = Some(intern(&names[j]));
                        }
                        syms.into_iter().map(|s| s.expect("filled")).collect::<Vec<Sym>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for syms in &per_thread {
            prop_assert_eq!(syms, &per_thread[0]);
        }
        for (name, &sym) in names.iter().zip(&per_thread[0]) {
            let back = resolve(sym);
            prop_assert_eq!(back.as_deref(), Some(name.as_str()));
        }
    }

    /// Snapshot safety: a snapshot taken at time T resolves every sym
    /// interned before T, forever — including after `reset_for_bench`
    /// rebuilds the live table. (Regression: a published snapshot must
    /// never observe a dangling `Sym`.)
    #[test]
    fn snapshots_never_dangle(names in prop::collection::vec("[A-Z][a-z]{1,10}[0-9]{1,6}", 1..24)) {
        let _guard = exclusive();
        let syms: Vec<Sym> = names.iter().map(|n| intern(n)).collect();
        let snap = snapshot();
        // Interning more strings after the snapshot must not disturb it.
        for n in &names {
            intern(&format!("{n}_after"));
        }
        for (name, &sym) in names.iter().zip(&syms) {
            prop_assert_eq!(snap.resolve(sym), Some(name.as_str()));
        }
        // The bench-only reset clears the *live* table but the snapshot
        // still owns its strings (Arc-pinned) — no dangling resolution.
        reset_for_bench();
        for (name, &sym) in names.iter().zip(&syms) {
            prop_assert_eq!(snap.resolve(sym), Some(name.as_str()));
        }
        // And the live interner keeps working after the reset.
        let again = intern(&names[0]);
        let back = resolve(again);
        prop_assert_eq!(back.as_deref(), Some(names[0].as_str()));
    }
}
