//! The cone-localization knob: environment initialization and runtime
//! override. Lives in its own test binary so this process's first read
//! of the knob happens *after* `HRDM_CONE_LIMIT` is set — the `OnceLock`
//! init is per-process.

use hrdm_core::differential::{cone_limit, set_cone_limit, DEFAULT_CONE_LIMIT};

#[test]
fn env_seeds_the_limit_and_runtime_overrides_win() {
    // Must precede the first cone_limit() call anywhere in this process.
    std::env::set_var("HRDM_CONE_LIMIT", "7");
    assert_eq!(cone_limit(), 7, "first read honors HRDM_CONE_LIMIT");

    set_cone_limit(0);
    assert_eq!(cone_limit(), 0, "0 = always recompute");
    set_cone_limit(usize::MAX);
    assert_eq!(cone_limit(), usize::MAX, "MAX = always sweep locally");

    // The env var is only consulted once; later changes are inert.
    std::env::set_var("HRDM_CONE_LIMIT", "99");
    set_cone_limit(DEFAULT_CONE_LIMIT);
    assert_eq!(cone_limit(), DEFAULT_CONE_LIMIT);
}
