//! Differential harness for incremental view maintenance: a
//! [`MaterializedPlan`] maintained step-by-step under random mutation
//! scripts versus full recomputation of the same plan from scratch.
//!
//! The correctness claim mirrors `batch_parity`'s oracle discipline —
//! **byte identity**, not semantic equivalence: after every committed
//! mutation the maintained relation must have the exact tuple sequence,
//! the same eliminated-tuple report, and the same `render_table` bytes
//! as executing the plan over the mutated bases from nothing. Steps
//! whose recomputation fails must fail identically on the differential
//! path (same error, debug-formatted), and — matching the engine's
//! atomic-statement semantics — a failing step commits nothing: the
//! script reverts the mutation and carries on with the old
//! materialization.
//!
//! The generator is seeded and split-mix driven, so a reported seed
//! reproduces its plan and script exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use hrdm_core::conflict::find_conflicts;
use hrdm_core::delta::RelationDelta;
use hrdm_core::differential::MaterializedPlan;
use hrdm_core::plan::LogicalPlan;
use hrdm_core::prelude::*;
use hrdm_core::render::render_table;
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};

fn tuples_of(r: &HRelation) -> Vec<(Item, Truth)> {
    r.iter().map(|(i, t)| (i.clone(), t)).collect()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn make_consistent(r: &mut HRelation) {
    loop {
        let conflicts = find_conflicts(r);
        if conflicts.is_empty() {
            return;
        }
        for c in conflicts {
            r.insert(Tuple::positive(c.item)).unwrap();
        }
    }
}

/// A pool of consistent base relations over one shared single-attribute
/// schema (so joins are always well-formed) — same shape as
/// `batch_parity`.
fn plan_bases(gseed: u64, t1: u64, t2: u64) -> (Arc<Schema>, Vec<HRelation>) {
    let layers = 1 + (gseed % 3) as usize;
    let width = 2 + (gseed / 3 % 3) as usize;
    let maxp = 1 + (gseed / 9 % 2) as usize;
    let g = Arc::new(layered_dag(layers, width, maxp, gseed));
    let schema = Arc::new(Schema::single("D", g));
    let mk = |n: usize, seed: u64| {
        let mut r = HRelation::new(schema.clone());
        for (k, node) in sample_nodes(schema.domain(0), n, seed)
            .into_iter()
            .enumerate()
        {
            let truth = if (seed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        make_consistent(&mut r);
        r
    };
    (schema.clone(), vec![mk(3, t1), mk(4, t2)])
}

/// Deterministically grow a random plan from a seed; every IR operator
/// is reachable. Rebuilding with the same seed over mutated bases
/// yields the identical plan shape with fresh scan snapshots — the
/// full-recomputation oracle.
fn build_plan(schema: &Arc<Schema>, bases: &[HRelation], seed: u64, depth: usize) -> LogicalPlan {
    if depth == 0 || seed.is_multiple_of(5) {
        let k = (seed as usize / 5) % bases.len();
        return LogicalPlan::scan(format!("R{k}"), bases[k].clone());
    }
    let op = (seed / 5) % 9;
    let next = seed
        .wrapping_div(45)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(1);
    let child = build_plan(schema, bases, next, depth - 1);
    let node = || {
        sample_nodes(schema.domain(0), 1, seed ^ 0x00ff_00ff)
            .pop()
            .unwrap_or(hrdm_hierarchy::NodeId::ROOT)
    };
    match op {
        0 => child.select(Item::new(vec![node()])),
        1 => {
            let value = schema.domain(0).name(node()).to_string();
            child.select_eq("D", value)
        }
        2 => child.union(build_plan(schema, bases, next ^ 0xabcd, depth - 1)),
        3 => child.intersect(build_plan(schema, bases, next ^ 0x1234, depth - 1)),
        4 => child.diff(build_plan(schema, bases, next ^ 0x5a5a, depth - 1)),
        5 => child.join(build_plan(schema, bases, next ^ 0xbeef, depth - 1)),
        6 => child.consolidate(),
        7 => child.explicate(vec![0]),
        _ => child.project(vec![0]),
    }
}

/// One random mutation against base `k`: an assert (possibly a truth
/// overwrite) or a retract of a stored row. Returns the row delta, or
/// `None` when the script rolled a retract against an empty relation.
fn random_step(
    bases: &[HRelation],
    schema: &Arc<Schema>,
    seed: u64,
) -> Option<(usize, RelationDelta)> {
    let k = (seed as usize >> 8) % bases.len();
    let r = &bases[k];
    let mut delta = RelationDelta::new();
    if seed & 3 == 0 && !r.is_empty() {
        // Retract a stored row.
        let victim = r
            .items()
            .nth((seed as usize >> 16) % r.len())
            .unwrap()
            .clone();
        delta.removed.push(victim);
    } else {
        let node = sample_nodes(schema.domain(0), 1, seed ^ 0x5eed).pop()?;
        let truth = if seed & 4 == 0 {
            Truth::Positive
        } else {
            Truth::Negative
        };
        delta.added.push((Item::new(vec![node]), truth));
    }
    Some((k, delta))
}

/// Maintained-vs-recomputed byte identity across one mutation script.
fn run_script(gseed: u64, rng: &mut u64, steps: usize) -> (u64, u64) {
    let (schema, mut bases) = plan_bases(gseed, splitmix(rng), splitmix(rng));
    let plan_seed = splitmix(rng);
    let depth = 2 + (plan_seed % 3) as usize;
    let plan = build_plan(&schema, &bases, plan_seed, depth);

    let mut mat = match MaterializedPlan::new(plan.clone()) {
        Ok(m) => m,
        Err(e) => {
            // The plan is unexecutable outright; the batch oracle must
            // agree, and there is nothing to maintain.
            let oe = plan
                .execute()
                .expect_err("materialize failed but execute succeeded");
            assert_eq!(format!("{e:?}"), format!("{oe:?}"), "seed {plan_seed}");
            return (0, 0);
        }
    };
    let mut committed = 0u64;
    let mut rejected = 0u64;

    for step in 0..steps {
        let sseed = splitmix(rng);
        let Some((k, delta)) = random_step(&bases, &schema, sseed) else {
            continue;
        };
        // Stage the mutation.
        let mut staged = bases[k].clone();
        delta.apply_to(&mut staged);
        let mut staged_bases = bases.clone();
        staged_bases[k] = staged;

        let mut deltas = BTreeMap::new();
        deltas.insert(format!("R{k}"), delta);

        let fresh_plan = build_plan(&schema, &staged_bases, plan_seed, depth);
        match (mat.apply(&deltas), fresh_plan.execute()) {
            (Ok((next, _, _)), Ok(fresh)) => {
                assert_eq!(
                    tuples_of(next.relation()),
                    tuples_of(&fresh.relation),
                    "plan seed {plan_seed} step {step} (seed {sseed}): maintained relation diverged for {plan:?}"
                );
                assert_eq!(
                    next.canonicalized_away(),
                    fresh.canonicalized_away,
                    "plan seed {plan_seed} step {step}: eliminated-tuple reports differ"
                );
                assert_eq!(
                    render_table(next.relation()).into_bytes(),
                    render_table(&fresh.relation).into_bytes(),
                    "plan seed {plan_seed} step {step}: renderings differ"
                );
                bases = staged_bases;
                mat = next;
                committed += 1;
            }
            (Err(me), Err(fe)) => {
                // Same failure both ways; the step commits nothing and
                // the old materialization stays live.
                assert_eq!(
                    format!("{me:?}"),
                    format!("{fe:?}"),
                    "plan seed {plan_seed} step {step}: paths fail differently"
                );
                rejected += 1;
            }
            (m, f) => panic!(
                "plan seed {plan_seed} step {step}: maintain ok={} but recompute ok={} for {plan:?}",
                m.is_ok(),
                f.is_ok()
            ),
        }
    }
    (committed, rejected)
}

/// The headline differential: hundreds of random plans, each maintained
/// through a multi-step mutation script, byte-identical to full
/// recomputation at every committed epoch.
#[test]
fn maintained_plans_match_recomputation_on_random_mutation_scripts() {
    const SCRIPTS: u64 = 384;
    const STEPS: usize = 8;
    let mut rng = 0x1bc2_3fee_d000_0001u64;
    let mut committed = 0u64;
    let mut rejected = 0u64;
    for _ in 0..SCRIPTS {
        let (c, r) = run_script(splitmix(&mut rng), &mut rng, STEPS);
        committed += c;
        rejected += r;
    }
    // The sweep must exercise both outcomes, not pass vacuously.
    assert!(committed > 1_000, "only {committed} committed epochs");
    assert!(rejected > 0, "no step exercised the error-parity path");
}

/// Deep consolidate chains over a growing relation: the worst case for
/// the cone-localized delete/rederive (every level re-judges), still
/// byte-identical.
#[test]
fn consolidate_tower_stays_identical_under_growth() {
    let g = Arc::new(layered_dag(3, 4, 2, 0xfeed));
    let schema = Arc::new(Schema::single("D", g));
    let mut base = HRelation::new(schema.clone());
    let plan_of = |r: &HRelation| {
        LogicalPlan::scan("R", r.clone())
            .consolidate()
            .explicate(vec![0])
            .consolidate()
    };
    let mut mat = MaterializedPlan::new(plan_of(&base)).unwrap();
    let mut rng = 0x70_ee_11u64;
    for step in 0..48 {
        let seed = splitmix(&mut rng);
        let Some(node) = sample_nodes(schema.domain(0), 1, seed).pop() else {
            continue;
        };
        let mut delta = RelationDelta::new();
        let item = Item::new(vec![node]);
        if seed & 7 == 0 && base.stored(&item).is_some() {
            delta.removed.push(item);
        } else {
            let truth = if seed & 1 == 0 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            delta.added.push((item, truth));
        }
        let mut staged = base.clone();
        delta.apply_to(&mut staged);
        let mut deltas = BTreeMap::new();
        deltas.insert("R".to_string(), delta);
        match (mat.apply(&deltas), plan_of(&staged).execute()) {
            (Ok((next, _, _)), Ok(fresh)) => {
                assert_eq!(
                    tuples_of(next.relation()),
                    tuples_of(&fresh.relation),
                    "step {step} diverged"
                );
                base = staged;
                mat = next;
            }
            (Err(me), Err(fe)) => {
                assert_eq!(format!("{me:?}"), format!("{fe:?}"), "step {step}");
            }
            (m, f) => panic!(
                "step {step}: maintain ok={} recompute ok={}",
                m.is_ok(),
                f.is_ok()
            ),
        }
    }
}
