//! A small measured-cost model for physical planning decisions.
//!
//! The optimizer's rewrite rules ([`LogicalPlan::optimize`]) are purely
//! logical. This module adds the two *physical* decisions the paper's
//! benchmarks care about, fed by the obs per-operator latency
//! histograms:
//!
//! * **Join order** — [`optimize_with_cost`] commutes a join whose
//!   right input is estimated smaller, compensating with a full-width
//!   projection that restores the original column order. §3.3.1's
//!   unique-minimum theorem guarantees the canonical (root-consolidated)
//!   result is byte-identical either way, so this rewrite composes with
//!   the logical rules without weakening the plan-parity property
//!   tests. A smaller left input shrinks both the hierarchical
//!   executor's outer candidate loop and the flat lowering's hash-join
//!   build side.
//! * **Index vs. scan access** — [`CostModel::access_path`] compares the
//!   estimated cost of probing a membership index against scanning, and
//!   is consulted by the flat batch lowering
//!   (`hrdm_bench::flatplan::execute_flat_batch`) when it lowers a
//!   selection over a base scan.
//!
//! Calibration: [`CostModel::from_registry`] reads the p50/p99 of the
//! `core.join.latency_ns` and `core.plan.node_latency_ns` histograms
//! that `core::ops`/`core::plan` already record, falling back to
//! [`CostModel::default_calibration`]'s fixed constants when the
//! registry is empty (obs off, or nothing executed yet). EXPLAIN
//! renders costs with the **fixed** calibration only — measured
//! nanoseconds vary run to run and would break golden snapshots — while
//! runtime planning uses whatever was measured.

use std::fmt::Write as _;

use crate::plan::{join_parts, map_children, LogicalPlan, Rewrite};

/// Which physical access path a selection should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Probe a (class-id-keyed) membership index and gather matches.
    IndexProbe,
    /// Scan all rows and filter.
    Scan,
}

impl AccessPath {
    /// Stable lowercase label for spans, EXPLAIN, and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            AccessPath::IndexProbe => "index",
            AccessPath::Scan => "scan",
        }
    }
}

/// Per-operation cost coefficients, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of evaluating one candidate join pair (memoized binding
    /// lookups included).
    pub join_pair_ns: f64,
    /// Fixed per-operator overhead (span, dispatch, result build).
    pub node_ns: f64,
    /// Cost of one index probe (hash/sorted lookup plus gather).
    pub probe_ns: f64,
    /// Cost of scanning and filtering one row.
    pub scan_row_ns: f64,
    /// True when at least one coefficient came from a measured
    /// histogram rather than the fixed defaults.
    pub measured: bool,
}

impl CostModel {
    /// The fixed default calibration. Deterministic — this is what
    /// EXPLAIN renders with — and a reasonable shape for the workloads
    /// in `BENCH_columnar.json`: probes are ~4× the per-row scan cost,
    /// so an index pays off below ~25% selectivity.
    pub fn default_calibration() -> CostModel {
        CostModel {
            join_pair_ns: 2_000.0,
            node_ns: 4_000.0,
            probe_ns: 160.0,
            scan_row_ns: 40.0,
            measured: false,
        }
    }

    /// Calibrate from the live metrics registry: p50 of
    /// `core.join.latency_ns` prices a join, p50 of
    /// `core.plan.node_latency_ns` prices operator overhead, and its
    /// p99 spread (normalized per batch row) prices row processing.
    /// Falls back to the defaults wherever nothing was recorded.
    pub fn from_registry() -> CostModel {
        let mut m = CostModel::default_calibration();
        let join = hrdm_obs::metrics::histogram("core.join.latency_ns");
        if let Some(p50) = join.quantile_ns(0.5) {
            m.join_pair_ns = (p50 as f64).max(1.0);
            m.measured = true;
        }
        let node = hrdm_obs::metrics::histogram("core.plan.node_latency_ns");
        if let Some(p50) = node.quantile_ns(0.5) {
            m.node_ns = (p50 as f64).max(1.0);
            m.measured = true;
        }
        if let Some(p99) = node.quantile_ns(0.99) {
            m.scan_row_ns = (p99 as f64 / crate::columnar::BATCH_ROWS as f64).max(1.0);
            m.probe_ns = m.scan_row_ns * 4.0;
        }
        m
    }

    /// Deterministic structural row estimate for a plan: stored tuple
    /// counts at the leaves, fixed selectivities above (½ per
    /// selection, product for joins, 4× fan-out for explication).
    pub fn estimate_rows(&self, plan: &LogicalPlan) -> u64 {
        match plan {
            LogicalPlan::Scan { relation, .. } => relation.len() as u64,
            LogicalPlan::Select { input, .. } | LogicalPlan::SelectEq { input, .. } => {
                self.estimate_rows(input).div_ceil(2)
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Consolidate { input } => {
                self.estimate_rows(input)
            }
            LogicalPlan::Join { left, right } => self
                .estimate_rows(left)
                .saturating_mul(self.estimate_rows(right).max(1)),
            LogicalPlan::Union { left, right } => self
                .estimate_rows(left)
                .saturating_add(self.estimate_rows(right)),
            LogicalPlan::Intersect { left, right } => {
                self.estimate_rows(left).min(self.estimate_rows(right))
            }
            LogicalPlan::Diff { left, .. } => self.estimate_rows(left),
            LogicalPlan::Explicate { input, .. } => self.estimate_rows(input).saturating_mul(4),
        }
    }

    /// Choose how to evaluate a selection expecting `est_matches` of
    /// `input_rows` rows: probe an index when the probe cost (plus
    /// fixed overhead) undercuts the full scan.
    pub fn access_path(&self, input_rows: u64, est_matches: u64) -> AccessPath {
        let probe = self.probe_ns * est_matches as f64 + self.node_ns;
        let scan = self.scan_row_ns * input_rows as f64;
        if est_matches < input_rows && probe < scan {
            AccessPath::IndexProbe
        } else {
            AccessPath::Scan
        }
    }
}

/// Optimize `plan` with the logical rule set, then apply the
/// cost-based `cost-join-order` rewrite bottom-up: any join whose
/// right input is estimated strictly smaller is commuted, with a
/// compensating full-width projection restoring the column order.
///
/// The rewritten plan's canonical output is byte-identical to the
/// original's: both orders have the same flat model, and the root
/// consolidate's unique minimum (§3.3.1) makes the physical forms
/// agree too (covered by the batch-parity differential harness).
pub fn optimize_with_cost(plan: &LogicalPlan, model: &CostModel) -> (LogicalPlan, Vec<Rewrite>) {
    let (optimized, mut log) = plan.optimize();
    let reordered = commute_joins(optimized, model, &mut log);
    (reordered, log)
}

fn commute_joins(plan: LogicalPlan, model: &CostModel, log: &mut Vec<Rewrite>) -> LogicalPlan {
    let plan = map_children(plan, |c| commute_joins(c, model, log));
    let LogicalPlan::Join { left, right } = plan else {
        return plan;
    };
    let left_est = model.estimate_rows(&left);
    let right_est = model.estimate_rows(&right);
    let rebuilt =
        |left: Box<LogicalPlan>, right: Box<LogicalPlan>| LogicalPlan::Join { left, right };
    if right_est >= left_est {
        return rebuilt(left, right);
    }
    let (Ok(ls), Ok(rs)) = (left.output_schema(), right.output_schema()) else {
        return rebuilt(left, right);
    };
    let Ok(parts) = join_parts(&ls, &rs) else {
        return rebuilt(left, right);
    };
    // Column permutation from the swapped join's layout (right's
    // attributes, then left-only) back to the original (left's
    // attributes, then right-only).
    let left_only: Vec<usize> = (0..ls.arity())
        .filter(|i| !parts.shared.iter().any(|&(si, _)| si == *i))
        .collect();
    let mut perm: Vec<usize> = Vec::with_capacity(ls.arity() + parts.right_only.len());
    for i in 0..ls.arity() {
        if let Some(&(_, j)) = parts.shared.iter().find(|&&(si, _)| si == i) {
            perm.push(j);
        } else {
            let pos = left_only.iter().position(|&x| x == i).expect("partition");
            perm.push(rs.arity() + pos);
        }
    }
    perm.extend(parts.right_only.iter().copied());
    log.push(Rewrite {
        rule: "cost-join-order",
        detail: format!(
            "join inputs commuted (right est {right_est} rows < left est {left_est}); \
             projection restores the column order"
        ),
    });
    LogicalPlan::Project {
        input: Box::new(LogicalPlan::Join {
            left: right,
            right: left,
        }),
        attrs: perm,
    }
}

/// The EXPLAIN cost section: deterministic row estimates and
/// per-operator decisions under the fixed default calibration, one
/// line per join (order decision) and selection (access decision),
/// pre-order.
pub fn explain_costs(plan: &LogicalPlan) -> String {
    let model = CostModel::default_calibration();
    let mut out = String::from("cost model (fixed calibration):\n");
    let _ = writeln!(out, "  est rows: {}", model.estimate_rows(plan));
    annotate(plan, &model, &mut out);
    out
}

fn annotate(plan: &LogicalPlan, model: &CostModel, out: &mut String) {
    match plan {
        LogicalPlan::Join { left, right } => {
            let (le, re) = (model.estimate_rows(left), model.estimate_rows(right));
            let decision = if re < le {
                "commute candidate (runtime cost model reorders)"
            } else {
                "order kept"
            };
            let _ = writeln!(
                out,
                "  Join: left est {le} rows, right est {re} — {decision}"
            );
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::SelectEq { input, .. } => {
            let input_rows = model.estimate_rows(input);
            let est = model.estimate_rows(plan);
            let path = model.access_path(input_rows, est);
            let _ = writeln!(
                out,
                "  Select: {} access (est {est} of {input_rows} input rows)",
                path.label()
            );
        }
        _ => {}
    }
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Select { input, .. }
        | LogicalPlan::SelectEq { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Consolidate { input }
        | LogicalPlan::Explicate { input, .. } => annotate(input, model, out),
        LogicalPlan::Join { left, right }
        | LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Diff { left, right } => {
            annotate(left, model, out);
            annotate(right, model, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::ops::test_fixtures::*;
    use crate::relation::HRelation;
    use crate::truth::Truth;

    fn tuples_of(r: &HRelation) -> Vec<(Item, Truth)> {
        r.iter().map(|(i, t)| (i.clone(), t)).collect()
    }

    /// Two single-shared-attribute relations with different sizes.
    fn sized_pair() -> (LogicalPlan, LogicalPlan) {
        let r = respects(); // 3 stored tuples
        let mut small = HRelation::new(r.schema().clone());
        small
            .assert_fact(
                &["Obsequious Student", "Incoherent Teacher"],
                Truth::Positive,
            )
            .unwrap();
        (
            LogicalPlan::scan("Big", r),
            LogicalPlan::scan("Small", small),
        )
    }

    #[test]
    fn join_commutes_toward_the_smaller_left_input() {
        let (big, small) = sized_pair();
        let plan = big.clone().join(small.clone());
        let model = CostModel::default_calibration();
        let (reordered, rewrites) = optimize_with_cost(&plan, &model);
        assert!(rewrites.iter().any(|r| r.rule == "cost-join-order"));
        assert!(matches!(reordered, LogicalPlan::Project { .. }));
        // Already-optimal order is left alone.
        let (kept, rewrites) = optimize_with_cost(&small.join(big), &model);
        assert!(!rewrites.iter().any(|r| r.rule == "cost-join-order"));
        assert!(matches!(kept, LogicalPlan::Join { .. }));
    }

    #[test]
    fn commuted_join_is_byte_identical() {
        let (big, small) = sized_pair();
        let plan = big.join(small);
        let model = CostModel::default_calibration();
        let (reordered, _) = optimize_with_cost(&plan, &model);
        let naive = plan.execute().unwrap();
        let costed = reordered.execute().unwrap();
        assert_eq!(tuples_of(&naive.relation), tuples_of(&costed.relation));
        // Schema order restored by the compensating projection.
        assert_eq!(
            costed.relation.schema().attribute(0).name(),
            naive.relation.schema().attribute(0).name()
        );
        // And the batch executor agrees on the reordered plan too.
        let batch = crate::batch::execute_batch(&reordered).unwrap();
        assert_eq!(tuples_of(&naive.relation), tuples_of(&batch.relation));
    }

    #[test]
    fn estimates_are_structural_and_deterministic() {
        let (big, small) = sized_pair();
        let model = CostModel::default_calibration();
        assert_eq!(model.estimate_rows(&big), 3);
        assert_eq!(model.estimate_rows(&small), 1);
        let sel = big.clone().select_eq("Student", "John");
        assert_eq!(model.estimate_rows(&sel), 2);
        assert_eq!(model.estimate_rows(&big.clone().join(small.clone())), 3);
        assert_eq!(model.estimate_rows(&big.clone().union(small.clone())), 4);
        assert_eq!(
            model.estimate_rows(&big.clone().intersect(small.clone())),
            1
        );
        assert_eq!(model.estimate_rows(&big.clone().diff(small)), 3);
        assert_eq!(model.estimate_rows(&big.clone().explicate(vec![0])), 12);
        assert_eq!(model.estimate_rows(&big.consolidate()), 3);
    }

    #[test]
    fn access_path_prefers_index_only_when_selective() {
        let model = CostModel::default_calibration();
        // 10k rows, 100 matches: probe cost 100*160+4000 ≪ scan 400k.
        assert_eq!(model.access_path(10_000, 100), AccessPath::IndexProbe);
        // Unselective: scan.
        assert_eq!(model.access_path(100, 100), AccessPath::Scan);
        assert_eq!(model.access_path(10, 9), AccessPath::Scan);
        assert_eq!(AccessPath::IndexProbe.label(), "index");
        assert_eq!(AccessPath::Scan.label(), "scan");
    }

    #[test]
    fn explain_costs_render_is_deterministic() {
        let (big, small) = sized_pair();
        let plan = big.join(small).select_eq("Student", "John");
        let a = explain_costs(&plan);
        let b = explain_costs(&plan);
        assert_eq!(a, b);
        assert!(a.contains("cost model (fixed calibration):"));
        assert!(a.contains("est rows:"));
        assert!(a.contains("Join: left est"));
        assert!(a.contains("Select:"));
    }

    #[test]
    fn from_registry_falls_back_to_defaults() {
        // Whatever the registry holds, the model must stay finite and
        // positive; with an empty registry it equals the defaults.
        let m = CostModel::from_registry();
        assert!(m.join_pair_ns >= 1.0);
        assert!(m.node_ns >= 1.0);
        assert!(m.scan_row_ns >= 1.0);
        assert!(m.probe_ns >= 1.0);
    }
}
