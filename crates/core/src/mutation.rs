//! Logical catalog mutations: the replayable change vocabulary.
//!
//! Every way a [`Catalog`](crate::catalog::Catalog) can change is
//! described by one [`CatalogMutation`] value — a *logical* record
//! (names, not node ids or pointers), so a sequence of mutations can be
//! journaled, shipped, and replayed onto a fresh catalog to rebuild the
//! exact same state. The persistence layer's write-ahead log is a
//! framed stream of these values; crash recovery is
//! `checkpoint ∘ replay(prefix)`.
//!
//! Two invariants make the replay sound:
//!
//! * **Determinism** — applying the same mutation sequence to equal
//!   catalogs yields equal catalogs (node ids are assigned densely in
//!   insertion order, so even `NodeId`s agree).
//! * **Atomicity** — [`Catalog::apply_mutation`](crate::catalog::Catalog::apply_mutation)
//!   either applies the
//!   whole mutation or returns an error leaving the catalog unchanged.

use std::fmt;

use crate::preemption::Preemption;
use crate::truth::Truth;

/// One logical, replayable change to a catalog.
///
/// All references are by name: a mutation is meaningful on any catalog
/// holding objects with those names, which is exactly what recovery
/// needs (the restored catalog's `Arc`s are new, its names are not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogMutation {
    /// Create an empty domain hierarchy (root node named after it).
    CreateDomain {
        /// Domain name.
        name: String,
    },
    /// Remove a domain (relations over it keep their shared handles).
    DropDomain {
        /// Domain name.
        name: String,
    },
    /// Add a class under one or more existing parents.
    AddClass {
        /// Owning domain.
        domain: String,
        /// New class name.
        name: String,
        /// Parent class/domain names (at least one).
        parents: Vec<String>,
    },
    /// Add an instance under one or more existing parents.
    AddInstance {
        /// Owning domain.
        domain: String,
        /// New instance name.
        name: String,
        /// Parent class names (at least one).
        parents: Vec<String>,
    },
    /// Add an Appendix preference edge (`stronger` dominates `weaker`).
    Prefer {
        /// Owning domain.
        domain: String,
        /// Dominating class.
        stronger: String,
        /// Dominated class.
        weaker: String,
    },
    /// Create an empty relation over named attribute/domain pairs.
    CreateRelation {
        /// Relation name.
        name: String,
        /// `(attribute, domain)` name pairs.
        attributes: Vec<(String, String)>,
    },
    /// Remove a relation.
    DropRelation {
        /// Relation name.
        name: String,
    },
    /// Assert a fact with an explicit truth value. Losing a
    /// `Truth::Negative` record on crash would silently *widen* the
    /// explicated extension, which is why assertion records carry the
    /// sign rather than defaulting it.
    Assert {
        /// Relation name.
        relation: String,
        /// Tuple value names, one per attribute.
        values: Vec<String>,
        /// The asserted truth value.
        truth: Truth,
    },
    /// Retract a stored fact.
    Retract {
        /// Relation name.
        relation: String,
        /// Tuple value names, one per attribute.
        values: Vec<String>,
    },
    /// Change a relation's preemption mode.
    SetPreemption {
        /// Relation name.
        relation: String,
        /// The new mode.
        mode: Preemption,
    },
}

impl CatalogMutation {
    /// Short tag for metrics/trace labels (`"assert"`, `"add-class"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            CatalogMutation::CreateDomain { .. } => "create-domain",
            CatalogMutation::DropDomain { .. } => "drop-domain",
            CatalogMutation::AddClass { .. } => "add-class",
            CatalogMutation::AddInstance { .. } => "add-instance",
            CatalogMutation::Prefer { .. } => "prefer",
            CatalogMutation::CreateRelation { .. } => "create-relation",
            CatalogMutation::DropRelation { .. } => "drop-relation",
            CatalogMutation::Assert { .. } => "assert",
            CatalogMutation::Retract { .. } => "retract",
            CatalogMutation::SetPreemption { .. } => "set-preemption",
        }
    }
}

impl fmt::Display for CatalogMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogMutation::CreateDomain { name } => write!(f, "CREATE DOMAIN {name}"),
            CatalogMutation::DropDomain { name } => write!(f, "DROP DOMAIN {name}"),
            CatalogMutation::AddClass {
                domain,
                name,
                parents,
            } => write!(
                f,
                "ADD CLASS {name} UNDER {} IN {domain}",
                parents.join(", ")
            ),
            CatalogMutation::AddInstance {
                domain,
                name,
                parents,
            } => write!(
                f,
                "ADD INSTANCE {name} OF {} IN {domain}",
                parents.join(", ")
            ),
            CatalogMutation::Prefer {
                domain,
                stronger,
                weaker,
            } => write!(f, "PREFER {stronger} OVER {weaker} IN {domain}"),
            CatalogMutation::CreateRelation { name, attributes } => {
                let attrs: Vec<String> = attributes
                    .iter()
                    .map(|(a, d)| format!("{a}: {d}"))
                    .collect();
                write!(f, "CREATE RELATION {name} ({})", attrs.join(", "))
            }
            CatalogMutation::DropRelation { name } => write!(f, "DROP RELATION {name}"),
            CatalogMutation::Assert {
                relation,
                values,
                truth,
            } => write!(
                f,
                "ASSERT {} {relation} ({})",
                truth.sign(),
                values.join(", ")
            ),
            CatalogMutation::Retract { relation, values } => {
                write!(f, "RETRACT {relation} ({})", values.join(", "))
            }
            CatalogMutation::SetPreemption { relation, mode } => {
                write!(f, "SET PREEMPTION {relation} {mode}")
            }
        }
    }
}

/// Observer of successfully applied mutations.
///
/// A catalog with a sink installed reports every mutation applied
/// through [`Catalog::mutate`](crate::catalog::Catalog::mutate) *after*
/// it succeeded — the hook a durable wrapper uses to journal changes
/// without re-implementing the catalog surface. Replay
/// ([`Catalog::apply_mutation`](crate::catalog::Catalog::apply_mutation))
/// deliberately bypasses the sink, so recovery does not re-journal the
/// log it is reading.
pub trait MutationSink: Send {
    /// Called once per successfully applied mutation, in order.
    fn on_mutation(&mut self, mutation: &CatalogMutation);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_change() {
        let m = CatalogMutation::Assert {
            relation: "Flies".into(),
            values: vec!["Bird".into()],
            truth: Truth::Negative,
        };
        assert_eq!(m.to_string(), "ASSERT - Flies (Bird)");
        assert_eq!(m.kind(), "assert");
        let m = CatalogMutation::AddClass {
            domain: "Animal".into(),
            name: "Bird".into(),
            parents: vec!["Animal".into()],
        };
        assert!(m.to_string().contains("UNDER Animal"));
        let m = CatalogMutation::CreateRelation {
            name: "R".into(),
            attributes: vec![("V".into(), "D".into())],
        };
        assert_eq!(m.to_string(), "CREATE RELATION R (V: D)");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            CatalogMutation::CreateDomain { name: "D".into() }.kind(),
            CatalogMutation::DropDomain { name: "D".into() }.kind(),
            CatalogMutation::DropRelation { name: "R".into() }.kind(),
            CatalogMutation::SetPreemption {
                relation: "R".into(),
                mode: Preemption::OnPath,
            }
            .kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
