//! Relation schemas: named attributes with hierarchy-graph domains.
//!
//! "Each attribute of a standard relation ranges over a specified
//! domain. Just as before, we can create a hierarchy of domains for each
//! attribute" (§2.2). A [`Schema`] binds attribute names to shared
//! [`HierarchyGraph`]s and caches the lazy [`ProductHierarchy`] that
//! serves as the relation's item hierarchy.

use std::sync::Arc;

use hrdm_hierarchy::{HierarchyGraph, NodeId, ProductHierarchy};

use crate::error::{CoreError, Result};
use crate::item::Item;

/// A named attribute with a hierarchy-graph domain.
#[derive(Clone)]
pub struct Attribute {
    name: String,
    domain: Arc<HierarchyGraph>,
}

impl Attribute {
    /// Build an attribute.
    pub fn new(name: impl Into<String>, domain: Arc<HierarchyGraph>) -> Attribute {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// The attribute's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain hierarchy.
    #[inline]
    pub fn domain(&self) -> &Arc<HierarchyGraph> {
        &self.domain
    }
}

/// An ordered list of attributes plus the cached product item hierarchy.
///
/// Schemas are shared (`Arc<Schema>`) by relations and operators; two
/// relations are compatible when their schemas have the same attribute
/// names (in order) and the same domain graphs (pointer equality — the
/// graphs are meant to be shared, not duplicated).
pub struct Schema {
    attributes: Vec<Attribute>,
    product: ProductHierarchy,
}

impl Schema {
    /// Build a schema from attributes.
    pub fn new(attributes: Vec<Attribute>) -> Schema {
        let product = ProductHierarchy::new(attributes.iter().map(|a| a.domain.clone()).collect());
        Schema {
            attributes,
            product,
        }
    }

    /// Single-attribute convenience constructor (§2.1 relations).
    pub fn single(name: impl Into<String>, domain: Arc<HierarchyGraph>) -> Schema {
        Schema::new(vec![Attribute::new(name, domain)])
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes, in declaration order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// One attribute by position.
    #[inline]
    pub fn attribute(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }

    /// The cached product item hierarchy (§2.2).
    #[inline]
    pub fn product(&self) -> &ProductHierarchy {
        &self.product
    }

    /// The domain graph of attribute `i`.
    #[inline]
    pub fn domain(&self, i: usize) -> &HierarchyGraph {
        &self.attributes[i].domain
    }

    /// Position of the attribute with this name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Resolve per-attribute node *names* into an [`Item`].
    ///
    /// The `i`-th name is looked up in the `i`-th attribute's domain.
    pub fn item(&self, names: &[&str]) -> Result<Item> {
        if names.len() != self.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.arity(),
                got: names.len(),
            });
        }
        let mut components = Vec::with_capacity(names.len());
        for (name, attr) in names.iter().zip(&self.attributes) {
            components.push(attr.domain.node(name)?);
        }
        Ok(Item::new(components))
    }

    /// Validate that an item has the right arity and that every
    /// component id belongs to its domain graph.
    pub fn check_item(&self, item: &Item) -> Result<()> {
        if item.arity() != self.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.arity(),
                got: item.arity(),
            });
        }
        for (i, &node) in item.components().iter().enumerate() {
            if node.index() >= self.domain(i).len() {
                return Err(CoreError::Hierarchy(
                    hrdm_hierarchy::HierarchyError::UnknownNode(node),
                ));
            }
        }
        Ok(())
    }

    /// The item covering the whole relation domain `D*`:
    /// `(root, …, root)`.
    pub fn universal_item(&self) -> Item {
        Item::new(vec![NodeId::ROOT; self.arity()])
    }

    /// Human-readable rendering of an item, e.g.
    /// `(∀Obsequious Student, John)`. Classes get the paper's `∀`
    /// prefix; instances print bare.
    pub fn display_item(&self, item: &Item) -> String {
        let parts: Vec<String> = item
            .components()
            .iter()
            .zip(&self.attributes)
            .map(|(&n, a)| {
                if a.domain.is_instance(n) {
                    a.domain.name(n).to_string()
                } else {
                    format!("∀{}", a.domain.name(n))
                }
            })
            .collect();
        if parts.len() == 1 {
            parts.into_iter().next().expect("arity checked")
        } else {
            format!("({})", parts.join(", "))
        }
    }

    /// Are two schemas compatible (same names, same shared graphs)?
    pub fn compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attributes
                .iter()
                .zip(&other.attributes)
                .all(|(a, b)| a.name == b.name && Arc::ptr_eq(&a.domain, &b.domain))
    }
}

impl std::fmt::Debug for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Schema(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.domain.name(a.domain.root()))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn animals() -> Arc<HierarchyGraph> {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        Arc::new(g)
    }

    fn colors() -> Arc<HierarchyGraph> {
        let mut g = HierarchyGraph::new("Color");
        g.add_instance("Grey", g.root()).unwrap();
        g.add_instance("White", g.root()).unwrap();
        Arc::new(g)
    }

    #[test]
    fn item_resolution_by_name() {
        let s = Schema::new(vec![
            Attribute::new("Animal", animals()),
            Attribute::new("Color", colors()),
        ]);
        let item = s.item(&["Tweety", "Grey"]).unwrap();
        assert_eq!(item.arity(), 2);
        assert!(s.check_item(&item).is_ok());
        assert!(matches!(
            s.item(&["Nobody", "Grey"]),
            Err(CoreError::Hierarchy(_))
        ));
        assert!(matches!(
            s.item(&["Tweety"]),
            Err(CoreError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn index_of_and_accessors() {
        let s = Schema::new(vec![
            Attribute::new("Animal", animals()),
            Attribute::new("Color", colors()),
        ]);
        assert_eq!(s.index_of("Color").unwrap(), 1);
        assert!(matches!(
            s.index_of("Size"),
            Err(CoreError::UnknownAttribute(_))
        ));
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attribute(0).name(), "Animal");
        assert_eq!(s.product().arity(), 2);
    }

    #[test]
    fn display_item_uses_forall_for_classes() {
        let s = Schema::new(vec![
            Attribute::new("Animal", animals()),
            Attribute::new("Color", colors()),
        ]);
        let item = s.item(&["Bird", "Grey"]).unwrap();
        assert_eq!(s.display_item(&item), "(∀Bird, Grey)");
        let single = Schema::single("Animal", animals());
        let item = single.item(&["Bird"]).unwrap();
        assert_eq!(single.display_item(&item), "∀Bird");
        let item = single.item(&["Tweety"]).unwrap();
        assert_eq!(single.display_item(&item), "Tweety");
    }

    #[test]
    fn universal_item_is_all_roots() {
        let s = Schema::new(vec![
            Attribute::new("Animal", animals()),
            Attribute::new("Color", colors()),
        ]);
        let u = s.universal_item();
        assert_eq!(u.components(), &[NodeId::ROOT, NodeId::ROOT]);
        assert_eq!(s.display_item(&u), "(∀Animal, ∀Color)");
    }

    #[test]
    fn compatibility_requires_shared_graphs() {
        let a = animals();
        let s1 = Schema::single("Animal", a.clone());
        let s2 = Schema::single("Animal", a);
        assert!(s1.compatible(&s2));
        let s3 = Schema::single("Animal", animals()); // different Arc
        assert!(!s1.compatible(&s3));
        let s4 = Schema::single("Beast", s1.attribute(0).domain().clone());
        assert!(!s1.compatible(&s4));
    }

    #[test]
    fn check_item_rejects_foreign_node_ids() {
        let s = Schema::single("Animal", animals());
        let bogus = Item::new(vec![NodeId::from_index(999)]);
        assert!(s.check_item(&bogus).is_err());
    }

    #[test]
    fn debug_lists_attributes() {
        let s = Schema::new(vec![
            Attribute::new("Animal", animals()),
            Attribute::new("Color", colors()),
        ]);
        let d = format!("{s:?}");
        assert!(d.contains("Animal"));
        assert!(d.contains("Color"));
    }
}
