//! Hierarchical relations: sets of truth-valued tuples (§2).
//!
//! "Rather than store every individual tuple that satisfies the
//! predicate, we would like, in our model, to store only a few tuples,
//! each of which represents many ordered sets of attribute-value
//! mappings that satisfy the predicate."
//!
//! A [`HRelation`] stores tuples in a `BTreeMap<Item, Truth>`:
//! set semantics (duplicate elimination exactly as in flat relations,
//! §3.2) with deterministic iteration order. An item may carry only one
//! truth value at a time — asserting the opposite truth for the *same*
//! item is a contradiction, rejected by [`HRelation::assert_item`]
//! (use [`HRelation::insert`] to overwrite deliberately).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::binding::{bind, Binding};
use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::preemption::Preemption;
use crate::schema::Schema;
use crate::truth::Truth;
use crate::tuple::Tuple;

/// A hierarchical relation: a set of truth-valued tuples over a shared
/// schema, evaluated under a chosen [`Preemption`] semantics.
#[derive(Clone)]
pub struct HRelation {
    schema: Arc<Schema>,
    tuples: BTreeMap<Item, Truth>,
    preemption: Preemption,
}

impl HRelation {
    /// An empty relation with the paper's default (off-path) semantics.
    pub fn new(schema: Arc<Schema>) -> HRelation {
        HRelation::with_preemption(schema, Preemption::OffPath)
    }

    /// An empty relation with explicit preemption semantics.
    pub fn with_preemption(schema: Arc<Schema>, preemption: Preemption) -> HRelation {
        HRelation {
            schema,
            tuples: BTreeMap::new(),
            preemption,
        }
    }

    /// The shared schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The preemption semantics in force.
    #[inline]
    pub fn preemption(&self) -> Preemption {
        self.preemption
    }

    /// Switch preemption semantics (reinterprets the stored tuples; no
    /// data changes).
    pub fn set_preemption(&mut self, p: Preemption) {
        self.preemption = p;
    }

    /// Number of stored tuples (not the extension size!).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Resolve per-attribute node names into an item (see
    /// [`Schema::item`]).
    pub fn item(&self, names: &[&str]) -> Result<Item> {
        self.schema.item(names)
    }

    /// Insert or overwrite a tuple; returns the previous truth value of
    /// the item, if any.
    pub fn insert(&mut self, tuple: Tuple) -> Result<Option<Truth>> {
        self.schema.check_item(&tuple.item)?;
        Ok(self.tuples.insert(tuple.item, tuple.truth))
    }

    /// Insert a tuple, rejecting a contradictory re-assertion of the
    /// same item (idempotent for identical assertions).
    pub fn assert_item(&mut self, item: Item, truth: Truth) -> Result<()> {
        self.schema.check_item(&item)?;
        match self.tuples.get(&item) {
            Some(&t) if t != truth => Err(CoreError::ContradictoryAssertion(item)),
            _ => {
                self.tuples.insert(item, truth);
                Ok(())
            }
        }
    }

    /// Name-based convenience for [`HRelation::assert_item`].
    pub fn assert_fact(&mut self, names: &[&str], truth: Truth) -> Result<()> {
        let item = self.schema.item(names)?;
        self.assert_item(item, truth)
    }

    /// Remove the tuple stored for `item`, returning its truth value.
    pub fn remove(&mut self, item: &Item) -> Option<Truth> {
        self.tuples.remove(item)
    }

    /// The truth value *stored* for exactly this item (no inheritance —
    /// see [`HRelation::bind`] for the inherited truth).
    pub fn stored(&self, item: &Item) -> Option<Truth> {
        self.tuples.get(item).copied()
    }

    /// Is a tuple stored for exactly this item?
    pub fn contains(&self, item: &Item) -> bool {
        self.tuples.contains_key(item)
    }

    /// Iterate stored tuples in deterministic (item) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Item, Truth)> {
        self.tuples.iter().map(|(i, &t)| (i, t))
    }

    /// Stored tuples as owned values, in deterministic order.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.tuples
            .iter()
            .map(|(i, &t)| Tuple::new(i.clone(), t))
            .collect()
    }

    /// Just the stored items, in deterministic order.
    pub fn items(&self) -> impl Iterator<Item = &Item> {
        self.tuples.keys()
    }

    /// The truth value `item` receives under inheritance with
    /// exceptions: explicit tuple, strongest-binding inherited tuple(s),
    /// conflict, or unspecified. This is the paper's tuple-binding-graph
    /// lookup (§2.1).
    pub fn bind(&self, item: &Item) -> Binding {
        bind(self, item)
    }

    /// Does the relation hold for `item`?
    ///
    /// Closed-world reading: positive binding → `true`; negative,
    /// conflicting, or unspecified → `false`. Use
    /// [`crate::three_valued::holds3`] for the §4 three-valued reading.
    pub fn holds(&self, item: &Item) -> bool {
        self.bind(item).truth() == Some(Truth::Positive)
    }

    /// Replace the entire tuple set (used by the physical operators —
    /// consolidate/explicate — which rewrite a relation's form).
    pub(crate) fn replace_tuples(&mut self, tuples: BTreeMap<Item, Truth>) {
        self.tuples = tuples;
    }

    /// Build a relation from parts, checking every item.
    pub fn from_tuples(
        schema: Arc<Schema>,
        preemption: Preemption,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<HRelation> {
        let mut r = HRelation::with_preemption(schema, preemption);
        for t in tuples {
            r.assert_item(t.item, t.truth)?;
        }
        Ok(r)
    }
}

impl std::fmt::Debug for HRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "HRelation {:?} [{}]", self.schema, self.preemption)?;
        for (item, truth) in self.iter() {
            writeln!(f, "  {} {}", truth.sign(), self.schema.display_item(item))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use hrdm_hierarchy::HierarchyGraph;

    fn flying_schema() -> Arc<Schema> {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_instance("Paul", penguin).unwrap();
        Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]))
    }

    #[test]
    fn insert_remove_len() {
        let s = flying_schema();
        let mut r = HRelation::new(s);
        assert!(r.is_empty());
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        assert_eq!(r.len(), 1);
        let bird = r.item(&["Bird"]).unwrap();
        assert_eq!(r.stored(&bird), Some(Truth::Positive));
        assert!(r.contains(&bird));
        assert_eq!(r.remove(&bird), Some(Truth::Positive));
        assert!(r.is_empty());
        assert_eq!(r.remove(&bird), None);
    }

    #[test]
    fn duplicate_assertion_is_idempotent() {
        let s = flying_schema();
        let mut r = HRelation::new(s);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        assert_eq!(r.len(), 1, "set semantics: duplicates eliminated");
    }

    #[test]
    fn contradictory_assertion_rejected() {
        let s = flying_schema();
        let mut r = HRelation::new(s);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        assert!(matches!(
            r.assert_fact(&["Bird"], Truth::Negative),
            Err(CoreError::ContradictoryAssertion(_))
        ));
        // insert() may overwrite deliberately.
        let bird = r.item(&["Bird"]).unwrap();
        let old = r.insert(Tuple::negative(bird.clone())).unwrap();
        assert_eq!(old, Some(Truth::Positive));
        assert_eq!(r.stored(&bird), Some(Truth::Negative));
    }

    #[test]
    fn iteration_is_deterministic_and_sorted() {
        let s = flying_schema();
        let mut r = HRelation::new(s);
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        let items: Vec<Item> = r.items().cloned().collect();
        let mut sorted = items.clone();
        sorted.sort();
        assert_eq!(items, sorted);
        assert_eq!(r.tuples().len(), 2);
    }

    #[test]
    fn from_tuples_checks_contradictions() {
        let s = flying_schema();
        let bird = s.item(&["Bird"]).unwrap();
        let result = HRelation::from_tuples(
            s.clone(),
            Preemption::OffPath,
            vec![Tuple::positive(bird.clone()), Tuple::negative(bird)],
        );
        assert!(matches!(result, Err(CoreError::ContradictoryAssertion(_))));
    }

    #[test]
    fn arity_checked_on_insert() {
        let s = flying_schema();
        let mut r = HRelation::new(s);
        let bad = Item::new(vec![]);
        assert!(matches!(
            r.assert_item(bad, Truth::Positive),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn debug_renders_signs_and_items() {
        let s = flying_schema();
        let mut r = HRelation::new(s);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        let d = format!("{r:?}");
        assert!(d.contains("+ ∀Bird"));
        assert!(d.contains("- ∀Penguin"));
        assert!(d.contains("off-path"));
    }
}
