//! Tuples: items with truth values (§2.1).

use std::fmt;

use crate::item::Item;
use crate::truth::Truth;

/// A stored tuple: an [`Item`] plus a [`Truth`] value.
///
/// A positive tuple `+⟨∀A, b⟩` reads "for every element x of A, the
/// relation holds of (x, b)"; a negated tuple reads "…does not hold".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    /// The (possibly composite) item.
    pub item: Item,
    /// Positive (normal) or negative (exception) assertion.
    pub truth: Truth,
}

impl Tuple {
    /// Build a tuple.
    pub fn new(item: Item, truth: Truth) -> Tuple {
        Tuple { item, truth }
    }

    /// A positive tuple over `item`.
    pub fn positive(item: Item) -> Tuple {
        Tuple::new(item, Truth::Positive)
    }

    /// A negated tuple over `item`.
    pub fn negative(item: Item) -> Tuple {
        Tuple::new(item, Truth::Negative)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.truth.sign(), self.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_hierarchy::NodeId;

    fn item() -> Item {
        Item::new(vec![NodeId::from_index(1), NodeId::from_index(2)])
    }

    #[test]
    fn constructors() {
        let t = Tuple::positive(item());
        assert_eq!(t.truth, Truth::Positive);
        let t = Tuple::negative(item());
        assert_eq!(t.truth, Truth::Negative);
        let t = Tuple::new(item(), Truth::Positive);
        assert_eq!(t.item, item());
    }

    #[test]
    fn display_leads_with_sign() {
        assert!(Tuple::positive(item()).to_string().starts_with('+'));
        assert!(Tuple::negative(item()).to_string().starts_with('-'));
    }

    #[test]
    fn tuples_order_by_item_then_truth() {
        let a = Tuple::negative(item());
        let b = Tuple::positive(item());
        assert!(a < b, "Negative < Positive for equal items");
    }
}
