//! A named catalog of domains and relations.
//!
//! The paper pitches the model as "a standard interface providing
//! 'higher level' primitive operators … \[that\] could be used as a
//! back-end for, say, a frame-based knowledge representation system or
//! a semantic net" (§1). [`Catalog`] is that back-end surface: named
//! domain hierarchies and named relations, shared via `Arc` so that
//! relations over the same domain join naturally. The Datalog layer
//! (`hrdm-datalog`) resolves its EDB predicates against a catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use hrdm_hierarchy::{cache, HierarchyGraph, NodeKind};

use crate::error::{CoreError, Result};
use crate::mutation::{CatalogMutation, MutationSink};
use crate::relation::HRelation;
use crate::render::render_table;
use crate::schema::{Attribute, Schema};
use crate::stats::{self, EngineStats};
use crate::tuple::Tuple;

/// Named domains and relations.
#[derive(Default)]
pub struct Catalog {
    domains: BTreeMap<String, Arc<HierarchyGraph>>,
    relations: BTreeMap<String, HRelation>,
    /// Observer notified after every mutation applied via [`mutate`]
    /// (never during [`apply_mutation`] replay).
    ///
    /// [`mutate`]: Catalog::mutate
    /// [`apply_mutation`]: Catalog::apply_mutation
    sink: Option<Box<dyn MutationSink>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a domain hierarchy under a name; returns the shared
    /// handle.
    pub fn add_domain(
        &mut self,
        name: impl Into<String>,
        graph: HierarchyGraph,
    ) -> Arc<HierarchyGraph> {
        self.add_domain_arc(name, Arc::new(graph))
    }

    /// Register an already-shared domain handle (e.g. one restored from
    /// a persisted image, where relations hold the same `Arc`).
    pub fn add_domain_arc(
        &mut self,
        name: impl Into<String>,
        graph: Arc<HierarchyGraph>,
    ) -> Arc<HierarchyGraph> {
        self.domains.insert(name.into(), graph.clone());
        graph
    }

    /// Look up a registered domain.
    pub fn domain(&self, name: &str) -> Result<&Arc<HierarchyGraph>> {
        self.domains
            .get(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Register a relation under a name (replacing any previous one).
    pub fn add_relation(&mut self, name: impl Into<String>, relation: HRelation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut HRelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Iterate relation names in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Iterate domain names in order.
    pub fn domain_names(&self) -> impl Iterator<Item = &str> {
        self.domains.keys().map(|s| s.as_str())
    }

    /// Snapshot the engine counters (closure cache, subsumption cache,
    /// operator wall times). The counters are process-wide; the catalog
    /// fronts them because it owns the graphs the caches are keyed by.
    pub fn engine_stats(&self) -> EngineStats {
        stats::snapshot()
    }

    /// Zero the engine counters (resident cache entries are kept).
    pub fn reset_engine_stats(&self) {
        stats::reset();
    }

    /// Pre-build both closure kinds for a domain so the first operator
    /// over it pays no build latency.
    pub fn warm_domain(&self, name: &str) -> Result<()> {
        let g = self.domain(name)?;
        cache::closure(g);
        cache::subset_closure(g);
        Ok(())
    }

    /// Unregister a domain and drop its cached closures. Relations still
    /// holding the `Arc` keep working; only the shared cache entries are
    /// reclaimed deterministically.
    pub fn drop_domain(&mut self, name: &str) -> Result<Arc<HierarchyGraph>> {
        let g = self
            .domains
            .remove(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))?;
        cache::invalidate_graph(g.graph_id());
        Ok(g)
    }

    /// Mutate a registered domain through copy-on-write.
    ///
    /// If the graph is uniquely owned it is mutated in place and its
    /// generation bump orphans the old cached closures; if shared (a
    /// relation schema still holds it), the catalog's copy diverges onto
    /// a fresh graph id and existing relations keep the old version —
    /// either way no cached closure can ever serve stale reachability.
    pub fn update_domain<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut HierarchyGraph) -> hrdm_hierarchy::Result<T>,
    ) -> Result<T> {
        let arc = self
            .domains
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))?;
        f(Arc::make_mut(arc)).map_err(CoreError::Hierarchy)
    }

    /// Unregister a relation.
    pub fn drop_relation(&mut self, name: &str) -> Result<HRelation> {
        self.relations
            .remove(name)
            .ok_or_else(|| CoreError::NotFound {
                kind: "relation",
                name: name.to_string(),
            })
    }

    /// Install (or clear) the mutation observer; returns the previous
    /// one. The sink fires after every successful [`Catalog::mutate`],
    /// which is how a durable wrapper journals changes without
    /// re-implementing the catalog surface.
    pub fn set_mutation_sink(
        &mut self,
        sink: Option<Box<dyn MutationSink>>,
    ) -> Option<Box<dyn MutationSink>> {
        std::mem::replace(&mut self.sink, sink)
    }

    /// Is a mutation observer currently installed?
    pub fn has_mutation_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Apply a logical mutation *without* notifying the sink — the
    /// replay path. Recovery reads mutations back out of a journal and
    /// must not re-journal them.
    ///
    /// Validation happens before any state changes, so a failed
    /// mutation leaves the catalog untouched.
    pub fn apply_mutation(&mut self, m: &CatalogMutation) -> Result<()> {
        match m {
            CatalogMutation::CreateDomain { name } => {
                if self.domains.contains_key(name) {
                    return Err(CoreError::DuplicateName {
                        kind: "domain",
                        name: name.clone(),
                    });
                }
                self.add_domain(name.clone(), HierarchyGraph::new(name.as_str()));
                Ok(())
            }
            CatalogMutation::DropDomain { name } => {
                let arc = self.domains.get(name).ok_or_else(|| CoreError::NotFound {
                    kind: "domain",
                    name: name.clone(),
                })?;
                if let Some(rel) = self.relations.iter().find_map(|(rn, r)| {
                    r.schema()
                        .attributes()
                        .iter()
                        .any(|a| Arc::ptr_eq(a.domain(), arc))
                        .then_some(rn)
                }) {
                    return Err(CoreError::InUse {
                        kind: "domain",
                        name: name.clone(),
                        by: rel.clone(),
                    });
                }
                self.drop_domain(name).map(|_| ())
            }
            CatalogMutation::AddClass {
                domain,
                name,
                parents,
            } => self.mutate_domain_resharing(domain, |g| {
                let ids = parents
                    .iter()
                    .map(|p| g.node(p))
                    .collect::<hrdm_hierarchy::Result<Vec<_>>>()?;
                g.add_class_multi(name.as_str(), &ids).map(|_| ())
            }),
            CatalogMutation::AddInstance {
                domain,
                name,
                parents,
            } => self.mutate_domain_resharing(domain, |g| {
                let ids = parents
                    .iter()
                    .map(|p| g.node(p))
                    .collect::<hrdm_hierarchy::Result<Vec<_>>>()?;
                g.add_instance_multi(name.as_str(), &ids).map(|_| ())
            }),
            CatalogMutation::Prefer {
                domain,
                stronger,
                weaker,
            } => self.mutate_domain_resharing(domain, |g| {
                let s = g.node(stronger)?;
                let w = g.node(weaker)?;
                hrdm_hierarchy::preference::prefer(g, s, w)
            }),
            CatalogMutation::CreateRelation { name, attributes } => {
                if self.relations.contains_key(name) {
                    return Err(CoreError::DuplicateName {
                        kind: "relation",
                        name: name.clone(),
                    });
                }
                let pairs: Vec<(&str, &str)> = attributes
                    .iter()
                    .map(|(a, d)| (a.as_str(), d.as_str()))
                    .collect();
                let schema = self.schema(&pairs)?;
                self.add_relation(name.clone(), HRelation::new(schema));
                Ok(())
            }
            CatalogMutation::DropRelation { name } => self.drop_relation(name).map(|_| ()),
            CatalogMutation::Assert {
                relation,
                values,
                truth,
            } => {
                let rel = self.require_relation_mut(relation)?;
                let names: Vec<&str> = values.iter().map(String::as_str).collect();
                rel.assert_fact(&names, *truth)
            }
            CatalogMutation::Retract { relation, values } => {
                let rel = self.require_relation_mut(relation)?;
                let names: Vec<&str> = values.iter().map(String::as_str).collect();
                let item = rel.item(&names)?;
                match rel.remove(&item) {
                    Some(_) => Ok(()),
                    None => Err(CoreError::NotFound {
                        kind: "tuple",
                        name: values.join(", "),
                    }),
                }
            }
            CatalogMutation::SetPreemption { relation, mode } => {
                let rel = self.require_relation_mut(relation)?;
                rel.set_preemption(*mode);
                Ok(())
            }
        }
    }

    /// Apply a logical mutation and notify the installed sink.
    ///
    /// The sink only sees mutations that succeeded, in application
    /// order — exactly the sequence a replay needs.
    pub fn mutate(&mut self, m: CatalogMutation) -> Result<()> {
        self.apply_mutation(&m)?;
        if let Some(sink) = &mut self.sink {
            sink.on_mutation(&m);
        }
        Ok(())
    }

    /// Update a domain through [`Catalog::update_domain`], then re-bind
    /// every relation schema that held the pre-update `Arc` to the new
    /// one.
    ///
    /// `update_domain`'s copy-on-write leaves relations on the graph
    /// version they were created with — correct for ad-hoc readers, but
    /// the mutation vocabulary needs the catalog to stay *internally
    /// shared* so a checkpoint image can resolve every relation's
    /// domains by identity. Node ids are append-only, so existing items
    /// stay valid on the grown graph.
    fn mutate_domain_resharing(
        &mut self,
        domain: &str,
        f: impl FnOnce(&mut HierarchyGraph) -> hrdm_hierarchy::Result<()>,
    ) -> Result<()> {
        let arc = self
            .domains
            .get(domain)
            .ok_or_else(|| CoreError::NotFound {
                kind: "domain",
                name: domain.to_string(),
            })?;
        if Arc::strong_count(arc) == 1 {
            // Uniquely owned: mutated in place, no reader can diverge.
            return self.update_domain(domain, f);
        }
        let old = arc.clone();
        if let Err(e) = self.update_domain(domain, f) {
            // `Arc::make_mut` may have diverged the catalog's copy
            // before `f` failed; put the original handle back so a
            // failed mutation leaves even the `Arc` identity untouched.
            self.domains.insert(domain.to_string(), old);
            return Err(e);
        }
        let new = self.domain(domain).expect("still registered").clone();
        debug_assert!(!Arc::ptr_eq(&old, &new), "shared arc must diverge");
        let stale: Vec<String> = self
            .relations
            .iter()
            .filter(|(_, r)| {
                r.schema()
                    .attributes()
                    .iter()
                    .any(|a| Arc::ptr_eq(a.domain(), &old))
            })
            .map(|(n, _)| n.clone())
            .collect();
        for name in stale {
            let rel = self.relations.remove(&name).expect("listed above");
            let attrs: Vec<Attribute> = rel
                .schema()
                .attributes()
                .iter()
                .map(|a| {
                    if Arc::ptr_eq(a.domain(), &old) {
                        Attribute::new(a.name(), new.clone())
                    } else {
                        a.clone()
                    }
                })
                .collect();
            let schema = Arc::new(Schema::new(attrs));
            let mut rebuilt = HRelation::with_preemption(schema, rel.preemption());
            for (item, truth) in rel.iter() {
                rebuilt
                    .insert(Tuple::new(item.clone(), truth))
                    .expect("node ids are stable across domain growth");
            }
            self.relations.insert(name, rebuilt);
        }
        Ok(())
    }

    fn require_relation_mut(&mut self, name: &str) -> Result<&mut HRelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CoreError::NotFound {
                kind: "relation",
                name: name.to_string(),
            })
    }

    /// Render the whole catalog with stable fields only: every domain's
    /// node/edge structure and every relation's stored tuples, in name
    /// order, no wall times or pointers. Two catalogs with equal
    /// `render_stable` output hold the same logical state — the byte
    /// parity check the crash-recovery harness uses.
    pub fn render_stable(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, g) in &self.domains {
            let _ = writeln!(
                out,
                "domain {name} ({} nodes, {} edges)",
                g.len(),
                g.edge_count()
            );
            for id in g.node_ids() {
                let kind = match g.kind(id) {
                    NodeKind::Domain => "domain",
                    NodeKind::Class => "class",
                    NodeKind::Instance => "instance",
                };
                let mut parents: Vec<String> = g
                    .parents_with_kind(id)
                    .iter()
                    .map(|&(p, k)| {
                        if k == hrdm_hierarchy::EdgeKind::Subset {
                            g.name(p).to_string()
                        } else {
                            format!("~{}", g.name(p))
                        }
                    })
                    .collect();
                parents.sort();
                let _ = writeln!(
                    out,
                    "  {} [{kind}]{}{}",
                    g.name(id).as_str(),
                    if parents.is_empty() { "" } else { " < " },
                    parents.join(", ")
                );
            }
        }
        for (name, rel) in &self.relations {
            let _ = writeln!(out, "relation {name} [{}]", rel.preemption());
            for line in render_table(rel).lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }

    /// Build a schema from registered domain names, attribute names
    /// doubling as domain names.
    pub fn schema(&self, attrs: &[(&str, &str)]) -> Result<Arc<Schema>> {
        let attributes = attrs
            .iter()
            .map(|&(attr, dom)| {
                Ok(crate::schema::Attribute::new(
                    attr,
                    self.domain(dom)?.clone(),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(Schema::new(attributes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preemption::Preemption;
    use crate::truth::Truth;

    fn sample_graph() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        g
    }

    #[test]
    fn domains_are_shared() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        assert!(Arc::ptr_eq(&g, cat.domain("Animal").unwrap()));
        assert!(cat.domain("Plant").is_err());
        assert_eq!(cat.domain_names().collect::<Vec<_>>(), vec!["Animal"]);
    }

    #[test]
    fn schemas_from_catalog_are_join_compatible() {
        let mut cat = Catalog::new();
        cat.add_domain("Animal", sample_graph());
        let s1 = cat.schema(&[("Animal", "Animal")]).unwrap();
        let s2 = cat.schema(&[("Animal", "Animal")]).unwrap();
        assert!(s1.compatible(&s2));
        assert!(cat.schema(&[("X", "Nope")]).is_err());
    }

    #[test]
    fn relations_round_trip() {
        let mut cat = Catalog::new();
        cat.add_domain("Animal", sample_graph());
        let schema = cat.schema(&[("Creature", "Animal")]).unwrap();
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        cat.add_relation("Flies", r);
        assert_eq!(cat.relation("Flies").unwrap().len(), 1);
        cat.relation_mut("Flies")
            .unwrap()
            .assert_fact(&["Tweety"], Truth::Positive)
            .unwrap();
        assert_eq!(cat.relation("Flies").unwrap().len(), 2);
        assert!(cat.relation("Walks").is_err());
        assert_eq!(cat.relation_names().collect::<Vec<_>>(), vec!["Flies"]);
    }

    #[test]
    fn warm_domain_prebuilds_closures() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        cat.warm_domain("Animal").unwrap();
        let before = cat.engine_stats();
        // Both closure kinds are resident: these hit, never build.
        cache::closure(&g);
        cache::subset_closure(&g);
        let after = cat.engine_stats();
        assert_eq!(after.closure_misses, before.closure_misses);
        assert!(after.closure_hits >= before.closure_hits + 2);
        assert!(cat.warm_domain("Nope").is_err());
    }

    #[test]
    fn drop_domain_evicts_cache_entries() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        cat.warm_domain("Animal").unwrap();
        let dropped = cat.drop_domain("Animal").unwrap();
        assert!(Arc::ptr_eq(&g, &dropped));
        assert!(cat.domain("Animal").is_err());
        assert!(cat.drop_domain("Animal").is_err());
        // The dropped graph's entries are gone: touching it rebuilds.
        let before = cat.engine_stats();
        cache::closure(&g);
        let after = cat.engine_stats();
        assert_eq!(after.closure_misses, before.closure_misses + 1);
    }

    /// The Fig. 1 world expressed as a mutation script.
    fn fig1_script() -> Vec<CatalogMutation> {
        use CatalogMutation::*;
        let one = |s: &str| vec![s.to_string()];
        vec![
            CreateDomain {
                name: "Animal".into(),
            },
            AddClass {
                domain: "Animal".into(),
                name: "Bird".into(),
                parents: one("Animal"),
            },
            AddClass {
                domain: "Animal".into(),
                name: "Penguin".into(),
                parents: one("Bird"),
            },
            AddInstance {
                domain: "Animal".into(),
                name: "Paul".into(),
                parents: one("Penguin"),
            },
            CreateRelation {
                name: "Flies".into(),
                attributes: vec![("Creature".into(), "Animal".into())],
            },
            Assert {
                relation: "Flies".into(),
                values: one("Bird"),
                truth: Truth::Positive,
            },
            Assert {
                relation: "Flies".into(),
                values: one("Penguin"),
                truth: Truth::Negative,
            },
        ]
    }

    #[test]
    fn mutation_script_builds_a_world() {
        let mut cat = Catalog::new();
        for m in fig1_script() {
            cat.mutate(m).unwrap();
        }
        let flies = cat.relation("Flies").unwrap();
        assert_eq!(flies.len(), 2);
        assert!(!flies.holds(&flies.item(&["Paul"]).unwrap()));
        // Replaying the same script onto a fresh catalog yields the
        // same stable rendering — the recovery invariant.
        let mut replayed = Catalog::new();
        for m in fig1_script() {
            replayed.apply_mutation(&m).unwrap();
        }
        assert_eq!(cat.render_stable(), replayed.render_stable());
        assert!(replayed.render_stable().contains("Penguin [class] < Bird"));
    }

    #[test]
    fn mutation_sink_sees_successful_mutations_only() {
        struct Recorder(std::sync::Arc<std::sync::Mutex<Vec<String>>>);
        impl crate::mutation::MutationSink for Recorder {
            fn on_mutation(&mut self, m: &CatalogMutation) {
                self.0.lock().unwrap().push(m.kind().to_string());
            }
        }
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut cat = Catalog::new();
        assert!(!cat.has_mutation_sink());
        cat.set_mutation_sink(Some(Box::new(Recorder(log.clone()))));
        assert!(cat.has_mutation_sink());
        cat.mutate(CatalogMutation::CreateDomain { name: "D".into() })
            .unwrap();
        // A failing mutation must not reach the sink.
        assert!(cat
            .mutate(CatalogMutation::CreateDomain { name: "D".into() })
            .is_err());
        // Replay bypasses the sink entirely.
        cat.apply_mutation(&CatalogMutation::AddClass {
            domain: "D".into(),
            name: "A".into(),
            parents: vec!["D".into()],
        })
        .unwrap();
        assert_eq!(*log.lock().unwrap(), vec!["create-domain"]);
        assert!(cat.set_mutation_sink(None).is_some());
    }

    #[test]
    fn mutations_fail_atomically() {
        let mut cat = Catalog::new();
        for m in fig1_script() {
            cat.mutate(m).unwrap();
        }
        let before = cat.render_stable();
        use CatalogMutation::*;
        let bad: Vec<CatalogMutation> = vec![
            AddClass {
                domain: "Animal".into(),
                name: "Bird".into(), // duplicate
                parents: vec!["Animal".into()],
            },
            AddInstance {
                domain: "Nope".into(),
                name: "x".into(),
                parents: vec!["Nope".into()],
            },
            DropDomain {
                name: "Plant".into(),
            },
            DropDomain {
                name: "Animal".into(), // still referenced by Flies
            },
            DropRelation {
                name: "Walks".into(),
            },
            Assert {
                relation: "Walks".into(),
                values: vec!["Bird".into()],
                truth: Truth::Positive,
            },
            Retract {
                relation: "Flies".into(),
                values: vec!["Paul".into()], // not stored
            },
            Prefer {
                domain: "Animal".into(),
                stronger: "Bird".into(),
                weaker: "Ghost".into(),
            },
            CreateRelation {
                name: "Flies".into(), // duplicate
                attributes: vec![("V".into(), "Animal".into())],
            },
        ];
        for m in bad {
            assert!(cat.mutate(m.clone()).is_err(), "{m} should fail");
            assert_eq!(cat.render_stable(), before, "{m} must not change state");
        }
    }

    #[test]
    fn drop_and_set_preemption_mutations() {
        let mut cat = Catalog::new();
        for m in fig1_script() {
            cat.mutate(m).unwrap();
        }
        cat.mutate(CatalogMutation::SetPreemption {
            relation: "Flies".into(),
            mode: Preemption::OnPath,
        })
        .unwrap();
        assert_eq!(
            cat.relation("Flies").unwrap().preemption(),
            Preemption::OnPath
        );
        cat.mutate(CatalogMutation::Retract {
            relation: "Flies".into(),
            values: vec!["Penguin".into()],
        })
        .unwrap();
        assert_eq!(cat.relation("Flies").unwrap().len(), 1);
        cat.mutate(CatalogMutation::DropRelation {
            name: "Flies".into(),
        })
        .unwrap();
        assert!(cat.relation("Flies").is_err());
        cat.mutate(CatalogMutation::DropDomain {
            name: "Animal".into(),
        })
        .unwrap();
        assert!(cat.domain("Animal").is_err());
        assert_eq!(cat.render_stable(), "");
    }

    #[test]
    fn update_domain_bumps_version_and_preserves_shared_readers() {
        let mut cat = Catalog::new();
        let shared = cat.add_domain("Animal", sample_graph());
        let old_version = shared.version();
        // `shared` is still held outside, so make_mut must clone: the
        // catalog copy gets a fresh graph id, the reader keeps the old.
        let woody = cat
            .update_domain("Animal", |g| {
                let bird = g.node("Bird")?;
                g.add_instance("Woody", bird)
            })
            .unwrap();
        assert_eq!(shared.version(), old_version);
        assert!(shared.node("Woody").is_err());
        let updated = cat.domain("Animal").unwrap();
        assert_eq!(updated.node("Woody").unwrap(), woody);
        assert_ne!(updated.version().0, old_version.0);

        // Uniquely owned now: in-place mutation bumps the generation.
        drop(shared);
        let mid = cat.domain("Animal").unwrap().version();
        cat.update_domain("Animal", |g| {
            let bird = g.node("Bird")?;
            g.add_instance("Buzz", bird)
        })
        .unwrap();
        let end = cat.domain("Animal").unwrap().version();
        assert_eq!(end.0, mid.0);
        assert!(end.1 > mid.1);

        // Hierarchy errors surface as CoreError::Hierarchy.
        let err = cat.update_domain("Animal", |g| {
            let root = g.root();
            g.add_instance("Woody", root) // duplicate name
        });
        assert!(matches!(err, Err(CoreError::Hierarchy(_))));
        assert!(cat.update_domain("Nope", |_| Ok(())).is_err());
    }
}
