//! A named catalog of domains and relations.
//!
//! The paper pitches the model as "a standard interface providing
//! 'higher level' primitive operators … \[that\] could be used as a
//! back-end for, say, a frame-based knowledge representation system or
//! a semantic net" (§1). [`Catalog`] is that back-end surface: named
//! domain hierarchies and named relations, shared via `Arc` so that
//! relations over the same domain join naturally. The Datalog layer
//! (`hrdm-datalog`) resolves its EDB predicates against a catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use hrdm_hierarchy::HierarchyGraph;

use crate::error::{CoreError, Result};
use crate::relation::HRelation;
use crate::schema::Schema;

/// Named domains and relations.
#[derive(Default)]
pub struct Catalog {
    domains: BTreeMap<String, Arc<HierarchyGraph>>,
    relations: BTreeMap<String, HRelation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a domain hierarchy under a name; returns the shared
    /// handle.
    pub fn add_domain(
        &mut self,
        name: impl Into<String>,
        graph: HierarchyGraph,
    ) -> Arc<HierarchyGraph> {
        self.add_domain_arc(name, Arc::new(graph))
    }

    /// Register an already-shared domain handle (e.g. one restored from
    /// a persisted image, where relations hold the same `Arc`).
    pub fn add_domain_arc(
        &mut self,
        name: impl Into<String>,
        graph: Arc<HierarchyGraph>,
    ) -> Arc<HierarchyGraph> {
        self.domains.insert(name.into(), graph.clone());
        graph
    }

    /// Look up a registered domain.
    pub fn domain(&self, name: &str) -> Result<&Arc<HierarchyGraph>> {
        self.domains
            .get(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Register a relation under a name (replacing any previous one).
    pub fn add_relation(&mut self, name: impl Into<String>, relation: HRelation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut HRelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Iterate relation names in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Iterate domain names in order.
    pub fn domain_names(&self) -> impl Iterator<Item = &str> {
        self.domains.keys().map(|s| s.as_str())
    }

    /// Build a schema from registered domain names, attribute names
    /// doubling as domain names.
    pub fn schema(&self, attrs: &[(&str, &str)]) -> Result<Arc<Schema>> {
        let attributes = attrs
            .iter()
            .map(|&(attr, dom)| {
                Ok(crate::schema::Attribute::new(attr, self.domain(dom)?.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(Schema::new(attributes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Truth;

    fn sample_graph() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        g
    }

    #[test]
    fn domains_are_shared() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        assert!(Arc::ptr_eq(&g, cat.domain("Animal").unwrap()));
        assert!(cat.domain("Plant").is_err());
        assert_eq!(cat.domain_names().collect::<Vec<_>>(), vec!["Animal"]);
    }

    #[test]
    fn schemas_from_catalog_are_join_compatible() {
        let mut cat = Catalog::new();
        cat.add_domain("Animal", sample_graph());
        let s1 = cat.schema(&[("Animal", "Animal")]).unwrap();
        let s2 = cat.schema(&[("Animal", "Animal")]).unwrap();
        assert!(s1.compatible(&s2));
        assert!(cat.schema(&[("X", "Nope")]).is_err());
    }

    #[test]
    fn relations_round_trip() {
        let mut cat = Catalog::new();
        cat.add_domain("Animal", sample_graph());
        let schema = cat.schema(&[("Creature", "Animal")]).unwrap();
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        cat.add_relation("Flies", r);
        assert_eq!(cat.relation("Flies").unwrap().len(), 1);
        cat.relation_mut("Flies")
            .unwrap()
            .assert_fact(&["Tweety"], Truth::Positive)
            .unwrap();
        assert_eq!(cat.relation("Flies").unwrap().len(), 2);
        assert!(cat.relation("Walks").is_err());
        assert_eq!(cat.relation_names().collect::<Vec<_>>(), vec!["Flies"]);
    }
}
