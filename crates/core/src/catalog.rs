//! A named catalog of domains and relations.
//!
//! The paper pitches the model as "a standard interface providing
//! 'higher level' primitive operators … \[that\] could be used as a
//! back-end for, say, a frame-based knowledge representation system or
//! a semantic net" (§1). [`Catalog`] is that back-end surface: named
//! domain hierarchies and named relations, shared via `Arc` so that
//! relations over the same domain join naturally. The Datalog layer
//! (`hrdm-datalog`) resolves its EDB predicates against a catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use hrdm_hierarchy::{cache, HierarchyGraph};

use crate::error::{CoreError, Result};
use crate::relation::HRelation;
use crate::schema::Schema;
use crate::stats::{self, EngineStats};

/// Named domains and relations.
#[derive(Default)]
pub struct Catalog {
    domains: BTreeMap<String, Arc<HierarchyGraph>>,
    relations: BTreeMap<String, HRelation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a domain hierarchy under a name; returns the shared
    /// handle.
    pub fn add_domain(
        &mut self,
        name: impl Into<String>,
        graph: HierarchyGraph,
    ) -> Arc<HierarchyGraph> {
        self.add_domain_arc(name, Arc::new(graph))
    }

    /// Register an already-shared domain handle (e.g. one restored from
    /// a persisted image, where relations hold the same `Arc`).
    pub fn add_domain_arc(
        &mut self,
        name: impl Into<String>,
        graph: Arc<HierarchyGraph>,
    ) -> Arc<HierarchyGraph> {
        self.domains.insert(name.into(), graph.clone());
        graph
    }

    /// Look up a registered domain.
    pub fn domain(&self, name: &str) -> Result<&Arc<HierarchyGraph>> {
        self.domains
            .get(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Register a relation under a name (replacing any previous one).
    pub fn add_relation(&mut self, name: impl Into<String>, relation: HRelation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut HRelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Iterate relation names in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Iterate domain names in order.
    pub fn domain_names(&self) -> impl Iterator<Item = &str> {
        self.domains.keys().map(|s| s.as_str())
    }

    /// Snapshot the engine counters (closure cache, subsumption cache,
    /// operator wall times). The counters are process-wide; the catalog
    /// fronts them because it owns the graphs the caches are keyed by.
    pub fn engine_stats(&self) -> EngineStats {
        stats::snapshot()
    }

    /// Zero the engine counters (resident cache entries are kept).
    pub fn reset_engine_stats(&self) {
        stats::reset();
    }

    /// Pre-build both closure kinds for a domain so the first operator
    /// over it pays no build latency.
    pub fn warm_domain(&self, name: &str) -> Result<()> {
        let g = self.domain(name)?;
        cache::closure(g);
        cache::subset_closure(g);
        Ok(())
    }

    /// Unregister a domain and drop its cached closures. Relations still
    /// holding the `Arc` keep working; only the shared cache entries are
    /// reclaimed deterministically.
    pub fn drop_domain(&mut self, name: &str) -> Result<Arc<HierarchyGraph>> {
        let g = self
            .domains
            .remove(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))?;
        cache::invalidate_graph(g.graph_id());
        Ok(g)
    }

    /// Mutate a registered domain through copy-on-write.
    ///
    /// If the graph is uniquely owned it is mutated in place and its
    /// generation bump orphans the old cached closures; if shared (a
    /// relation schema still holds it), the catalog's copy diverges onto
    /// a fresh graph id and existing relations keep the old version —
    /// either way no cached closure can ever serve stale reachability.
    pub fn update_domain<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut HierarchyGraph) -> hrdm_hierarchy::Result<T>,
    ) -> Result<T> {
        let arc = self
            .domains
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))?;
        f(Arc::make_mut(arc)).map_err(CoreError::Hierarchy)
    }

    /// Build a schema from registered domain names, attribute names
    /// doubling as domain names.
    pub fn schema(&self, attrs: &[(&str, &str)]) -> Result<Arc<Schema>> {
        let attributes = attrs
            .iter()
            .map(|&(attr, dom)| {
                Ok(crate::schema::Attribute::new(
                    attr,
                    self.domain(dom)?.clone(),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(Schema::new(attributes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Truth;

    fn sample_graph() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        g
    }

    #[test]
    fn domains_are_shared() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        assert!(Arc::ptr_eq(&g, cat.domain("Animal").unwrap()));
        assert!(cat.domain("Plant").is_err());
        assert_eq!(cat.domain_names().collect::<Vec<_>>(), vec!["Animal"]);
    }

    #[test]
    fn schemas_from_catalog_are_join_compatible() {
        let mut cat = Catalog::new();
        cat.add_domain("Animal", sample_graph());
        let s1 = cat.schema(&[("Animal", "Animal")]).unwrap();
        let s2 = cat.schema(&[("Animal", "Animal")]).unwrap();
        assert!(s1.compatible(&s2));
        assert!(cat.schema(&[("X", "Nope")]).is_err());
    }

    #[test]
    fn relations_round_trip() {
        let mut cat = Catalog::new();
        cat.add_domain("Animal", sample_graph());
        let schema = cat.schema(&[("Creature", "Animal")]).unwrap();
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        cat.add_relation("Flies", r);
        assert_eq!(cat.relation("Flies").unwrap().len(), 1);
        cat.relation_mut("Flies")
            .unwrap()
            .assert_fact(&["Tweety"], Truth::Positive)
            .unwrap();
        assert_eq!(cat.relation("Flies").unwrap().len(), 2);
        assert!(cat.relation("Walks").is_err());
        assert_eq!(cat.relation_names().collect::<Vec<_>>(), vec!["Flies"]);
    }

    #[test]
    fn warm_domain_prebuilds_closures() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        cat.warm_domain("Animal").unwrap();
        let before = cat.engine_stats();
        // Both closure kinds are resident: these hit, never build.
        cache::closure(&g);
        cache::subset_closure(&g);
        let after = cat.engine_stats();
        assert_eq!(after.closure_misses, before.closure_misses);
        assert!(after.closure_hits >= before.closure_hits + 2);
        assert!(cat.warm_domain("Nope").is_err());
    }

    #[test]
    fn drop_domain_evicts_cache_entries() {
        let mut cat = Catalog::new();
        let g = cat.add_domain("Animal", sample_graph());
        cat.warm_domain("Animal").unwrap();
        let dropped = cat.drop_domain("Animal").unwrap();
        assert!(Arc::ptr_eq(&g, &dropped));
        assert!(cat.domain("Animal").is_err());
        assert!(cat.drop_domain("Animal").is_err());
        // The dropped graph's entries are gone: touching it rebuilds.
        let before = cat.engine_stats();
        cache::closure(&g);
        let after = cat.engine_stats();
        assert_eq!(after.closure_misses, before.closure_misses + 1);
    }

    #[test]
    fn update_domain_bumps_version_and_preserves_shared_readers() {
        let mut cat = Catalog::new();
        let shared = cat.add_domain("Animal", sample_graph());
        let old_version = shared.version();
        // `shared` is still held outside, so make_mut must clone: the
        // catalog copy gets a fresh graph id, the reader keeps the old.
        let woody = cat
            .update_domain("Animal", |g| {
                let bird = g.node("Bird")?;
                g.add_instance("Woody", bird)
            })
            .unwrap();
        assert_eq!(shared.version(), old_version);
        assert!(shared.node("Woody").is_err());
        let updated = cat.domain("Animal").unwrap();
        assert_eq!(updated.node("Woody").unwrap(), woody);
        assert_ne!(updated.version().0, old_version.0);

        // Uniquely owned now: in-place mutation bumps the generation.
        drop(shared);
        let mid = cat.domain("Animal").unwrap().version();
        cat.update_domain("Animal", |g| {
            let bird = g.node("Bird")?;
            g.add_instance("Buzz", bird)
        })
        .unwrap();
        let end = cat.domain("Animal").unwrap().version();
        assert_eq!(end.0, mid.0);
        assert!(end.1 > mid.1);

        // Hierarchy errors surface as CoreError::Hierarchy.
        let err = cat.update_domain("Animal", |g| {
            let root = g.root();
            g.add_instance("Woody", root) // duplicate name
        });
        assert!(matches!(err, Err(CoreError::Hierarchy(_))));
        assert!(cat.update_domain("Nope", |_| Ok(())).is_err());
    }
}
