//! Integrity enforcement: the ambiguity constraint at transaction
//! commit (§3.1).
//!
//! "The maintenance of consistency is a central database precept.
//! Whenever an update is made we require that the update does not create
//! an unresolved conflict. If an update creates a conflict, within the
//! same transaction, before the update is committed, other updates must
//! be made that resolve the conflict, and themselves create no new
//! unresolved conflict."
//!
//! A [`Transaction`] batches inserts and deletes against a scratch copy
//! and checks the ambiguity constraint once at [`Transaction::commit`];
//! the base relation is replaced only if the whole batch is consistent.
//! The crate imposes no automatic conflict-resolution policy: "We
//! require explicit conflict resolution in the data model …. A front end
//! can easily be added to provide any desired conflict resolution
//! semantics, including left precedence, by compiling a user generated
//! update request into a transaction that … perform\[s\] additional
//! updates for conflict resolution."

use crate::conflict::{find_conflicts, Conflict};
use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::relation::HRelation;
use crate::truth::Truth;

/// Check the ambiguity constraint; `Err(Inconsistent)` lists the
/// conflicted items.
pub fn check_consistency(relation: &HRelation) -> Result<()> {
    let conflicts = find_conflicts(relation);
    if conflicts.is_empty() {
        Ok(())
    } else {
        Err(CoreError::Inconsistent(
            conflicts.into_iter().map(|c| c.item).collect(),
        ))
    }
}

/// A batched update checked for consistency at commit.
///
/// Operations apply immediately to a scratch copy (so reads through
/// [`Transaction::relation`] see uncommitted state); dropping the
/// transaction without committing discards everything.
pub struct Transaction<'a> {
    base: &'a mut HRelation,
    scratch: HRelation,
}

impl<'a> Transaction<'a> {
    /// Open a transaction over `base`.
    pub fn begin(base: &'a mut HRelation) -> Transaction<'a> {
        let scratch = base.clone();
        Transaction { base, scratch }
    }

    /// The uncommitted state.
    pub fn relation(&self) -> &HRelation {
        &self.scratch
    }

    /// Stage an assertion (rejects contradicting an already-staged
    /// truth for the same item).
    pub fn assert_item(&mut self, item: Item, truth: Truth) -> Result<()> {
        self.scratch.assert_item(item, truth)
    }

    /// Name-resolved assertion.
    pub fn assert_fact(&mut self, names: &[&str], truth: Truth) -> Result<()> {
        self.scratch.assert_fact(names, truth)
    }

    /// Stage an overwriting insertion.
    pub fn insert(&mut self, item: Item, truth: Truth) -> Result<Option<Truth>> {
        self.scratch.insert(crate::tuple::Tuple::new(item, truth))
    }

    /// Stage a deletion.
    pub fn delete(&mut self, item: &Item) -> Option<Truth> {
        self.scratch.remove(item)
    }

    /// The conflicts the batch would create if committed now — useful
    /// for front ends that auto-resolve (e.g. left precedence) before
    /// committing.
    pub fn pending_conflicts(&self) -> Vec<Conflict> {
        find_conflicts(&self.scratch)
    }

    /// Validate the ambiguity constraint and publish the batch.
    pub fn commit(self) -> Result<()> {
        self.commit_with(&[])
    }

    /// Like [`Transaction::commit`], additionally enforcing the given
    /// declarative constraints (§3.1's classical integrity constraints,
    /// see [`crate::constraints`]) against the post-batch state.
    pub fn commit_with(self, constraints: &[crate::constraints::Constraint]) -> Result<()> {
        check_consistency(&self.scratch)?;
        crate::constraints::enforce(&self.scratch, constraints)?;
        *self.base = self.scratch;
        Ok(())
    }

    /// Discard the batch (equivalent to dropping the transaction).
    pub fn abort(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    fn respects_schema() -> Arc<Schema> {
        let mut s = HierarchyGraph::new("Student");
        let ob = s.add_class("Obsequious Student", s.root()).unwrap();
        s.add_instance("John", ob).unwrap();
        let mut t = HierarchyGraph::new("Teacher");
        t.add_class("Incoherent Teacher", t.root()).unwrap();
        Arc::new(Schema::new(vec![
            Attribute::new("Student", Arc::new(s)),
            Attribute::new("Teacher", Arc::new(t)),
        ]))
    }

    #[test]
    fn conflicting_batch_rejected_atomically() {
        let mut r = HRelation::new(respects_schema());
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        tx.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        let err = tx.commit().unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(items) if !items.is_empty()));
        assert!(r.is_empty(), "nothing published on failed commit");
    }

    #[test]
    fn resolved_batch_commits() {
        // The same updates plus the §3.1 resolution tuple commit fine.
        let mut r = HRelation::new(respects_schema());
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        tx.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        tx.assert_fact(
            &["Obsequious Student", "Incoherent Teacher"],
            Truth::Positive,
        )
        .unwrap();
        tx.commit().unwrap();
        assert_eq!(r.len(), 3);
        assert!(check_consistency(&r).is_ok());
    }

    #[test]
    fn pending_conflicts_guide_resolution() {
        let mut r = HRelation::new(respects_schema());
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        tx.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        let pending = tx.pending_conflicts();
        assert!(!pending.is_empty());
        // A left-precedence front end would resolve each conflict in
        // favour of the earlier assertion (positive here).
        for c in pending {
            tx.insert(c.item, Truth::Positive).unwrap();
        }
        tx.commit().unwrap();
        assert!(check_consistency(&r).is_ok());
    }

    #[test]
    fn abort_discards_everything() {
        let mut r = HRelation::new(respects_schema());
        r.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        assert_eq!(tx.relation().len(), 2, "reads see uncommitted state");
        tx.abort();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delete_can_resolve_a_conflict() {
        // §3.1: "Such resolution can be through deleting the assertion
        // for either A or B."
        let mut r = HRelation::new(respects_schema());
        r.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        assert!(!tx.pending_conflicts().is_empty());
        let pos = tx
            .relation()
            .item(&["Obsequious Student", "Teacher"])
            .unwrap();
        tx.delete(&pos);
        tx.commit().unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn commit_with_enforces_declarative_constraints() {
        use crate::constraints::Constraint;
        let mut r = HRelation::new(respects_schema());
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        // This fixture's Teacher domain has no instances, so the flat
        // extension is empty — a participation (min-extension) bound
        // rejects the batch.
        let region = tx.relation().schema().universal_item();
        let err = tx
            .commit_with(&[Constraint::MinExtension { region, minimum: 1 }])
            .unwrap_err();
        assert!(matches!(err, CoreError::ConstraintViolations(_)));
        assert!(r.is_empty(), "rejected batch publishes nothing");

        // A satisfiable bound commits fine.
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        let region = tx.relation().schema().universal_item();
        tx.commit_with(&[Constraint::MaxExtension { region, limit: 10 }])
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn staged_contradiction_rejected_inside_transaction() {
        let mut r = HRelation::new(respects_schema());
        let mut tx = Transaction::begin(&mut r);
        tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        assert!(matches!(
            tx.assert_fact(&["Obsequious Student", "Teacher"], Truth::Negative),
            Err(CoreError::ContradictoryAssertion(_))
        ));
    }
}
