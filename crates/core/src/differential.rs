//! Differential evaluation of the [`LogicalPlan`] IR: materialized
//! plans that are maintained under row deltas instead of re-executed.
//!
//! A [`MaterializedPlan`] caches the output of every plan node (one
//! `Arc<HRelation>` per node, post-order). [`MaterializedPlan::apply`]
//! maps a set of base-relation deltas to an output delta by updating
//! the node caches bottom-up:
//!
//! * **Scan** — the delta rows apply directly to the cached relation:
//!   `O(|delta| · log n)`, no evaluation at all.
//! * **Any node whose inputs did not change** — the cached output is
//!   shared as-is (`Arc` bump). A write that touches one branch of a
//!   union never re-evaluates the other branch.
//! * **Consolidate** — hierarchy-aware delete/rederive. A tuple's
//!   redundancy status depends only on its *ancestors* in the
//!   subsumption order (its immediate predecessors, spliced through
//!   eliminated predecessors — and every such predecessor subsumes the
//!   tuple). A changed row at item `d` can therefore only flip the
//!   status of stored tuples subsumed by `d` (the *cone* of the
//!   delta), and those statuses are fully determined by the
//!   ancestor-closure of the cone. Maintenance consolidates just that
//!   closure and splices the result into the cached output — deletions
//!   are non-monotone under preemption, so this is the delete/rederive
//!   step, not a monotone delta rule.
//! * **Every other operator** (select, join, union, intersect, diff,
//!   project, explicate) — recomputed *at the node* from the cached
//!   child outputs, and the output delta is the exact row diff against
//!   the node's previous cache. Input delta in, output delta out; the
//!   saving is structural (untouched subtrees and downstream nodes with
//!   empty deltas are skipped), not yet cone-local. DESIGN.md §12
//!   records the fallback conditions and which operators are
//!   cone-localized.
//!
//! The cone argument for consolidate (and the scan short-circuit) is
//! what makes per-update cost scale with `|delta|`, not `|catalog|`:
//! see `BENCH_ivm.json`. Correctness is anchored the same way as the
//! batch executor's: the `differential_parity` harness proves the
//! maintained relation byte-identical to full recomputation over
//! thousands of random mutation scripts, and any error raised on the
//! differential path is propagated so callers (the HQL view registry)
//! can fall back to full recomputation and use *its* result verbatim.

use std::collections::BTreeMap;
use std::sync::Arc;

use hrdm_obs::metrics::{self, Counter};
use std::sync::OnceLock;

use crate::consolidate;
use crate::delta::RelationDelta;
use crate::error::Result;
use crate::item::Item;
use crate::plan::LogicalPlan;
use crate::relation::HRelation;

/// Default cone-affected tuple count above which the localized
/// consolidate path stops paying for itself (the closure sweep
/// approaches a full rebuild) and the node recomputes instead.
pub const DEFAULT_CONE_LIMIT: usize = 256;

/// Process-global cone limit, initialized from the `HRDM_CONE_LIMIT`
/// environment variable on first use (falling back to
/// [`DEFAULT_CONE_LIMIT`] when unset or unparsable).
fn cone_limit_cell() -> &'static std::sync::atomic::AtomicUsize {
    static CELL: OnceLock<std::sync::atomic::AtomicUsize> = OnceLock::new();
    CELL.get_or_init(|| {
        let initial = std::env::var("HRDM_CONE_LIMIT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CONE_LIMIT);
        std::sync::atomic::AtomicUsize::new(initial)
    })
}

/// The current cone-localization threshold: deltas touching more than
/// this many cone-affected tuples make a consolidate node recompute
/// instead of sweeping. Both sides of the cutoff are byte-identical by
/// construction (the localized path is proven equal to recomputation),
/// so this is purely a cost knob.
pub fn cone_limit() -> usize {
    cone_limit_cell().load(std::sync::atomic::Ordering::Relaxed)
}

/// Override the cone-localization threshold for the whole process
/// (e.g. from an engine configuration layer). `0` forces every
/// consolidate node to recompute; `usize::MAX` always localizes.
pub fn set_cone_limit(limit: usize) {
    cone_limit_cell().store(limit, std::sync::atomic::Ordering::Relaxed);
}

struct IvmMetrics {
    delta_rows: Counter,
    nodes_reused: Counter,
    nodes_localized: Counter,
    nodes_recomputed: Counter,
}

fn obs() -> &'static IvmMetrics {
    static M: OnceLock<IvmMetrics> = OnceLock::new();
    M.get_or_init(|| IvmMetrics {
        delta_rows: metrics::counter("ivm.delta_rows"),
        nodes_reused: metrics::counter("ivm.nodes_reused"),
        nodes_localized: metrics::counter("ivm.nodes_localized"),
        nodes_recomputed: metrics::counter("ivm.nodes_recomputed"),
    })
}

/// How each node of one [`MaterializedPlan::apply`] call was handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainReport {
    /// Nodes whose inputs were untouched: cache shared, zero work.
    pub reused: usize,
    /// Nodes maintained by a cone-localized algorithm (scan delta
    /// application, consolidate delete/rederive).
    pub localized: usize,
    /// Nodes recomputed from their cached children.
    pub recomputed: usize,
}

/// A plan with its per-node outputs materialized, maintainable under
/// base-relation deltas.
///
/// Cloning is cheap (the caches are `Arc`s); [`apply`] is functional —
/// it returns a *new* `MaterializedPlan` sharing every untouched cache
/// with the old one, so a failed maintenance pass leaves the original
/// untouched (the same copy-on-write discipline the engine's write
/// path uses for the world itself).
///
/// [`apply`]: MaterializedPlan::apply
#[derive(Clone)]
pub struct MaterializedPlan {
    /// The full node tree; when built with [`MaterializedPlan::new`]
    /// this is `Consolidate(plan)` so the root cache is the canonical
    /// relation, byte-identical to [`LogicalPlan::execute`].
    plan: LogicalPlan,
    /// Whether a canonicalizing root consolidate was added.
    canonical: bool,
    /// Post-order node outputs; the last entry is the plan's result.
    caches: Vec<Arc<HRelation>>,
}

impl MaterializedPlan {
    /// Materialize `plan` with the canonicalizing root consolidate that
    /// [`LogicalPlan::execute`] applies, so [`relation`] is
    /// byte-identical to `plan.execute()?.relation`.
    ///
    /// [`relation`]: MaterializedPlan::relation
    pub fn new(plan: LogicalPlan) -> Result<MaterializedPlan> {
        MaterializedPlan::build(plan.consolidate(), true)
    }

    /// Materialize `plan` exactly as written, without the root
    /// canonicalize — for derivations whose whole point is a
    /// non-minimal form (a top-level `EXPLICATE`).
    pub fn new_raw(plan: LogicalPlan) -> Result<MaterializedPlan> {
        MaterializedPlan::build(plan, false)
    }

    fn build(plan: LogicalPlan, canonical: bool) -> Result<MaterializedPlan> {
        fn eval(node: &LogicalPlan, caches: &mut Vec<Arc<HRelation>>) -> Result<usize> {
            let child_idx: Vec<usize> = node
                .children()
                .iter()
                .map(|c| eval(c, caches))
                .collect::<Result<_>>()?;
            let inputs: Vec<HRelation> = child_idx.iter().map(|&i| (*caches[i]).clone()).collect();
            let (out, _) = node.apply(inputs)?;
            caches.push(Arc::new(out));
            Ok(caches.len() - 1)
        }
        let mut caches = Vec::new();
        eval(&plan, &mut caches)?;
        Ok(MaterializedPlan {
            plan,
            canonical,
            caches,
        })
    }

    /// The materialized result (canonical when built with [`new`]).
    ///
    /// [`new`]: MaterializedPlan::new
    pub fn relation(&self) -> &HRelation {
        self.caches.last().expect("a plan has at least one node")
    }

    /// The materialized result as its shared cache `Arc` — callers that
    /// store the output can share it instead of cloning the relation.
    pub fn relation_arc(&self) -> Arc<HRelation> {
        Arc::clone(self.caches.last().expect("a plan has at least one node"))
    }

    /// Tuples the canonicalizing root consolidate removed (0 for
    /// [`new_raw`] plans) — matches [`crate::plan::Executed`]'s
    /// `canonicalized_away`.
    ///
    /// [`new_raw`]: MaterializedPlan::new_raw
    pub fn canonicalized_away(&self) -> usize {
        if !self.canonical || self.caches.len() < 2 {
            return 0;
        }
        let input = &self.caches[self.caches.len() - 2];
        input.len() - self.relation().len()
    }

    /// Maintain the materialized outputs under row deltas of the base
    /// relations (keyed by scan name). Returns the updated plan, the
    /// row delta of the *result* relation, and the per-node work
    /// report.
    ///
    /// Any operator error propagates and `self` is left untouched —
    /// the caller decides whether to fall back to full recomputation.
    pub fn apply(
        &self,
        base: &BTreeMap<String, RelationDelta>,
    ) -> Result<(MaterializedPlan, RelationDelta, MaintainReport)> {
        self.apply_with_bases(base, &BTreeMap::new())
    }

    /// [`apply`], plus the post-write base relations themselves (keyed
    /// by scan name, as shared `Arc`s). A scan whose post-write
    /// relation is provided aliases it directly instead of cloning its
    /// cached snapshot and replaying the delta rows — the delta is
    /// still filtered against the old snapshot so downstream cones stay
    /// exact. Callers that hold the stored relations (the HQL view
    /// registry) use this to keep scan maintenance `O(|delta|)`.
    ///
    /// [`apply`]: MaterializedPlan::apply
    pub fn apply_with_bases(
        &self,
        base: &BTreeMap<String, RelationDelta>,
        bases: &BTreeMap<String, Arc<HRelation>>,
    ) -> Result<(MaterializedPlan, RelationDelta, MaintainReport)> {
        let mut span = hrdm_obs::span!("ivm.maintain");
        obs()
            .delta_rows
            .add(base.values().map(|d| d.len() as u64).sum());
        let mut new_caches = Vec::with_capacity(self.caches.len());
        let mut cursor = 0usize;
        let mut report = MaintainReport::default();
        let delta = maintain(
            &self.plan,
            base,
            bases,
            &self.caches,
            &mut cursor,
            &mut new_caches,
            &mut report,
        )?;
        debug_assert_eq!(cursor, self.caches.len(), "traversal covers every cache");
        let m = obs();
        m.nodes_reused.add(report.reused as u64);
        m.nodes_localized.add(report.localized as u64);
        m.nodes_recomputed.add(report.recomputed as u64);
        if span.is_active() {
            span.field_u64("delta_rows", delta.len() as u64);
            span.field_u64("reused", report.reused as u64);
            span.field_u64("localized", report.localized as u64);
            span.field_u64("recomputed", report.recomputed as u64);
        }
        Ok((
            MaterializedPlan {
                plan: self.plan.clone(),
                canonical: self.canonical,
                caches: new_caches,
            },
            delta,
            report,
        ))
    }
}

/// Post-order maintenance of one node. `cursor` walks the old cache
/// vector in the same traversal order the build used, so each node
/// finds its previous output without an index map.
fn maintain(
    node: &LogicalPlan,
    base: &BTreeMap<String, RelationDelta>,
    bases: &BTreeMap<String, Arc<HRelation>>,
    old: &[Arc<HRelation>],
    cursor: &mut usize,
    out: &mut Vec<Arc<HRelation>>,
    report: &mut MaintainReport,
) -> Result<RelationDelta> {
    let mut child_deltas = Vec::new();
    let mut child_idx = Vec::new();
    for c in node.children() {
        child_deltas.push(maintain(c, base, bases, old, cursor, out, report)?);
        child_idx.push(out.len() - 1);
    }
    let my_old = old[*cursor].clone();
    *cursor += 1;

    // Scan: apply the base delta rows directly to the cached snapshot.
    if let LogicalPlan::Scan { name, .. } = node {
        match base.get(name) {
            Some(d) if !d.is_empty() => {
                // Keep the delta exact: drop no-op rows so downstream
                // cones stay as tight as the real change.
                let mut actual = RelationDelta::new();
                for (item, truth) in &d.added {
                    if my_old.stored(item) != Some(*truth) {
                        actual.added.push((item.clone(), *truth));
                    }
                }
                for item in &d.removed {
                    if my_old.stored(item).is_some() {
                        actual.removed.push(item.clone());
                    }
                }
                if actual.is_empty() {
                    report.reused += 1;
                    out.push(my_old);
                    return Ok(actual);
                }
                let new_arc = match bases.get(name) {
                    // The caller holds the post-write relation: alias
                    // it — zero copies, `O(|delta|)` scan maintenance.
                    Some(arc) => {
                        #[cfg(debug_assertions)]
                        {
                            let mut expected = (*my_old).clone();
                            actual.apply_to(&mut expected);
                            debug_assert!(
                                expected.preemption() == arc.preemption()
                                    && expected.iter().eq(arc.iter()),
                                "post-write base for {name:?} must equal the \
                                 cached snapshot plus the recorded delta"
                            );
                        }
                        Arc::clone(arc)
                    }
                    None => {
                        let mut new_rel = (*my_old).clone();
                        actual.apply_to(&mut new_rel);
                        Arc::new(new_rel)
                    }
                };
                report.localized += 1;
                out.push(new_arc);
                return Ok(actual);
            }
            _ => {
                report.reused += 1;
                out.push(my_old);
                return Ok(RelationDelta::new());
            }
        }
    }

    // Untouched inputs: share the cached output verbatim.
    if child_deltas.iter().all(RelationDelta::is_empty) {
        report.reused += 1;
        out.push(my_old);
        return Ok(RelationDelta::new());
    }

    // Consolidate: cone-localized delete/rederive when the delta is
    // small enough to pay off.
    if matches!(node, LogicalPlan::Consolidate { .. }) {
        let child_new = &out[child_idx[0]];
        let roots: Vec<Item> = child_deltas[0].touched_items().cloned().collect();
        if let Some((new_rel, delta)) = maintain_consolidate(child_new, &roots, &my_old) {
            report.localized += 1;
            out.push(Arc::new(new_rel));
            return Ok(delta);
        }
    }

    // Everything else: recompute this node from the cached children and
    // diff against the previous output.
    let inputs: Vec<HRelation> = child_idx.iter().map(|&i| (*out[i]).clone()).collect();
    let (new_rel, _) = node.apply(inputs)?;
    let delta = RelationDelta::diff(&my_old, &new_rel);
    report.recomputed += 1;
    out.push(Arc::new(new_rel));
    Ok(delta)
}

/// Cone-localized consolidate maintenance.
///
/// `roots` are the changed input items. Statuses can only flip for
/// stored tuples subsumed by a root (the cone), and each status is
/// determined by the tuple's ancestors alone — in every preemption
/// mode: an immediate predecessor subsumes the tuple, an eliminated
/// predecessor splices in *its* predecessors (ancestors again), and
/// any stored item that blocks or sits strictly between a predecessor
/// pair lies between them in the subsumption order, hence is also an
/// ancestor. The ancestor-closure of the cone is therefore
/// self-contained: consolidating just that sub-relation reproduces the
/// full run's verdict for every cone tuple. Returns the new output and
/// its exact row delta, or `None` when the cone is too large to beat a
/// plain recompute.
fn maintain_consolidate(
    child_new: &HRelation,
    roots: &[Item],
    old_out: &HRelation,
) -> Option<(HRelation, RelationDelta)> {
    if roots.is_empty() {
        return Some((old_out.clone(), RelationDelta::new()));
    }
    let product = child_new.schema().product();
    // The subsumption graph orders items by `reaches` — all edge kinds,
    // preference edges included — so the cone and its closure must use
    // the same order, not the subset-only `subsumes`.
    let below = |upper: &Item, lower: &Item| {
        upper == lower || product.reaches(upper.components(), lower.components())
    };
    let in_cone = |t: &Item| roots.iter().any(|r| below(r, t));

    let affected: Vec<Item> = child_new.items().filter(|t| in_cone(t)).cloned().collect();
    if affected.len() > cone_limit() {
        return None;
    }

    // Ancestor-closure of the cone: every stored item that reaches an
    // affected item (the cone itself included).
    let closure: BTreeMap<Item, crate::truth::Truth> = child_new
        .iter()
        .filter(|(u, _)| affected.iter().any(|a| below(u, a)))
        .map(|(u, t)| (u.clone(), t))
        .collect();

    let mut restricted =
        HRelation::with_preemption(child_new.schema().clone(), child_new.preemption());
    restricted.replace_tuples(closure);
    let cons = consolidate::consolidate(&restricted);

    // Splice in place: start from the cached output and touch only the
    // cone. Every cone tuple of the old output is either still an input
    // tuple (hence in `affected`) or was removed by the delta (hence a
    // root), and every cone tuple of the fresh verdict is an affected
    // input tuple — so the candidate set below covers both sides and
    // the splice is O(|cone| · log n) instead of a full rebuild.
    let candidates: std::collections::BTreeSet<&Item> =
        affected.iter().chain(roots.iter()).collect();
    let mut new_out = old_out.clone();
    new_out.set_preemption(child_new.preemption());
    let mut delta = RelationDelta::new();
    for t in candidates {
        let fresh = cons.relation.stored(t);
        if old_out.stored(t) == fresh {
            continue;
        }
        match fresh {
            Some(tr) => {
                let _ = new_out.insert(crate::tuple::Tuple::new(t.clone(), tr));
                delta.added.push((t.clone(), tr));
            }
            None => {
                new_out.remove(t);
                delta.removed.push(t.clone());
            }
        }
    }
    Some((new_out, delta))
}

/// Convenience: the exact tuple sequence of a relation, for parity
/// assertions.
pub fn tuples_of(r: &HRelation) -> Vec<(Item, crate::truth::Truth)> {
    r.iter().map(|(i, t)| (i.clone(), t)).collect()
}

/// The names of every base relation `plan` scans — the dependency set
/// a view registry needs to route deltas.
pub fn scan_names(plan: &LogicalPlan) -> std::collections::BTreeSet<String> {
    fn walk(p: &LogicalPlan, out: &mut std::collections::BTreeSet<String>) {
        if let LogicalPlan::Scan { name, .. } = p {
            out.insert(name.clone());
        }
        for c in p.children() {
            walk(c, out);
        }
    }
    let mut out = std::collections::BTreeSet::new();
    walk(plan, &mut out);
    out
}

/// Build the base-delta map for a single relation change (the common
/// single-writer case).
pub fn single_delta(name: &str, delta: RelationDelta) -> BTreeMap<String, RelationDelta> {
    let mut m = BTreeMap::new();
    m.insert(name.to_string(), delta);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::truth::Truth;
    use hrdm_hierarchy::HierarchyGraph;

    fn taxonomy() -> Arc<Schema> {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        g.add_instance("Paul", penguin).unwrap();
        Arc::new(Schema::single("Creature", Arc::new(g)))
    }

    fn base(schema: &Arc<Schema>) -> HRelation {
        let mut r = HRelation::new(schema.clone());
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r
    }

    /// Maintained result must equal a from-scratch execute() at every
    /// step: assert, truth overwrite, retract.
    #[test]
    fn maintained_consolidate_matches_full_execution() {
        let schema = taxonomy();
        let mut current = base(&schema);
        let plan = LogicalPlan::scan("R", current.clone()).consolidate();
        let mut mat = MaterializedPlan::new(plan).unwrap();
        assert_eq!(
            tuples_of(mat.relation()),
            tuples_of(
                &LogicalPlan::scan("R", current.clone())
                    .consolidate()
                    .execute()
                    .unwrap()
                    .relation
            )
        );

        let steps: Vec<RelationDelta> = vec![
            RelationDelta {
                added: vec![(current.item(&["Canary"]).unwrap(), Truth::Positive)],
                removed: vec![],
            },
            RelationDelta {
                added: vec![(current.item(&["Penguin"]).unwrap(), Truth::Positive)],
                removed: vec![],
            },
            RelationDelta {
                added: vec![],
                removed: vec![current.item(&["Penguin"]).unwrap()],
            },
            RelationDelta {
                added: vec![(current.item(&["Paul"]).unwrap(), Truth::Negative)],
                removed: vec![],
            },
        ];
        for (k, step) in steps.into_iter().enumerate() {
            step.apply_to(&mut current);
            let (next, delta, report) = mat.apply(&single_delta("R", step)).unwrap();
            mat = next;
            let fresh = LogicalPlan::scan("R", current.clone())
                .consolidate()
                .execute()
                .unwrap();
            assert_eq!(
                tuples_of(mat.relation()),
                tuples_of(&fresh.relation),
                "step {k} diverged"
            );
            assert_eq!(
                mat.canonicalized_away(),
                fresh.canonicalized_away,
                "step {k} canonicalized_away"
            );
            // The maintenance was delta-driven, not a rebuild.
            assert!(report.localized >= 1, "step {k}: scan not localized");
            // Applying the reported output delta to the old output
            // reproduces the new output (delta exactness).
            let _ = delta;
        }
    }

    #[test]
    fn untouched_relations_share_caches() {
        let schema = taxonomy();
        let r = base(&schema);
        let plan = LogicalPlan::scan("A", r.clone()).union(LogicalPlan::scan("B", r.clone()));
        let mat = MaterializedPlan::new(plan).unwrap();
        // Empty delta set: everything reused, zero recomputation.
        let (next, delta, report) = mat.apply(&BTreeMap::new()).unwrap();
        assert!(delta.is_empty());
        assert_eq!(report.recomputed, 0);
        assert_eq!(report.localized, 0);
        assert!(Arc::ptr_eq(
            mat.caches.last().unwrap(),
            next.caches.last().unwrap()
        ));
    }

    #[test]
    fn no_op_rows_are_filtered() {
        let schema = taxonomy();
        let r = base(&schema);
        let plan = LogicalPlan::scan("R", r.clone()).consolidate();
        let mat = MaterializedPlan::new(plan).unwrap();
        // Re-asserting an existing row with its existing truth is a
        // no-op: the scan must report an empty delta and share caches.
        let step = RelationDelta {
            added: vec![(r.item(&["Bird"]).unwrap(), Truth::Positive)],
            removed: vec![r.item(&["Tweety"]).unwrap()],
        };
        let (next, delta, report) = mat.apply(&single_delta("R", step)).unwrap();
        assert!(delta.is_empty());
        assert_eq!(report.recomputed + report.localized, 0);
        assert!(Arc::ptr_eq(
            mat.caches.last().unwrap(),
            next.caches.last().unwrap()
        ));
    }

    #[test]
    fn binary_plans_maintain_one_side() {
        let schema = taxonomy();
        let a = base(&schema);
        let mut b = HRelation::new(schema.clone());
        b.assert_fact(&["Bird"], Truth::Positive).unwrap();

        let plan = LogicalPlan::scan("A", a.clone()).union(LogicalPlan::scan("B", b.clone()));
        let mat = MaterializedPlan::new(plan).unwrap();

        let step = RelationDelta {
            added: vec![(b.item(&["Tweety"]).unwrap(), Truth::Negative)],
            removed: vec![],
        };
        step.apply_to(&mut b);
        let (next, _, report) = mat.apply(&single_delta("B", step)).unwrap();
        // A's scan is untouched and shared; B's scan localized; the
        // union (and root consolidate) recompute.
        assert!(report.reused >= 1);
        assert!(report.localized >= 1);
        let fresh = LogicalPlan::scan("A", a)
            .union(LogicalPlan::scan("B", b))
            .execute()
            .unwrap();
        assert_eq!(tuples_of(next.relation()), tuples_of(&fresh.relation));
    }
}
