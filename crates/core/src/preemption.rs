//! Preemption semantics (Appendix).
//!
//! "In the semantic network literature, there are two alternate theories
//! of the correct mechanism to perform multiple inheritance with
//! exceptions. … The techniques presented in this paper are applicable
//! irrespective of the semantics used for preemption. All the relational
//! operations … stay the same. The difference arises only in the
//! construction of the inheritance hierarchy and the tuple binding
//! graph."
//!
//! The variants differ in which stored tuples count as *immediate
//! predecessors* of an item:
//!
//! * [`Preemption::OffPath`] (paper default): tuple *i* preempts tuple
//!   *j* iff there is a path *j → i* in addition to both reaching the
//!   item. Realized by the node-elimination procedure that refuses to
//!   introduce redundant edges.
//! * [`Preemption::OnPath`]: *i* preempts *j* iff **every** path from
//!   *j* to the item passes through *i*. Realized by keeping redundant
//!   edges during elimination.
//! * [`Preemption::NoPreemption`]: nothing preempts; every applicable
//!   tuple is an immediate predecessor (transitive closure), and any
//!   mixed truth values conflict.
//!
//! The Appendix's fourth option — arbitrary preference rules — is not a
//! separate mode: preference edges are placed in the hierarchy graph
//! (see [`hrdm_hierarchy::preference`]) "and the semantics of off-path
//! preemption apply".

/// Which tuples bind strongest to an item. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preemption {
    /// Off-path preemption (paper default; "in most cases appears to
    /// closest match human intuition").
    #[default]
    OffPath,
    /// On-path preemption.
    OnPath,
    /// No preemption: conflict whenever differing truth values are
    /// inherited.
    NoPreemption,
}

impl Preemption {
    /// All variants, for ablation sweeps.
    pub const ALL: [Preemption; 3] = [
        Preemption::OffPath,
        Preemption::OnPath,
        Preemption::NoPreemption,
    ];
}

impl std::fmt::Display for Preemption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Preemption::OffPath => "off-path",
            Preemption::OnPath => "on-path",
            Preemption::NoPreemption => "no-preemption",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_path() {
        assert_eq!(Preemption::default(), Preemption::OffPath);
    }

    #[test]
    fn all_lists_each_variant_once() {
        assert_eq!(Preemption::ALL.len(), 3);
        let set: std::collections::HashSet<_> = Preemption::ALL.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Preemption::OffPath.to_string(), "off-path");
        assert_eq!(Preemption::OnPath.to_string(), "on-path");
        assert_eq!(Preemption::NoPreemption.to_string(), "no-preemption");
    }
}
