//! Justification of derived answers (§3.4, Fig. 9).
//!
//! "Whenever one has a system that produces answers that are deduced
//! from, rather than explicitly stated in, facts that the system has
//! been told …, the question of justification arises. … One can, in our
//! model, not only obtain the result of a selection, but also find out
//! which tuples in the relation were applicable."

use crate::binding::{applicable, Binding};
use crate::item::Item;
use crate::relation::HRelation;
use crate::truth::Truth;
use crate::tuple::Tuple;

/// Why an item received its truth value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Justification {
    /// The item that was queried.
    pub item: Item,
    /// The binding outcome.
    pub binding: Binding,
    /// Every stored tuple applicable to the item (all tuples in its
    /// tuple-binding graph), in deterministic order — Fig. 9b's answer.
    pub applicable: Vec<Tuple>,
    /// The subset that actually determined the truth value (the
    /// strongest binders; the explicit tuple when one exists; everything
    /// conflicting when the binding conflicts).
    pub decisive: Vec<Tuple>,
}

/// Explain the binding of `item` in `relation`.
pub fn justify(relation: &HRelation, item: &Item) -> Justification {
    let applicable: Vec<Tuple> = applicable(relation, item)
        .into_iter()
        .map(|(i, t)| Tuple::new(i, t))
        .collect();
    let binding = relation.bind(item);
    let decisive = match &binding {
        Binding::Explicit(t) => vec![Tuple::new(item.clone(), *t)],
        Binding::Inherited(t, binders) => {
            binders.iter().map(|i| Tuple::new(i.clone(), *t)).collect()
        }
        Binding::Conflict { positive, negative } => positive
            .iter()
            .map(|i| Tuple::new(i.clone(), Truth::Positive))
            .chain(
                negative
                    .iter()
                    .map(|i| Tuple::new(i.clone(), Truth::Negative)),
            )
            .collect(),
        Binding::Unspecified => Vec::new(),
    };
    Justification {
        item: item.clone(),
        binding,
        applicable,
        decisive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// Fig. 4: the elephant colour relation.
    fn elephants() -> HRelation {
        let mut a = HierarchyGraph::new("Animal");
        let elephant = a.add_class("Elephant", a.root()).unwrap();
        let royal = a.add_class("Royal Elephant", elephant).unwrap();
        let indian = a.add_class("Indian Elephant", elephant).unwrap();
        a.add_instance_multi("Appu", &[royal, indian]).unwrap();
        a.add_instance("Clyde", royal).unwrap();
        let mut c = HierarchyGraph::new("Color");
        c.add_instance("Grey", c.root()).unwrap();
        c.add_instance("White", c.root()).unwrap();
        c.add_instance("Dappled", c.root()).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", Arc::new(a)),
            Attribute::new("Color", Arc::new(c)),
        ]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Royal Elephant", "Grey"], Truth::Negative)
            .unwrap();
        r.assert_fact(&["Royal Elephant", "White"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Clyde", "White"], Truth::Negative).unwrap();
        r.assert_fact(&["Clyde", "Dappled"], Truth::Positive)
            .unwrap();
        r
    }

    #[test]
    fn fig4_appu_is_white_not_grey() {
        // "Royal elephant binds more strongly to Appu than does
        // elephant, so we conclude that Appu is not grey but white.
        // ... the fact that Appu is an Indian elephant is treated as an
        // irrelevant fact."
        let r = elephants();
        let appu_grey = r.item(&["Appu", "Grey"]).unwrap();
        assert_eq!(r.bind(&appu_grey).truth(), Some(Truth::Negative));
        let appu_white = r.item(&["Appu", "White"]).unwrap();
        assert_eq!(r.bind(&appu_white).truth(), Some(Truth::Positive));
    }

    #[test]
    fn fig4_clyde_is_dappled() {
        let r = elephants();
        assert_eq!(
            r.bind(&r.item(&["Clyde", "Dappled"]).unwrap()),
            Binding::Explicit(Truth::Positive)
        );
        assert_eq!(
            r.bind(&r.item(&["Clyde", "White"]).unwrap()).truth(),
            Some(Truth::Negative)
        );
        assert_eq!(
            r.bind(&r.item(&["Clyde", "Grey"]).unwrap()).truth(),
            Some(Truth::Negative)
        );
    }

    #[test]
    fn fig9_justification_for_clyde_grey() {
        // Fig. 9: a selection on (Clyde, Grey) is justified by the
        // applicable tuples — the elephant-grey generalization and the
        // royal-elephant-grey exception.
        let r = elephants();
        let clyde_grey = r.item(&["Clyde", "Grey"]).unwrap();
        let j = justify(&r, &clyde_grey);
        assert_eq!(j.binding.truth(), Some(Truth::Negative));
        let applicable_items: Vec<&Item> = j.applicable.iter().map(|t| &t.item).collect();
        assert!(applicable_items.contains(&&r.item(&["Elephant", "Grey"]).unwrap()));
        assert!(applicable_items.contains(&&r.item(&["Royal Elephant", "Grey"]).unwrap()));
        assert_eq!(j.applicable.len(), 2);
        // The decisive tuple is the royal-elephant exception.
        assert_eq!(
            j.decisive,
            vec![Tuple::negative(
                r.item(&["Royal Elephant", "Grey"]).unwrap()
            )]
        );
    }

    #[test]
    fn justification_of_explicit_and_unspecified() {
        let r = elephants();
        let clyde_dappled = r.item(&["Clyde", "Dappled"]).unwrap();
        let j = justify(&r, &clyde_dappled);
        assert_eq!(j.decisive, vec![Tuple::positive(clyde_dappled.clone())]);
        assert!(j.applicable.contains(&Tuple::positive(clyde_dappled)));

        let unrelated = r.item(&["Animal", "Dappled"]).unwrap();
        let j = justify(&r, &unrelated);
        assert_eq!(j.binding, Binding::Unspecified);
        assert!(j.decisive.is_empty());
    }

    #[test]
    fn justification_of_conflict_lists_both_sides() {
        let mut r = elephants();
        // Make Indian elephants grey: Appu now inherits -Grey (royal)
        // and +Grey (indian) — conflict.
        r.assert_fact(&["Indian Elephant", "Grey"], Truth::Positive)
            .unwrap();
        let appu_grey = r.item(&["Appu", "Grey"]).unwrap();
        let j = justify(&r, &appu_grey);
        assert!(j.binding.is_conflict());
        assert_eq!(j.decisive.len(), 2);
        let truths: Vec<Truth> = j.decisive.iter().map(|t| t.truth).collect();
        assert!(truths.contains(&Truth::Positive));
        assert!(truths.contains(&Truth::Negative));
    }
}
