//! Three-valued lookups over partial information (§4 extension).
//!
//! "Through the use of existential rather than universal quantifiers,
//! and the use of three-valued (positive, negative, and unknown) rather
//! than two-valued assertions, it may be possible to have a sound and
//! conceptually pleasing treatment of partial information."
//!
//! Without the closed-world assumption, a negated tuple reads "for every
//! element of A, relation R is *not known* to hold" (footnote 4), and an
//! item no tuple binds to is simply *unknown*. This module implements
//! that reading:
//!
//! * [`holds3`] — the three-valued truth of an item,
//! * [`any_holds`]/[`all_hold`] — existential/universal queries over a
//!   class item's atomic extension, each returning [`Truth3`] so that
//!   "unknown" propagates instead of defaulting to false.

use crate::binding::Binding;
use crate::item::Item;
use crate::relation::HRelation;
use crate::truth::Truth;

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth3 {
    /// Known to hold.
    True,
    /// Known (asserted) not to hold.
    False,
    /// No applicable assertion, or conflicting assertions.
    Unknown,
}

impl Truth3 {
    /// Kleene conjunction.
    pub fn and(self, other: Truth3) -> Truth3 {
        match (self, other) {
            (Truth3::False, _) | (_, Truth3::False) => Truth3::False,
            (Truth3::True, Truth3::True) => Truth3::True,
            _ => Truth3::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth3) -> Truth3 {
        match (self, other) {
            (Truth3::True, _) | (_, Truth3::True) => Truth3::True,
            (Truth3::False, Truth3::False) => Truth3::False,
            _ => Truth3::Unknown,
        }
    }
}

impl std::ops::Not for Truth3 {
    type Output = Truth3;

    /// Kleene negation.
    fn not(self) -> Truth3 {
        match self {
            Truth3::True => Truth3::False,
            Truth3::False => Truth3::True,
            Truth3::Unknown => Truth3::Unknown,
        }
    }
}

impl From<Truth> for Truth3 {
    fn from(t: Truth) -> Truth3 {
        match t {
            Truth::Positive => Truth3::True,
            Truth::Negative => Truth3::False,
        }
    }
}

/// The three-valued truth of `item`: the binding without the
/// closed-world default.
pub fn holds3(relation: &HRelation, item: &Item) -> Truth3 {
    match relation.bind(item) {
        Binding::Explicit(t) | Binding::Inherited(t, _) => t.into(),
        Binding::Conflict { .. } | Binding::Unspecified => Truth3::Unknown,
    }
}

/// Existential query: does the relation hold for *some* atom in the
/// item's extension?
///
/// `True` as soon as one atom is known true; `False` only when every
/// atom is known false; `Unknown` otherwise (including the empty
/// extension of an intensional class, where nothing is known).
pub fn any_holds(relation: &HRelation, item: &Item) -> Truth3 {
    let product = relation.schema().product();
    let mut acc = Truth3::False;
    let mut saw_any = false;
    for atom in product.extension(item.components()) {
        saw_any = true;
        acc = acc.or(holds3(relation, &Item::new(atom)));
        if acc == Truth3::True {
            return Truth3::True;
        }
    }
    if saw_any {
        acc
    } else {
        Truth3::Unknown
    }
}

/// Universal query: does the relation hold for *every* atom in the
/// item's extension?
pub fn all_hold(relation: &HRelation, item: &Item) -> Truth3 {
    let product = relation.schema().product();
    let mut acc = Truth3::True;
    let mut saw_any = false;
    for atom in product.extension(item.components()) {
        saw_any = true;
        acc = acc.and(holds3(relation, &Item::new(atom)));
        if acc == Truth3::False {
            return Truth3::False;
        }
    }
    if saw_any {
        acc
    } else {
        Truth3::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    fn flying() -> HRelation {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_instance("Paul", penguin).unwrap();
        let fish = g.add_class("Fish", g.root()).unwrap();
        g.add_instance("Nemo", fish).unwrap();
        let ghost = g.add_class("Ghost", g.root()).unwrap();
        let _ = ghost; // a class with no instances
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r
    }

    #[test]
    fn holds3_distinguishes_false_from_unknown() {
        let r = flying();
        assert_eq!(holds3(&r, &r.item(&["Tweety"]).unwrap()), Truth3::True);
        assert_eq!(holds3(&r, &r.item(&["Paul"]).unwrap()), Truth3::False);
        // Nothing asserted about fish: unknown, not false.
        assert_eq!(holds3(&r, &r.item(&["Nemo"]).unwrap()), Truth3::Unknown);
        // But the closed-world `holds` says false for both.
        assert!(!r.holds(&r.item(&["Paul"]).unwrap()));
        assert!(!r.holds(&r.item(&["Nemo"]).unwrap()));
    }

    #[test]
    fn conflicts_are_unknown() {
        let mut r = flying();
        // Make Tweety both a bird and a fish... simpler: conflicting
        // class assertions over a shared instance. Nemo under a negated
        // Fish and positive Animal root tuple:
        r.assert_fact(&["Fish"], Truth::Negative).unwrap();
        r.assert_fact(&["Animal"], Truth::Positive).unwrap();
        // Nemo: -Fish preempts +Animal (off-path): known false.
        assert_eq!(holds3(&r, &r.item(&["Nemo"]).unwrap()), Truth3::False);
    }

    #[test]
    fn existential_over_classes() {
        let r = flying();
        // Some bird flies (Tweety): true.
        assert_eq!(any_holds(&r, &r.item(&["Bird"]).unwrap()), Truth3::True);
        // Some penguin flies: all penguin atoms are known false.
        assert_eq!(any_holds(&r, &r.item(&["Penguin"]).unwrap()), Truth3::False);
        // Some fish flies: unknown.
        assert_eq!(any_holds(&r, &r.item(&["Fish"]).unwrap()), Truth3::Unknown);
        // A class with no instances: unknown (intensional).
        assert_eq!(any_holds(&r, &r.item(&["Ghost"]).unwrap()), Truth3::Unknown);
    }

    #[test]
    fn universal_over_classes() {
        let r = flying();
        // All birds fly? Paul is known false.
        assert_eq!(all_hold(&r, &r.item(&["Bird"]).unwrap()), Truth3::False);
        // All penguins (Paul): false.
        assert_eq!(all_hold(&r, &r.item(&["Penguin"]).unwrap()), Truth3::False);
        // All fish: unknown.
        assert_eq!(all_hold(&r, &r.item(&["Fish"]).unwrap()), Truth3::Unknown);
        assert_eq!(all_hold(&r, &r.item(&["Ghost"]).unwrap()), Truth3::Unknown);
    }

    #[test]
    fn kleene_tables() {
        use Truth3::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(!Unknown, Unknown);
        assert_eq!(!True, False);
        assert_eq!(Truth3::from(Truth::Positive), True);
        assert_eq!(Truth3::from(Truth::Negative), False);
    }
}
