//! Scoped-thread parallel execution for the embarrassingly parallel
//! stages of the engine.
//!
//! Subsumption-graph edge construction, explicate's per-tuple descendant
//! fan-out, conflict-candidate evaluation, and the join's per-candidate
//! truth evaluation are all independent per index. [`par_map_indexed`]
//! chunks such an index range over `std::thread::scope` workers — no
//! external dependency, no work stealing — and reassembles the results
//! **in index order**, so serial and parallel execution produce
//! byte-identical output (proven by the parity property tests in
//! `tests/properties.rs`).
//!
//! The execution mode can be forced per closure ([`run_serial`] /
//! [`with_mode`], thread-local so concurrent test threads do not race)
//! or process-wide ([`set_global_mode`]). Inputs below
//! [`PAR_THRESHOLD`] always run serially: thread spawn costs more than
//! the work itself on the paper-sized examples.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

/// How [`par_map_indexed`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded, in the calling thread.
    Serial,
    /// Chunked across scoped threads when the input is large enough.
    #[default]
    Parallel,
}

/// Inputs smaller than this run serially even in [`ExecMode::Parallel`].
pub const PAR_THRESHOLD: usize = 32;

static GLOBAL_SERIAL: AtomicBool = AtomicBool::new(false);

thread_local! {
    static MODE_OVERRIDE: Cell<Option<ExecMode>> = const { Cell::new(None) };
}

/// Set the process-wide default execution mode.
pub fn set_global_mode(mode: ExecMode) {
    GLOBAL_SERIAL.store(mode == ExecMode::Serial, Ordering::Relaxed);
}

/// The mode [`par_map_indexed`] would use right now on this thread:
/// the thread-local override if one is active, else the global default.
pub fn current_mode() -> ExecMode {
    MODE_OVERRIDE.with(|m| m.get()).unwrap_or({
        if GLOBAL_SERIAL.load(Ordering::Relaxed) {
            ExecMode::Serial
        } else {
            ExecMode::Parallel
        }
    })
}

/// Run `f` with the execution mode overridden on this thread only; the
/// previous override is restored afterwards (also on panic).
pub fn with_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<ExecMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(MODE_OVERRIDE.with(|m| m.replace(Some(mode))));
    f()
}

/// Run `f` with parallelism disabled on this thread — the serial
/// reference path the parity property tests compare against.
pub fn run_serial<R>(f: impl FnOnce() -> R) -> R {
    with_mode(ExecMode::Serial, f)
}

fn fanout_counter() -> &'static hrdm_obs::metrics::Counter {
    static C: std::sync::OnceLock<hrdm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| hrdm_obs::metrics::counter("core.parallel.fanouts"))
}

fn worker_count(n: usize) -> usize {
    if n < PAR_THRESHOLD || current_mode() == ExecMode::Serial {
        return 1;
    }
    let cores = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    cores.min(n.div_ceil(PAR_THRESHOLD / 2)).max(1)
}

/// Map `f` over `0..n`, preserving index order in the output.
///
/// Runs on scoped worker threads over contiguous chunks when the mode is
/// [`ExecMode::Parallel`] and `n` clears [`PAR_THRESHOLD`]; otherwise in
/// the calling thread. Either way the result is `[f(0), f(1), …,
/// f(n-1)]` — chunking is an implementation detail, never visible in
/// the output.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    fanout_counter().incr();
    // Workers run on fresh scoped threads whose span stacks are empty,
    // so each per-chunk span links to the spawning operator's span
    // explicitly — fan-out stays attached to the query trace.
    let parent = hrdm_obs::span::current_span();
    let chunk = n.div_ceil(workers);
    let chunks: Vec<Vec<T>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                s.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    let mut span = hrdm_obs::span::span_with_parent("parallel.chunk", parent);
                    if span.is_active() {
                        span.field_u64("worker", w as u64);
                        span.field_u64("lo", lo as u64);
                        span.field_u64("hi", hi as u64);
                    }
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Map `f` over a slice, preserving element order in the output.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_index_ordered_above_threshold() {
        let n = PAR_THRESHOLD * 8;
        let out = par_map_indexed(n, |i| i * i);
        assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let n = PAR_THRESHOLD * 4 + 7;
        let f = |i: usize| (i, i.wrapping_mul(0x9E37_79B9));
        let par = with_mode(ExecMode::Parallel, || par_map_indexed(n, f));
        let ser = run_serial(|| par_map_indexed(n, f));
        assert_eq!(par, ser);
    }

    #[test]
    fn mode_override_restores() {
        let before = current_mode();
        run_serial(|| assert_eq!(current_mode(), ExecMode::Serial));
        assert_eq!(current_mode(), before);
    }

    #[test]
    fn par_map_over_slice() {
        let items: Vec<usize> = (0..100).collect();
        assert_eq!(
            par_map(&items, |&x| x + 1),
            (1..=100).collect::<Vec<usize>>()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn chunk_spans_link_to_the_spawning_span() {
        let n = PAR_THRESHOLD * 4;
        let workers = with_mode(ExecMode::Parallel, || worker_count(n));
        if workers <= 1 {
            // Single-core machine: no fan-out to trace.
            return;
        }
        let (out, trace) = hrdm_obs::trace::capture("test.parallel.root", || {
            with_mode(ExecMode::Parallel, || par_map_indexed(n, |i| i * 2))
        });
        assert_eq!(out, (0..n).map(|i| i * 2).collect::<Vec<_>>());
        let root = trace.root.as_ref().expect("trace recorded");
        let chunks: Vec<_> = root
            .children
            .iter()
            .filter(|c| c.name == "parallel.chunk")
            .collect();
        assert_eq!(
            chunks.len(),
            workers,
            "every worker records one chunk span under the spawning span"
        );
        // The chunks partition 0..n.
        let mut ranges: Vec<(u64, u64)> = chunks
            .iter()
            .map(|c| {
                (
                    c.field_u64("lo").expect("lo field"),
                    c.field_u64("hi").expect("hi field"),
                )
            })
            .collect();
        ranges.sort_unstable();
        assert_eq!(ranges.first().map(|r| r.0), Some(0));
        assert_eq!(ranges.last().map(|r| r.1), Some(n as u64));
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
        }
    }
}
