//! Structured write deltas: the unit of change a committed mutation
//! publishes alongside its epoch.
//!
//! A [`RelationDelta`] is the row-level difference between two states
//! of one relation — rows now stored (with their new truth, covering
//! both fresh inserts and truth overwrites) and rows no longer stored.
//! A [`Delta`] aggregates one write's effect across the whole catalog:
//! per-relation changes plus the names of any mutated domain graphs.
//!
//! Deltas are what incremental view maintenance
//! ([`crate::differential`]) consumes: row changes flow through the
//! differential operators, while a [`RelationChange::Reset`] or a
//! domain edit signals that the cheap row-level path does not apply
//! and maintenance must fall back to full recomputation.

use std::collections::{BTreeMap, BTreeSet};

use crate::item::Item;
use crate::relation::HRelation;
use crate::truth::Truth;

/// Row-level difference between two states of one relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Rows stored in the new state whose truth differs from the old
    /// state (fresh rows and truth overwrites alike), with the *new*
    /// truth.
    pub added: Vec<(Item, Truth)>,
    /// Rows stored in the old state but absent from the new state.
    pub removed: Vec<Item>,
}

impl RelationDelta {
    /// A delta with no changes.
    pub fn new() -> RelationDelta {
        RelationDelta::default()
    }

    /// Whether this delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of changed rows (added + removed).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// The items this delta touches (both directions) — the cone roots
    /// for hierarchy-aware localized maintenance.
    pub fn touched_items(&self) -> impl Iterator<Item = &Item> {
        self.added.iter().map(|(i, _)| i).chain(self.removed.iter())
    }

    /// Compute the exact row delta between two relations over the same
    /// schema: `diff(old, new)` applied to `old` yields `new`.
    pub fn diff(old: &HRelation, new: &HRelation) -> RelationDelta {
        let mut delta = RelationDelta::new();
        for (item, truth) in new.iter() {
            if old.stored(item) != Some(truth) {
                delta.added.push((item.clone(), truth));
            }
        }
        for (item, _) in old.iter() {
            if new.stored(item).is_none() {
                delta.removed.push(item.clone());
            }
        }
        delta
    }

    /// Apply this delta to `relation` in place: removals first, then
    /// inserts (an insert overwrites any existing truth).
    pub fn apply_to(&self, relation: &mut HRelation) {
        for item in &self.removed {
            relation.remove(item);
        }
        for (item, truth) in &self.added {
            let _ = relation.insert(crate::tuple::Tuple::new(item.clone(), *truth));
        }
    }
}

/// How one relation changed in a committed write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationChange {
    /// Row-level changes the differential path can maintain through.
    Rows(RelationDelta),
    /// The relation changed wholesale (created, replaced in place by
    /// `CONSOLIDATE`/`EXPLICATE`, preemption mode switched, …): views
    /// over it must recompute from scratch.
    Reset,
}

impl RelationChange {
    /// The row delta, when this change is row-level.
    pub fn rows(&self) -> Option<&RelationDelta> {
        match self {
            RelationChange::Rows(d) => Some(d),
            RelationChange::Reset => None,
        }
    }
}

/// One committed write's structured effect on the catalog: what the
/// writer publishes alongside the new epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Per-relation changes, keyed by relation name.
    pub relations: BTreeMap<String, RelationChange>,
    /// Names of domain graphs this write mutated (class/instance
    /// creation, preference edges). Domain edits change subsumption
    /// itself, so they force view fallback rather than row maintenance.
    pub domains: BTreeSet<String>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Whether this write changed nothing views could observe.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty() && self.domains.is_empty()
    }

    /// Total row changes across all row-level relation changes.
    pub fn row_count(&self) -> usize {
        self.relations
            .values()
            .filter_map(RelationChange::rows)
            .map(RelationDelta::len)
            .sum()
    }

    /// Record one asserted (or truth-overwritten) row.
    pub fn record_added(&mut self, relation: &str, item: Item, truth: Truth) {
        match self
            .relations
            .entry(relation.to_string())
            .or_insert_with(|| RelationChange::Rows(RelationDelta::new()))
        {
            RelationChange::Rows(d) => d.added.push((item, truth)),
            RelationChange::Reset => {}
        }
    }

    /// Record one retracted row.
    pub fn record_removed(&mut self, relation: &str, item: Item) {
        match self
            .relations
            .entry(relation.to_string())
            .or_insert_with(|| RelationChange::Rows(RelationDelta::new()))
        {
            RelationChange::Rows(d) => d.removed.push(item),
            RelationChange::Reset => {}
        }
    }

    /// Record a wholesale change to one relation. Reset absorbs any
    /// row-level changes already recorded for the same relation.
    pub fn record_reset(&mut self, relation: &str) {
        self.relations
            .insert(relation.to_string(), RelationChange::Reset);
    }

    /// Record a mutation of one domain graph.
    pub fn record_domain(&mut self, domain: &str) {
        self.domains.insert(domain.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        g.add_instance("x", a).unwrap();
        g.add_instance("y", a).unwrap();
        Arc::new(Schema::single("D", Arc::new(g)))
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let s = schema();
        let mut old = HRelation::new(s.clone());
        old.assert_fact(&["A"], Truth::Positive).unwrap();
        old.assert_fact(&["x"], Truth::Negative).unwrap();
        let mut new = HRelation::new(s);
        new.assert_fact(&["A"], Truth::Positive).unwrap();
        new.assert_fact(&["y"], Truth::Positive).unwrap();
        // x removed, y added, A unchanged.
        let d = RelationDelta::diff(&old, &new);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        let mut patched = old.clone();
        d.apply_to(&mut patched);
        assert_eq!(
            patched.iter().collect::<Vec<_>>(),
            new.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn diff_captures_truth_overwrites() {
        let s = schema();
        let mut old = HRelation::new(s.clone());
        old.assert_fact(&["x"], Truth::Positive).unwrap();
        let mut new = HRelation::new(s);
        new.assert_fact(&["x"], Truth::Negative).unwrap();
        let d = RelationDelta::diff(&old, &new);
        assert_eq!(d.added.len(), 1, "overwrite reported as added");
        assert!(d.removed.is_empty());
        let mut patched = old;
        d.apply_to(&mut patched);
        assert_eq!(
            patched.iter().collect::<Vec<_>>(),
            new.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn reset_absorbs_row_changes() {
        let s = schema();
        let item = {
            let mut r = HRelation::new(s);
            r.assert_fact(&["x"], Truth::Positive).unwrap();
            let x = r.items().next().unwrap().clone();
            x
        };
        let mut delta = Delta::new();
        delta.record_added("R", item.clone(), Truth::Positive);
        delta.record_reset("R");
        delta.record_added("R", item, Truth::Negative);
        assert_eq!(delta.relations["R"], RelationChange::Reset);
        assert_eq!(delta.row_count(), 0);
        assert!(!delta.is_empty());
    }

    #[test]
    fn empty_and_counts() {
        let mut d = Delta::new();
        assert!(d.is_empty());
        d.record_domain("D");
        assert!(!d.is_empty());
        assert_eq!(d.row_count(), 0);
    }
}
