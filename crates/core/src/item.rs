//! Items: one hierarchy node per attribute (§2.1–§2.2).
//!
//! "An item is now obtained as one member (class or element) from each of
//! D₁, D₂, etc., the domains of the various attributes. Thus an item is a
//! subset of D*." An *atomic* item has an instance in every position; a
//! *composite* item has at least one class.

use std::fmt;

use hrdm_hierarchy::NodeId;

/// One node of the product item hierarchy: a `NodeId` per attribute.
///
/// `Item` is ordered (`Ord`) so relations can store tuples in a
/// deterministic `BTreeMap`; the order is lexicographic over per-graph
/// node ids and carries no semantic meaning.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item(Vec<NodeId>);

impl Item {
    /// Build an item from per-attribute nodes.
    pub fn new(components: Vec<NodeId>) -> Item {
        Item(components)
    }

    /// The arity of the item (number of attributes).
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The per-attribute nodes.
    #[inline]
    pub fn components(&self) -> &[NodeId] {
        &self.0
    }

    /// One component.
    #[inline]
    pub fn component(&self, i: usize) -> NodeId {
        self.0[i]
    }

    /// A copy with component `i` replaced.
    pub fn with_component(&self, i: usize, node: NodeId) -> Item {
        let mut c = self.0.clone();
        c[i] = node;
        Item(c)
    }

    /// Keep only the listed components, in the listed order (used by
    /// projection).
    pub fn select_components(&self, indexes: &[usize]) -> Item {
        Item(indexes.iter().map(|&i| self.0[i]).collect())
    }

    /// Consume into the underlying vector.
    pub fn into_components(self) -> Vec<NodeId> {
        self.0
    }
}

impl From<Vec<NodeId>> for Item {
    fn from(v: Vec<NodeId>) -> Item {
        Item(v)
    }
}

impl AsRef<[NodeId]> for Item {
    fn as_ref(&self) -> &[NodeId] {
        &self.0
    }
}

impl std::ops::Index<usize> for Item {
    type Output = NodeId;

    fn index(&self, i: usize) -> &NodeId {
        &self.0[i]
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn construction_and_access() {
        let item = Item::new(vec![n(1), n(2), n(3)]);
        assert_eq!(item.arity(), 3);
        assert_eq!(item.component(1), n(2));
        assert_eq!(item[2], n(3));
        assert_eq!(item.components(), &[n(1), n(2), n(3)]);
    }

    #[test]
    fn with_component_replaces_one_position() {
        let item = Item::new(vec![n(1), n(2)]);
        let other = item.with_component(0, n(9));
        assert_eq!(other.components(), &[n(9), n(2)]);
        assert_eq!(item.components(), &[n(1), n(2)], "original untouched");
    }

    #[test]
    fn select_components_projects_and_reorders() {
        let item = Item::new(vec![n(1), n(2), n(3)]);
        assert_eq!(item.select_components(&[2, 0]).components(), &[n(3), n(1)]);
        assert_eq!(item.select_components(&[]).arity(), 0);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Item::new(vec![n(1), n(5)]) < Item::new(vec![n(2), n(0)]));
        assert!(Item::new(vec![n(1), n(1)]) < Item::new(vec![n(1), n(2)]));
        assert_eq!(Item::new(vec![n(1)]), Item::from(vec![n(1)]));
    }

    #[test]
    fn round_trip_into_components() {
        let item = Item::new(vec![n(4), n(7)]);
        assert_eq!(item.clone().into_components(), vec![n(4), n(7)]);
        assert_eq!(item.as_ref(), &[n(4), n(7)]);
    }
}
