//! Batch-at-a-time plan executor over the columnar layer.
//!
//! [`execute_batch`] evaluates the same [`LogicalPlan`] IR as
//! [`LogicalPlan::execute`], but each operator consumes
//! [`crate::columnar::BATCH_ROWS`]-row column slices instead of one
//! tuple at a time, memoizing the two expensive per-row computations —
//! per-column `maximal_intersection` (via the shared intersection
//! cache) and per-projection binding lookups (`class_holds`).
//!
//! **Semantics contract:** consolidate is *not* a function of the flat
//! model — it removes tuples from the stored physical form — so the
//! batch operators must (and do) generate exactly the candidate items,
//! truths, and conflict-resolution fixpoints of `core::ops`. Candidate
//! generation, truth evaluation order, and error order all mirror the
//! tuple operators, which makes the two executors byte-identical on
//! every plan (property-tested over ~8k random plans in
//! `crates/core/tests/batch_parity.rs`). Consolidate and explicate are
//! not row-local, so those nodes delegate to the canonical core
//! functions.
//!
//! Observability: every node opens a `batch.*` span (`batch.join`,
//! `batch.select`, …) with deterministic fields (`rows`, `batches`,
//! `candidates`, memo hit/miss counts), and the executor maintains the
//! `batch.rows` / `batch.batches` / `batch.nodes` counters.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use hrdm_hierarchy::NodeId;

use crate::columnar::{cached_intersection, ColumnarRelation, IntersectionMatrix, Run, Spine};
use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::ops::{class_holds, resolve_conflicts_fixpoint};
use crate::parallel;
use crate::plan::{join_parts, Executed, LogicalPlan};
use crate::relation::HRelation;
use crate::schema::{Attribute, Schema};
use crate::truth::Truth;
use crate::tuple::Tuple;

/// Execute `plan` batch-at-a-time and canonicalize the result, exactly
/// as [`LogicalPlan::execute`] does tuple-at-a-time. The returned
/// relation is byte-identical to the tuple executor's; the trace tree
/// carries `batch.*` span names instead of the bare node kinds.
pub fn execute_batch(plan: &LogicalPlan) -> Result<Executed> {
    let (result, trace) = hrdm_obs::trace::capture("batch.execute", || -> Result<_> {
        let raw = eval_batch(plan)?;
        let mut span = hrdm_obs::span!("batch.canonicalize");
        let canonical = crate::consolidate::consolidate(&raw);
        if span.is_active() {
            span.field_u64("rows", canonical.relation.len() as u64);
            span.field_u64("eliminated", canonical.removed.len() as u64);
        }
        Ok((canonical.relation, canonical.removed.len()))
    });
    let (relation, canonicalized_away) = result?;
    Ok(Executed {
        relation,
        trace,
        canonicalized_away,
    })
}

/// The `batch.*` span name for a plan node.
fn batch_kind(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "batch.scan",
        LogicalPlan::Select { .. } => "batch.select",
        LogicalPlan::SelectEq { .. } => "batch.select_eq",
        LogicalPlan::Project { .. } => "batch.project",
        LogicalPlan::Join { .. } => "batch.join",
        LogicalPlan::Union { .. } => "batch.union",
        LogicalPlan::Intersect { .. } => "batch.intersect",
        LogicalPlan::Diff { .. } => "batch.diff",
        LogicalPlan::Consolidate { .. } => "batch.consolidate",
        LogicalPlan::Explicate { .. } => "batch.explicate",
    }
}

fn eval_batch(plan: &LogicalPlan) -> Result<HRelation> {
    let mut span = hrdm_obs::span!(batch_kind(plan));
    hrdm_obs::metrics::counter("batch.nodes").incr();
    let out = match plan {
        LogicalPlan::Scan { relation, .. } => (**relation).clone(),
        LogicalPlan::Select { input, region } => {
            let child = eval_batch(input)?;
            batch_select(&child, region, &mut span)?
        }
        LogicalPlan::SelectEq { input, attr, value } => {
            let child = eval_batch(input)?;
            let schema = child.schema().clone();
            let i = schema.index_of(attr)?;
            let node = schema.domain(i).node(value)?;
            let region = schema.universal_item().with_component(i, node);
            batch_select(&child, &region, &mut span)?
        }
        LogicalPlan::Project { input, attrs } => batch_project(&eval_batch(input)?, attrs)?,
        LogicalPlan::Join { left, right } => {
            let l = eval_batch(left)?;
            let r = eval_batch(right)?;
            batch_join(&l, &r, &mut span)?
        }
        LogicalPlan::Union { left, right } => {
            let l = eval_batch(left)?;
            let r = eval_batch(right)?;
            batch_combine(&l, &r, |a, b| a || b, &mut span)?
        }
        LogicalPlan::Intersect { left, right } => {
            let l = eval_batch(left)?;
            let r = eval_batch(right)?;
            batch_combine(&l, &r, |a, b| a && b, &mut span)?
        }
        LogicalPlan::Diff { left, right } => {
            let l = eval_batch(left)?;
            let r = eval_batch(right)?;
            batch_combine(&l, &r, |a, b| a && !b, &mut span)?
        }
        LogicalPlan::Consolidate { input } => {
            let out = crate::consolidate::consolidate(&eval_batch(input)?);
            if span.is_active() {
                span.field_u64("eliminated", out.removed.len() as u64);
            }
            out.relation
        }
        LogicalPlan::Explicate { input, attrs } => {
            crate::explicate::explicate(&eval_batch(input)?, attrs)?
        }
    };
    hrdm_obs::metrics::counter("batch.rows").add(out.len() as u64);
    if span.is_active() {
        span.field_u64("rows", out.len() as u64);
    }
    Ok(out)
}

/// A memoized `class_holds` over one relation: join and set-op
/// candidates share projections (each left projection recurs once per
/// right pairing), so the binding machinery runs once per *distinct*
/// projected item instead of once per candidate.
struct TruthMemo<'a> {
    relation: &'a HRelation,
    memo: HashMap<Item, bool>,
    hits: u64,
}

impl<'a> TruthMemo<'a> {
    fn new(relation: &'a HRelation) -> TruthMemo<'a> {
        TruthMemo {
            relation,
            memo: HashMap::new(),
            hits: 0,
        }
    }

    /// `class_holds` with memoization. Errors are not memoized: they
    /// abort the operator on first occurrence, same as the tuple path.
    fn holds(&mut self, item: &Item) -> Result<bool> {
        if let Some(&b) = self.memo.get(item) {
            self.hits += 1;
            return Ok(b);
        }
        let b = class_holds(self.relation, item)?;
        self.memo.insert(item.clone(), b);
        Ok(b)
    }

    /// Pre-compute the distinct projections' bindings in parallel —
    /// the batch-side counterpart of the tuple join's `par_map` over
    /// candidates. Only `Ok` verdicts are seeded; a projection whose
    /// binding errors stays unseeded so [`TruthMemo::holds`] recomputes
    /// it at the first candidate that touches it, surfacing the exact
    /// error the tuple executor would (same candidate order, left side
    /// before right).
    fn seed_parallel(&mut self, projections: &BTreeSet<Item>) {
        let distinct: Vec<&Item> = projections.iter().collect();
        let verdicts = parallel::par_map(&distinct, |p| class_holds(self.relation, p));
        for (p, v) in distinct.into_iter().zip(verdicts) {
            if let Ok(b) = v {
                self.memo.insert(p.clone(), b);
            }
        }
        // Seeds count as misses: each distinct projection's binding
        // machinery ran exactly once, same as the lazy path.
        self.hits = 0;
    }

    fn misses(&self) -> u64 {
        self.memo.len() as u64
    }
}

/// Cartesian product of per-attribute axes straight into a sorted set.
fn cartesian_into(axes: &[Arc<Vec<NodeId>>], out: &mut BTreeSet<Item>) {
    if axes.iter().any(|a| a.is_empty()) {
        return;
    }
    let mut cursor = vec![0usize; axes.len()];
    loop {
        out.insert(Item::new(
            cursor.iter().zip(axes).map(|(&c, ax)| ax[c]).collect(),
        ));
        let mut pos = axes.len();
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < axes[pos].len() {
                break;
            }
            cursor[pos] = 0;
        }
    }
}

fn note_memo(
    span: &mut hrdm_obs::SpanGuard,
    batches: u64,
    candidates: u64,
    hits: u64,
    misses: u64,
) {
    hrdm_obs::metrics::counter("batch.batches").add(batches);
    hrdm_obs::metrics::counter("batch.memo.hits").add(hits);
    hrdm_obs::metrics::counter("batch.memo.misses").add(misses);
    if span.is_active() {
        span.field_u64("batches", batches);
        span.field_u64("candidates", candidates);
        span.field_u64("memo_hits", hits);
        span.field_u64("memo_misses", misses);
    }
}

/// Batched selection — candidates, truths, and fixpoint exactly as
/// [`crate::ops::select`], with the per-column region intersection
/// memoized over each column's distinct values.
fn batch_select(
    relation: &HRelation,
    region: &Item,
    span: &mut hrdm_obs::SpanGuard,
) -> Result<HRelation> {
    let schema = relation.schema().clone();
    schema.check_item(region)?;
    let col = ColumnarRelation::from_relation(relation);
    let arity = schema.arity();
    let mut memos: Vec<HashMap<NodeId, Arc<Vec<NodeId>>>> = vec![HashMap::new(); arity];
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut spine = Spine::new();
    let mut batches = 0u64;
    for batch in col.batches() {
        batches += 1;
        let mut set: BTreeSet<Item> = BTreeSet::new();
        let mut axes: Vec<Arc<Vec<NodeId>>> = Vec::with_capacity(arity);
        'row: for k in 0..batch.len() {
            axes.clear();
            for (i, memo) in memos.iter_mut().enumerate() {
                let v = batch.col(i)[k];
                let axis = match memo.get(&v) {
                    Some(ax) => {
                        hits += 1;
                        ax.clone()
                    }
                    None => {
                        misses += 1;
                        let (ax, _) = cached_intersection(schema.domain(i), v, region.component(i));
                        memo.insert(v, ax.clone());
                        ax
                    }
                };
                if axis.is_empty() {
                    continue 'row;
                }
                axes.push(axis);
            }
            cartesian_into(&axes, &mut set);
        }
        spine.push(Run::from_set(set));
    }
    let candidates = spine.merge();
    note_memo(span, batches, candidates.len() as u64, hits, misses);
    let mut result = HRelation::with_preemption(schema, relation.preemption());
    for item in candidates {
        let truth = Truth::from_bool(class_holds(relation, &item)?);
        result.insert(Tuple::new(item, truth))?;
    }
    resolve_conflicts_fixpoint(&mut result, |item| {
        Ok(Truth::from_bool(class_holds(relation, item)?))
    })?;
    Ok(result)
}

/// Batched projection — identical to [`crate::ops::project`]
/// (tuple-wise, positive wins on collision), evaluated over column
/// slices.
fn batch_project(relation: &HRelation, attrs: &[usize]) -> Result<HRelation> {
    let schema = relation.schema();
    for &a in attrs {
        if a >= schema.arity() {
            return Err(CoreError::AttributeIndexOutOfRange(a));
        }
    }
    let new_schema = Arc::new(Schema::new(
        attrs
            .iter()
            .map(|&a| {
                let attr = schema.attribute(a);
                Attribute::new(attr.name(), attr.domain().clone())
            })
            .collect(),
    ));
    let col = ColumnarRelation::from_relation(relation);
    let mut out: BTreeMap<Item, Truth> = BTreeMap::new();
    for batch in col.batches() {
        for (k, &truth) in batch.truths().iter().enumerate() {
            let projected = Item::new(attrs.iter().map(|&a| batch.col(a)[k]).collect());
            out.entry(projected)
                .and_modify(|t| {
                    if truth == Truth::Positive {
                        *t = Truth::Positive;
                    }
                })
                .or_insert(truth);
        }
    }
    let mut result = HRelation::with_preemption(new_schema, relation.preemption());
    result.replace_tuples(out);
    Ok(result)
}

/// Batched natural join — candidate pairs, projections, truths, and
/// fixpoint exactly as [`crate::ops::join`], with shared-attribute
/// intersections memoized per distinct value pair and the two
/// per-projection binding lookups memoized per distinct projection.
fn batch_join(
    left: &HRelation,
    right: &HRelation,
    span: &mut hrdm_obs::SpanGuard,
) -> Result<HRelation> {
    let ls = left.schema().clone();
    let rs = right.schema().clone();
    let parts = join_parts(&ls, &rs)?;
    let left_arity = ls.arity();
    let shared = parts.shared;
    let right_only = parts.right_only;

    let project_left =
        |item: &Item| -> Item { Item::new(item.components()[..left_arity].to_vec()) };
    let project_right = |item: &Item| -> Item {
        Item::new(
            (0..rs.arity())
                .map(|j| {
                    if let Some(&(i, _)) = shared.iter().find(|&&(_, sj)| sj == j) {
                        item.component(i)
                    } else {
                        let pos = right_only.iter().position(|&r| r == j).expect("partition");
                        item.component(left_arity + pos)
                    }
                })
                .collect(),
        )
    };

    let lcol = ColumnarRelation::from_relation(left);
    let rcol = ColumnarRelation::from_relation(right);
    // Dictionary-encode each shared column and compute its
    // distinct-value intersection matrix up front (in parallel); the
    // row-pair loop below then resolves every axis with two array
    // loads — no hashing, no locks.
    let matrices: Vec<Option<IntersectionMatrix>> = (0..left_arity)
        .map(|i| {
            shared
                .iter()
                .find(|&&(si, _)| si == i)
                .map(|&(_, j)| IntersectionMatrix::build(ls.domain(i), lcol.col(i), rcol.col(j)))
        })
        .collect();
    let misses: u64 = matrices
        .iter()
        .flatten()
        .map(IntersectionMatrix::computed)
        .sum();
    let mut hits = 0u64;
    let mut spine = Spine::new();
    let mut batches = 0u64;
    for (lbn, lb) in lcol.batches().enumerate() {
        for (rbn, rb) in rcol.batches().enumerate() {
            batches += 1;
            let mut set: BTreeSet<Item> = BTreeSet::new();
            let mut axes: Vec<Arc<Vec<NodeId>>> = Vec::with_capacity(left_arity + right_only.len());
            for lk in 0..lb.len() {
                let lrow = lbn * crate::columnar::BATCH_ROWS + lk;
                'pair: for rk in 0..rb.len() {
                    let rrow = rbn * crate::columnar::BATCH_ROWS + rk;
                    axes.clear();
                    for (i, matrix) in matrices.iter().enumerate() {
                        let axis = match matrix {
                            Some(m) => {
                                hits += 1;
                                m.axis(lrow, rrow).clone()
                            }
                            None => Arc::new(vec![lb.col(i)[lk]]),
                        };
                        if axis.is_empty() {
                            continue 'pair;
                        }
                        axes.push(axis);
                    }
                    for &j in &right_only {
                        axes.push(Arc::new(vec![rb.col(j)[rk]]));
                    }
                    cartesian_into(&axes, &mut set);
                }
            }
            spine.push(Run::from_set(set));
        }
    }
    let candidates = spine.merge();

    let mut lmemo = TruthMemo::new(left);
    let mut rmemo = TruthMemo::new(right);
    // Fan the distinct projections' bindings across threads up front
    // (the tuple join par_maps over all candidates; here the memo
    // dedups first, then the distinct work parallelizes).
    let lprojs: BTreeSet<Item> = candidates.iter().map(&project_left).collect();
    let rprojs: BTreeSet<Item> = candidates.iter().map(&project_right).collect();
    lmemo.seed_parallel(&lprojs);
    rmemo.seed_parallel(&rprojs);
    let mut result = HRelation::with_preemption(parts.schema, left.preemption());
    for item in &candidates {
        let l = lmemo.holds(&project_left(item))?;
        let r = rmemo.holds(&project_right(item))?;
        result.insert(Tuple::new(item.clone(), Truth::from_bool(l && r)))?;
    }
    resolve_conflicts_fixpoint(&mut result, |item| {
        let l = lmemo.holds(&project_left(item))?;
        let r = rmemo.holds(&project_right(item))?;
        Ok(Truth::from_bool(l && r))
    })?;
    note_memo(
        span,
        batches,
        candidates.len() as u64,
        hits + lmemo.hits + rmemo.hits,
        misses + lmemo.misses() + rmemo.misses(),
    );
    if span.is_active() {
        span.field_u64("left_rows", left.len() as u64);
        span.field_u64("right_rows", right.len() as u64);
    }
    Ok(result)
}

/// Batched set operation — candidates, truths, and fixpoint exactly as
/// `crate::ops::set_ops::combine`, with pairwise restrictions memoized
/// per distinct value pair and binding lookups memoized per side.
fn batch_combine(
    left: &HRelation,
    right: &HRelation,
    op: impl Fn(bool, bool) -> bool + Copy,
    span: &mut hrdm_obs::SpanGuard,
) -> Result<HRelation> {
    if !left.schema().compatible(right.schema()) {
        return Err(CoreError::SchemaMismatch);
    }
    let schema = left.schema().clone();
    let arity = schema.arity();
    let lcol = ColumnarRelation::from_relation(left);
    let rcol = ColumnarRelation::from_relation(right);

    let mut spine = Spine::new();
    // The argument runs themselves are candidate items, already sorted.
    spine.push(Run::from_items(
        (0..lcol.len()).map(|k| lcol.item(k)).collect(),
    ));
    spine.push(Run::from_items(
        (0..rcol.len()).map(|k| rcol.item(k)).collect(),
    ));
    // Pairwise meets: restriction of every left row to every right row,
    // through per-column dictionary-encoded intersection matrices.
    let matrices: Vec<IntersectionMatrix> = (0..arity)
        .map(|i| IntersectionMatrix::build(schema.domain(i), lcol.col(i), rcol.col(i)))
        .collect();
    let misses: u64 = matrices.iter().map(IntersectionMatrix::computed).sum();
    let mut hits = 0u64;
    let mut batches = 0u64;
    for (lbn, lb) in lcol.batches().enumerate() {
        for (rbn, rb) in rcol.batches().enumerate() {
            batches += 1;
            let mut set: BTreeSet<Item> = BTreeSet::new();
            let mut axes: Vec<Arc<Vec<NodeId>>> = Vec::with_capacity(arity);
            for lk in 0..lb.len() {
                let lrow = lbn * crate::columnar::BATCH_ROWS + lk;
                'pair: for rk in 0..rb.len() {
                    let rrow = rbn * crate::columnar::BATCH_ROWS + rk;
                    axes.clear();
                    for matrix in &matrices {
                        hits += 1;
                        let axis = matrix.axis(lrow, rrow).clone();
                        if axis.is_empty() {
                            continue 'pair;
                        }
                        axes.push(axis);
                    }
                    cartesian_into(&axes, &mut set);
                }
            }
            spine.push(Run::from_set(set));
        }
    }
    let candidates = spine.merge();

    let mut lmemo = TruthMemo::new(left);
    let mut rmemo = TruthMemo::new(right);
    let mut result = HRelation::with_preemption(schema, left.preemption());
    for item in &candidates {
        let l = lmemo.holds(item)?;
        let r = rmemo.holds(item)?;
        result.insert(Tuple::new(item.clone(), Truth::from_bool(op(l, r))))?;
    }
    resolve_conflicts_fixpoint(&mut result, |item| {
        let l = lmemo.holds(item)?;
        let r = rmemo.holds(item)?;
        Ok(Truth::from_bool(op(l, r)))
    })?;
    note_memo(
        span,
        batches,
        candidates.len() as u64,
        hits + lmemo.hits + rmemo.hits,
        misses + lmemo.misses() + rmemo.misses(),
    );
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_fixtures::*;
    use crate::plan::LogicalPlan;

    fn tuples_of(r: &HRelation) -> Vec<(Item, Truth)> {
        r.iter().map(|(i, t)| (i.clone(), t)).collect()
    }

    fn assert_parity(plan: &LogicalPlan) {
        let tuple = plan.execute().expect("tuple executor");
        let batch = execute_batch(plan).expect("batch executor");
        assert_eq!(tuples_of(&tuple.relation), tuples_of(&batch.relation));
        assert_eq!(tuple.canonicalized_away, batch.canonicalized_away);
    }

    #[test]
    fn select_parity_on_the_flying_relation() {
        let schema = animal_schema();
        let r = flying(&schema);
        let region = r.item(&["Penguin"]).unwrap();
        assert_parity(&LogicalPlan::scan("Flying", r).select(region));
    }

    #[test]
    fn select_eq_and_project_parity() {
        let r = respects();
        let plan = LogicalPlan::scan("Respects", r)
            .select_eq("Student", "John")
            .project(vec![1, 0]);
        assert_parity(&plan);
    }

    #[test]
    fn join_parity_preserves_exceptions() {
        let r = respects();
        let plan = LogicalPlan::scan("R", r.clone()).join(LogicalPlan::scan("S", r));
        assert_parity(&plan);
    }

    #[test]
    fn set_op_parity() {
        let schema = animal_schema();
        let r = flying(&schema);
        let mut extra = HRelation::new(schema.clone());
        extra.assert_fact(&["Paul"], Truth::Positive).unwrap();
        for mk in [
            LogicalPlan::union as fn(LogicalPlan, LogicalPlan) -> LogicalPlan,
            LogicalPlan::intersect,
            LogicalPlan::diff,
        ] {
            let plan = mk(
                LogicalPlan::scan("F", r.clone()),
                LogicalPlan::scan("E", extra.clone()),
            );
            assert_parity(&plan);
        }
    }

    #[test]
    fn consolidate_and_explicate_delegate() {
        let schema = animal_schema();
        let r = flying(&schema);
        assert_parity(&LogicalPlan::scan("F", r.clone()).consolidate());
        assert_parity(&LogicalPlan::scan("F", r).explicate(vec![0]));
    }

    #[test]
    fn errors_agree_with_the_tuple_executor() {
        let schema = animal_schema();
        let r = flying(&schema);
        // Out-of-range explicate attribute fails identically.
        let plan = LogicalPlan::scan("F", r).explicate(vec![7]);
        let t = plan.execute();
        let b = execute_batch(&plan);
        assert!(t.is_err() && b.is_err());
        assert_eq!(format!("{:?}", t.err()), format!("{:?}", b.err()));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn batch_spans_carry_batch_names() {
        let schema = animal_schema();
        let r = flying(&schema);
        let plan = LogicalPlan::scan("F", r.clone()).select(r.item(&["Bird"]).unwrap());
        let executed = execute_batch(&plan).unwrap();
        assert!(executed.trace.find("batch.select").is_some());
        assert!(executed.trace.find("batch.scan").is_some());
        assert!(executed.trace.find("batch.canonicalize").is_some());
        let select = executed.trace.find("batch.select").unwrap();
        assert!(select.field_u64("batches").is_some());
        assert!(select.field_u64("candidates").is_some());
    }
}
