//! The `consolidate` operator (§3.3.1): redundant-tuple elimination.
//!
//! "Like all relational operators, consolidate takes as its argument a
//! relation, and produces as its result a relation. It 'draws' the
//! subsumption graph for the argument relation, determines the redundant
//! tuples from the graph and then eliminates them …. When a tuple is
//! deleted from the relation, the corresponding node is eliminated from
//! the subsumption graph following the node elimination procedure. …
//! there is a unique minimum relation with no redundant tuples, and …
//! this minimum can be achieved if the nodes of the subsumption graph
//! are examined in topologically sorted order."
//!
//! Redundancy (§3.3): a tuple is redundant iff it has the same truth
//! value as **all** its immediate predecessors in the subsumption graph —
//! with the *universal negated tuple* supplying a negative predecessor to
//! every parentless node, so a parentless negated tuple is redundant.

use std::time::Instant;

use crate::item::Item;
use crate::relation::HRelation;
use crate::stats;
use crate::subsumption::SubsumptionGraph;
use crate::tuple::Tuple;

/// The result of a consolidation: the minimal relation plus the tuples
/// that were removed (in removal order).
pub struct Consolidated {
    /// The consolidated relation.
    pub relation: HRelation,
    /// The redundant tuples that were eliminated, in elimination order.
    pub removed: Vec<Tuple>,
}

/// Consolidate `relation`: return the unique minimum equivalent relation
/// and the eliminated tuples.
///
/// Elimination proceeds in topological order of the subsumption graph,
/// re-running the node-elimination procedure after each removal exactly
/// as §3.3.1 prescribes, so a tuple whose predecessors *become* redundant
/// is itself caught later in the sweep (Fig. 6: removing the students/
/// incoherent-teachers tuple is what makes the conflict-resolution tuple
/// redundant).
pub fn consolidate(relation: &HRelation) -> Consolidated {
    let mut span = hrdm_obs::span!("core.consolidate");
    let start = Instant::now();
    let g = SubsumptionGraph::build(relation);
    let mut d = g.to_digraph();
    let mut removed: Vec<Tuple> = Vec::new();
    for v in g.topo_order() {
        let truth = g.truth(v);
        let preds = d.predecessors(v);
        let redundant = !preds.is_empty() && preds.iter().all(|&p| g.truth(p) == truth);
        if redundant {
            removed.push(Tuple::new(g.item(v).clone(), truth));
            d.eliminate(v);
        }
    }
    let mut relation = relation.clone();
    for t in &removed {
        relation.remove(&t.item);
    }
    stats::record_consolidate(start.elapsed(), removed.len());
    if span.is_active() {
        span.field_u64("rows", relation.len() as u64);
        span.field_u64("eliminated", removed.len() as u64);
    }
    Consolidated { relation, removed }
}

/// In-place convenience wrapper around [`consolidate`]; returns the
/// removed tuples.
pub fn consolidate_in_place(relation: &mut HRelation) -> Vec<Tuple> {
    let c = consolidate(relation);
    *relation = c.relation;
    c.removed
}

/// The tuples [`consolidate`] would remove, without building the result.
pub fn redundant_tuples(relation: &HRelation) -> Vec<Tuple> {
    consolidate(relation).removed
}

/// The items of `relation` that are redundant *right now* — a single
/// pass that, unlike [`consolidate`], does not cascade removals through
/// the subsumption graph. Exposed for the B3 ablation of the paper's
/// claim that topological-order (cascading) elimination reaches the
/// unique minimum.
pub fn immediately_redundant(relation: &HRelation) -> Vec<Item> {
    let g = SubsumptionGraph::build(relation);
    g.topo_order()
        .into_iter()
        .filter(|&v| {
            let preds = g.parents(v);
            !preds.is_empty() && preds.iter().all(|&p| g.truth(p) == g.truth(v))
        })
        .map(|v| g.item(v).clone())
        .collect()
}

/// Ablation of the paper's order claim: the same cascading sweep but in
/// *reverse* topological order (specific before general).
///
/// "Since the elimination of redundant tuples alters the subsumption
/// graph, the result of the consolidation will be sensitive to the
/// order in which the redundant tuples are deleted" — this variant
/// still yields an equivalent relation, but can miss the unique minimum
/// (Fig. 6: the conflict-resolution tuple is examined while its negated
/// ancestor still shields it, so both survive).
pub fn consolidate_reverse_order(relation: &HRelation) -> Consolidated {
    let g = SubsumptionGraph::build(relation);
    let mut d = g.to_digraph();
    let mut removed: Vec<Tuple> = Vec::new();
    let mut order = g.topo_order();
    order.reverse();
    for v in order {
        let truth = g.truth(v);
        let preds = d.predecessors(v);
        let redundant = !preds.is_empty() && preds.iter().all(|&p| g.truth(p) == truth);
        if redundant {
            removed.push(Tuple::new(g.item(v).clone(), truth));
            d.eliminate(v);
        }
    }
    let mut relation = relation.clone();
    for t in &removed {
        relation.remove(&t.item);
    }
    Consolidated { relation, removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::truth::Truth;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// Figs. 2–3: the Respects relation over Student × Teacher.
    fn respects() -> HRelation {
        let mut s = HierarchyGraph::new("Student");
        let ob = s.add_class("Obsequious Student", s.root()).unwrap();
        s.add_instance("John", ob).unwrap();
        let mut t = HierarchyGraph::new("Teacher");
        t.add_class("Incoherent Teacher", t.root()).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Student", Arc::new(s)),
            Attribute::new("Teacher", Arc::new(t)),
        ]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        r.assert_fact(
            &["Obsequious Student", "Incoherent Teacher"],
            Truth::Positive,
        )
        .unwrap();
        r
    }

    #[test]
    fn fig6_consolidation_of_respects() {
        // Fig. 6: the students/incoherent-teacher negation is redundant
        // (only predecessor is the universal negated tuple); its removal
        // makes the conflict-resolving tuple redundant too. The minimum
        // is the single tuple +(∀Obsequious Student, ∀Teacher).
        let r = respects();
        let c = consolidate(&r);
        assert_eq!(c.relation.len(), 1);
        let survivor = c.relation.items().next().unwrap().clone();
        assert_eq!(
            survivor,
            r.item(&["Obsequious Student", "Teacher"]).unwrap()
        );
        assert_eq!(c.removed.len(), 2);
        // Removal order: the negation first (topological order).
        assert_eq!(
            c.removed[0].item,
            r.item(&["Student", "Incoherent Teacher"]).unwrap()
        );
        assert_eq!(c.removed[0].truth, Truth::Negative);
        assert_eq!(
            c.removed[1].item,
            r.item(&["Obsequious Student", "Incoherent Teacher"])
                .unwrap()
        );
    }

    #[test]
    fn fig6_extension_preserved() {
        // "has exactly the same extension as the relation in Fig. 3".
        let r = respects();
        let c = consolidate(&r);
        let john_inco = r.item(&["John", "Incoherent Teacher"]).unwrap();
        let john_any = r.item(&["John", "Teacher"]).unwrap();
        for item in [john_inco, john_any] {
            assert_eq!(
                r.bind(&item).truth(),
                c.relation.bind(&item).truth(),
                "binding changed for {item:?}"
            );
        }
    }

    #[test]
    fn parentless_negated_tuple_is_redundant() {
        // A negated tuple with no positive predecessor asserts what the
        // closed world already implies.
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        g.add_instance("x", a).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Negative).unwrap();
        let c = consolidate(&r);
        assert!(c.relation.is_empty());
        assert_eq!(c.removed.len(), 1);
    }

    #[test]
    fn parentless_positive_tuple_is_not_redundant() {
        let mut g = HierarchyGraph::new("D");
        g.add_class("A", g.root()).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        let c = consolidate(&r);
        assert_eq!(c.relation.len(), 1);
        assert!(c.removed.is_empty());
    }

    #[test]
    fn exception_structure_is_preserved() {
        // +Bird, -Penguin, +AFP: nothing is redundant (alternating
        // truth values down the chain).
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_class("Amazing Flying Penguin", penguin).unwrap();
        let schema = Arc::new(Schema::single("Animal", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        let c = consolidate(&r);
        assert_eq!(c.relation.len(), 3);
        assert!(c.removed.is_empty());
    }

    #[test]
    fn same_truth_chain_collapses_to_top() {
        // +Bird, +Penguin, +AFP: only the most general survives.
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_class("Amazing Flying Penguin", penguin).unwrap();
        let schema = Arc::new(Schema::single("Animal", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Positive).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        let c = consolidate(&r);
        assert_eq!(c.relation.len(), 1);
        assert!(c.relation.contains(&r.item(&["Bird"]).unwrap()));
    }

    #[test]
    fn consolidate_is_idempotent() {
        let r = respects();
        let once = consolidate(&r).relation;
        let twice = consolidate(&once);
        assert!(twice.removed.is_empty());
        assert_eq!(twice.relation.len(), once.len());
    }

    #[test]
    fn in_place_variant_matches() {
        let mut r = respects();
        let removed = consolidate_in_place(&mut r);
        assert_eq!(removed.len(), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(redundant_tuples(&r).len(), 0);
    }

    #[test]
    fn immediately_redundant_misses_cascade() {
        // First-pass redundancy finds only the negation; the cascade
        // (conflict-resolver) needs the topological sweep.
        let r = respects();
        let now = immediately_redundant(&r);
        assert_eq!(now.len(), 1);
        assert_eq!(now[0], r.item(&["Student", "Incoherent Teacher"]).unwrap());
    }

    #[test]
    fn reverse_order_misses_the_minimum_but_stays_equivalent() {
        // The order-sensitivity the paper warns about: processing the
        // Fig. 6 relation most-specific-first examines the resolver
        // tuple while the (not yet removed) negation still shields it.
        let r = respects();
        let forward = consolidate(&r);
        let reverse = consolidate_reverse_order(&r);
        assert_eq!(
            forward.relation.len(),
            1,
            "topological order: unique minimum"
        );
        assert!(
            reverse.relation.len() > forward.relation.len(),
            "reverse order keeps {} tuples",
            reverse.relation.len()
        );
        // Both orders preserve the model.
        assert!(crate::flat::equivalent(&r, &reverse.relation));
        assert!(crate::flat::equivalent(&r, &forward.relation));
    }

    #[test]
    fn fig5_union_subsumption_is_not_eliminated() {
        // §3.2 / Fig. 5: C ⊆ A ∪ B with assertions on A and B does NOT
        // make the C tuple redundant (no union concept in the model).
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        // C splits across A and B: c1 under A and B... model C as a class
        // whose members each fall under A or B but C itself is under
        // neither.
        let c = g.add_class("C", g.root()).unwrap();
        g.add_instance_multi("c1", &[a, c]).unwrap();
        g.add_instance_multi("c2", &[b, c]).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Positive).unwrap();
        r.assert_fact(&["C"], Truth::Positive).unwrap();
        let cons = consolidate(&r);
        assert_eq!(cons.relation.len(), 3, "C is kept although A ∪ B covers it");
        let _ = c;
    }
}
