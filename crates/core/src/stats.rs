//! `EngineStats`: a typed view over the engine's metrics registry.
//!
//! The counters themselves now live in the shared `hrdm-obs` registry
//! (`core.*` namespace here, `hierarchy.closure.*` for the closure
//! cache, `storage.heap.*` in the storage crate), so recording stays a
//! relaxed atomic op that is safe from the parallel workers in
//! [`crate::parallel`] — but resets, exports (Prometheus text,
//! `BENCH_obs.json`) and latency quantiles come from one place instead
//! of per-crate static sets.
//!
//! [`snapshot`] gathers the registry values into one [`EngineStats`]
//! struct; [`reset`] is **atomic** across every registered metric
//! ([`hrdm_obs::metrics::reset_all`] zeroes the whole registry in one
//! sweep under the registry lock), which closes the old bench-harness
//! race where caches were cleared while per-op wall-time accumulators
//! kept the previous run's totals. [`EngineStats::render_stable`]
//! renders only the timing-free fields, so golden snapshots can embed
//! an engine-stats trailer without depending on wall-clock noise.

use std::fmt;
use std::sync::OnceLock;
use std::time::Duration;

use hrdm_obs::metrics::{self, Counter, Histogram};

struct CoreMetrics {
    subsumption_hits: Counter,
    subsumption_misses: Counter,
    subsumption_build_ns: Counter,
    tuples_eliminated: Counter,
    tuples_expanded: Counter,
    consolidate_calls: Counter,
    consolidate_ns: Counter,
    consolidate_latency: Histogram,
    explicate_calls: Counter,
    explicate_ns: Counter,
    explicate_latency: Histogram,
    conflict_calls: Counter,
    conflict_ns: Counter,
    join_calls: Counter,
    join_ns: Counter,
    join_latency: Histogram,
    plan_execs: Counter,
    plan_nodes: Counter,
    plan_rows: Counter,
    plan_ns: Counter,
    plan_node_latency: Histogram,
}

fn obs() -> &'static CoreMetrics {
    static M: OnceLock<CoreMetrics> = OnceLock::new();
    M.get_or_init(|| CoreMetrics {
        subsumption_hits: metrics::counter("core.subsumption.hits"),
        subsumption_misses: metrics::counter("core.subsumption.misses"),
        subsumption_build_ns: metrics::counter("core.subsumption.build_ns"),
        tuples_eliminated: metrics::counter("core.consolidate.eliminated"),
        tuples_expanded: metrics::counter("core.explicate.expanded"),
        consolidate_calls: metrics::counter("core.consolidate.calls"),
        consolidate_ns: metrics::counter("core.consolidate.ns"),
        consolidate_latency: metrics::histogram("core.consolidate.latency_ns"),
        explicate_calls: metrics::counter("core.explicate.calls"),
        explicate_ns: metrics::counter("core.explicate.ns"),
        explicate_latency: metrics::histogram("core.explicate.latency_ns"),
        conflict_calls: metrics::counter("core.conflict.calls"),
        conflict_ns: metrics::counter("core.conflict.ns"),
        join_calls: metrics::counter("core.join.calls"),
        join_ns: metrics::counter("core.join.ns"),
        join_latency: metrics::histogram("core.join.latency_ns"),
        plan_execs: metrics::counter("core.plan.execs"),
        plan_nodes: metrics::counter("core.plan.nodes"),
        plan_rows: metrics::counter("core.plan.rows"),
        plan_ns: metrics::counter("core.plan.ns"),
        plan_node_latency: metrics::histogram("core.plan.node_latency_ns"),
    })
}

/// A point-in-time snapshot of every engine counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Closure-cache lookups served without a rebuild.
    pub closure_hits: u64,
    /// Closure-cache lookups that built a reachability matrix.
    pub closure_misses: u64,
    /// Closure-cache entries evicted by the FIFO capacity bound.
    pub closure_evictions: u64,
    /// Total closure build wall time, nanoseconds.
    pub closure_build_ns: u64,
    /// Closures currently resident in the hierarchy cache.
    pub closure_entries: usize,
    /// Subsumption-graph cache lookups served from cache.
    pub subsumption_hits: u64,
    /// Subsumption-graph cache lookups that built the graph.
    pub subsumption_misses: u64,
    /// Total subsumption-graph build wall time, nanoseconds.
    pub subsumption_build_ns: u64,
    /// Tuples removed by `consolidate` since the last reset.
    pub tuples_eliminated: u64,
    /// Tuples emitted by `explicate` since the last reset.
    pub tuples_expanded: u64,
    /// `consolidate` invocations.
    pub consolidate_calls: u64,
    /// Total `consolidate` wall time, nanoseconds.
    pub consolidate_ns: u64,
    /// `explicate` invocations.
    pub explicate_calls: u64,
    /// Total `explicate` wall time, nanoseconds.
    pub explicate_ns: u64,
    /// `find_conflicts` invocations.
    pub conflict_calls: u64,
    /// Total conflict-detection wall time, nanoseconds.
    pub conflict_ns: u64,
    /// `join` invocations.
    pub join_calls: u64,
    /// Total `join` wall time, nanoseconds.
    pub join_ns: u64,
    /// Logical-plan executions ([`crate::plan::LogicalPlan::execute`]).
    pub plan_execs: u64,
    /// Plan operator nodes evaluated across all plan executions.
    pub plan_nodes: u64,
    /// Rows produced by plan operator nodes (summed over all nodes).
    pub plan_rows: u64,
    /// Total plan-node wall time, nanoseconds.
    pub plan_ns: u64,
}

impl EngineStats {
    /// Closure-cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn closure_hit_rate(&self) -> Option<f64> {
        let total = self.closure_hits + self.closure_misses;
        (total > 0).then(|| self.closure_hits as f64 / total as f64)
    }

    /// Subsumption-cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn subsumption_hit_rate(&self) -> Option<f64> {
        let total = self.subsumption_hits + self.subsumption_misses;
        (total > 0).then(|| self.subsumption_hits as f64 / total as f64)
    }

    /// Render only the timing-free fields — counts, hit rates, tuple
    /// totals — one per line. This is what golden snapshots and figure
    /// reports embed: re-running the engine gives byte-identical output
    /// as long as the *work* is identical, no matter how fast the
    /// machine is. (Resident-entry gauges are also elided: they depend
    /// on whatever else shares the process-wide caches.)
    pub fn render_stable(&self) -> String {
        fn rate(hits: u64, misses: u64) -> String {
            let total = hits + misses;
            if total == 0 {
                "n/a".to_string()
            } else {
                format!("{:.0}%", 100.0 * hits as f64 / total as f64)
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "closure cache     {} hits / {} misses ({} hit rate), {} evictions\n",
            self.closure_hits,
            self.closure_misses,
            rate(self.closure_hits, self.closure_misses),
            self.closure_evictions,
        ));
        out.push_str(&format!(
            "subsumption cache {} hits / {} misses ({} hit rate)\n",
            self.subsumption_hits,
            self.subsumption_misses,
            rate(self.subsumption_hits, self.subsumption_misses),
        ));
        out.push_str(&format!(
            "consolidate       {} calls, {} tuples eliminated\n",
            self.consolidate_calls, self.tuples_eliminated,
        ));
        out.push_str(&format!(
            "explicate         {} calls, {} tuples expanded\n",
            self.explicate_calls, self.tuples_expanded,
        ));
        out.push_str(&format!(
            "conflict check    {} calls\n",
            self.conflict_calls
        ));
        out.push_str(&format!("join              {} calls\n", self.join_calls));
        out.push_str(&format!(
            "plan exec         {} plan(s), {} node(s), {} row(s)",
            self.plan_execs, self.plan_nodes, self.plan_rows,
        ));
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rate(hits: u64, misses: u64) -> String {
            let total = hits + misses;
            if total == 0 {
                "n/a".to_string()
            } else {
                format!("{:.0}%", 100.0 * hits as f64 / total as f64)
            }
        }
        writeln!(
            f,
            "closure cache     {} hits / {} misses ({} hit rate), {} evicted, {} resident, {} building",
            self.closure_hits,
            self.closure_misses,
            rate(self.closure_hits, self.closure_misses),
            self.closure_evictions,
            self.closure_entries,
            fmt_ns(self.closure_build_ns),
        )?;
        writeln!(
            f,
            "subsumption cache {} hits / {} misses ({} hit rate), {} building",
            self.subsumption_hits,
            self.subsumption_misses,
            rate(self.subsumption_hits, self.subsumption_misses),
            fmt_ns(self.subsumption_build_ns),
        )?;
        writeln!(
            f,
            "consolidate       {} calls, {}, {} tuples eliminated",
            self.consolidate_calls,
            fmt_ns(self.consolidate_ns),
            self.tuples_eliminated,
        )?;
        writeln!(
            f,
            "explicate         {} calls, {}, {} tuples expanded",
            self.explicate_calls,
            fmt_ns(self.explicate_ns),
            self.tuples_expanded,
        )?;
        writeln!(
            f,
            "conflict check    {} calls, {}",
            self.conflict_calls,
            fmt_ns(self.conflict_ns),
        )?;
        writeln!(
            f,
            "join              {} calls, {}",
            self.join_calls,
            fmt_ns(self.join_ns),
        )?;
        write!(
            f,
            "plan exec         {} plan(s), {} node(s), {} row(s), {}",
            self.plan_execs,
            self.plan_nodes,
            self.plan_rows,
            fmt_ns(self.plan_ns),
        )
    }
}

/// Snapshot every counter, merging the hierarchy crate's closure-cache
/// stats with the core-side operator counters.
pub fn snapshot() -> EngineStats {
    let closure = hrdm_hierarchy::cache::stats();
    let m = obs();
    EngineStats {
        closure_hits: closure.hits,
        closure_misses: closure.misses,
        closure_evictions: closure.evictions,
        closure_build_ns: closure.build_ns,
        closure_entries: closure.entries,
        subsumption_hits: m.subsumption_hits.get(),
        subsumption_misses: m.subsumption_misses.get(),
        subsumption_build_ns: m.subsumption_build_ns.get(),
        tuples_eliminated: m.tuples_eliminated.get(),
        tuples_expanded: m.tuples_expanded.get(),
        consolidate_calls: m.consolidate_calls.get(),
        consolidate_ns: m.consolidate_ns.get(),
        explicate_calls: m.explicate_calls.get(),
        explicate_ns: m.explicate_ns.get(),
        conflict_calls: m.conflict_calls.get(),
        conflict_ns: m.conflict_ns.get(),
        join_calls: m.join_calls.get(),
        join_ns: m.join_ns.get(),
        plan_execs: m.plan_execs.get(),
        plan_nodes: m.plan_nodes.get(),
        plan_rows: m.plan_rows.get(),
        plan_ns: m.plan_ns.get(),
    }
}

/// Zero every counter — atomically, across all crates.
///
/// This is one sweep over the shared metrics registry under its lock,
/// so there is no window where (say) the closure-cache counters read
/// zero but the consolidate wall-time accumulator still holds the
/// previous run: either a reader sees the old totals or the new zeros.
/// Resident cache entries are kept.
pub fn reset() {
    metrics::reset_all();
}

pub(crate) fn record_subsumption_hit() {
    obs().subsumption_hits.incr();
}

pub(crate) fn record_subsumption_miss(build: Duration) {
    let m = obs();
    m.subsumption_misses.incr();
    m.subsumption_build_ns.add(build.as_nanos() as u64);
}

pub(crate) fn record_consolidate(elapsed: Duration, eliminated: usize) {
    let m = obs();
    let ns = elapsed.as_nanos() as u64;
    m.consolidate_calls.incr();
    m.consolidate_ns.add(ns);
    m.consolidate_latency.observe_ns(ns);
    m.tuples_eliminated.add(eliminated as u64);
}

pub(crate) fn record_explicate(elapsed: Duration, expanded: usize) {
    let m = obs();
    let ns = elapsed.as_nanos() as u64;
    m.explicate_calls.incr();
    m.explicate_ns.add(ns);
    m.explicate_latency.observe_ns(ns);
    m.tuples_expanded.add(expanded as u64);
}

pub(crate) fn record_conflict(elapsed: Duration) {
    let m = obs();
    m.conflict_calls.incr();
    m.conflict_ns.add(elapsed.as_nanos() as u64);
}

pub(crate) fn record_join(elapsed: Duration) {
    let m = obs();
    let ns = elapsed.as_nanos() as u64;
    m.join_calls.incr();
    m.join_ns.add(ns);
    m.join_latency.observe_ns(ns);
}

pub(crate) fn record_plan_exec() {
    obs().plan_execs.incr();
}

pub(crate) fn record_plan_node(rows: usize, wall_ns: u64) {
    let m = obs();
    m.plan_nodes.incr();
    m.plan_rows.add(rows as u64);
    m.plan_ns.add(wall_ns);
    m.plan_node_latency.observe_ns(wall_ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Counters are global; only check deltas and monotonicity.
        let before = snapshot();
        record_consolidate(Duration::from_nanos(500), 3);
        record_explicate(Duration::from_nanos(200), 7);
        record_subsumption_hit();
        let after = snapshot();
        assert!(after.consolidate_calls > before.consolidate_calls);
        assert!(after.tuples_eliminated >= before.tuples_eliminated + 3);
        assert!(after.tuples_expanded >= before.tuples_expanded + 7);
        assert!(after.subsumption_hits > before.subsumption_hits);
    }

    #[test]
    fn latency_histograms_feed_the_registry() {
        record_join(Duration::from_micros(10));
        let h = metrics::histogram("core.join.latency_ns");
        assert!(h.count() >= 1);
        assert!(h.quantile_ns(0.5).is_some());
    }

    #[test]
    fn display_mentions_every_section() {
        let s = snapshot();
        let text = s.to_string();
        for needle in [
            "closure cache",
            "subsumption",
            "consolidate",
            "explicate",
            "join",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn stable_render_has_no_wall_times() {
        let s = EngineStats {
            closure_hits: 3,
            closure_misses: 1,
            closure_build_ns: 123_456,
            consolidate_calls: 2,
            consolidate_ns: 987_654,
            tuples_eliminated: 9,
            ..EngineStats::default()
        };
        let stable = s.render_stable();
        assert!(stable.contains("3 hits / 1 misses"), "{stable}");
        assert!(stable.contains("9 tuples eliminated"), "{stable}");
        // "evictions"/"misses" contain the letters "ns"/"s", so probe
        // for the actual fmt_ns output forms instead.
        for timing in [" ns", "µs", " ms", "building", "123", "987"] {
            assert!(
                !stable.contains(timing),
                "stable render leaked timing token {timing:?}: {stable}"
            );
        }
    }

    #[test]
    fn hit_rates() {
        let s = EngineStats {
            closure_hits: 3,
            closure_misses: 1,
            ..EngineStats::default()
        };
        assert_eq!(s.closure_hit_rate(), Some(0.75));
        assert_eq!(s.subsumption_hit_rate(), None);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert!(fmt_ns(1_500).contains("µs"));
        assert!(fmt_ns(2_000_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).contains('s'));
    }
}
