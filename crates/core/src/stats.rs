//! `EngineStats`: lightweight process-wide instrumentation of the
//! engine's caches and operators.
//!
//! Counters are relaxed atomics, so recording is a few nanoseconds and
//! safe from the parallel workers in [`crate::parallel`]. A
//! [`snapshot`] merges the core-side counters with the hierarchy
//! crate's closure-cache counters
//! ([`hrdm_hierarchy::cache::stats`]) into one [`EngineStats`] value;
//! the benchmark harness (`crates/bench`) prints it after each workload
//! so B2/B3/B4 report cache effectiveness alongside wall time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static SUBSUMPTION_HITS: AtomicU64 = AtomicU64::new(0);
static SUBSUMPTION_MISSES: AtomicU64 = AtomicU64::new(0);
static SUBSUMPTION_BUILD_NS: AtomicU64 = AtomicU64::new(0);
static TUPLES_ELIMINATED: AtomicU64 = AtomicU64::new(0);
static TUPLES_EXPANDED: AtomicU64 = AtomicU64::new(0);
static CONSOLIDATE_CALLS: AtomicU64 = AtomicU64::new(0);
static CONSOLIDATE_NS: AtomicU64 = AtomicU64::new(0);
static EXPLICATE_CALLS: AtomicU64 = AtomicU64::new(0);
static EXPLICATE_NS: AtomicU64 = AtomicU64::new(0);
static CONFLICT_CALLS: AtomicU64 = AtomicU64::new(0);
static CONFLICT_NS: AtomicU64 = AtomicU64::new(0);
static JOIN_CALLS: AtomicU64 = AtomicU64::new(0);
static JOIN_NS: AtomicU64 = AtomicU64::new(0);
static PLAN_EXECS: AtomicU64 = AtomicU64::new(0);
static PLAN_NODES: AtomicU64 = AtomicU64::new(0);
static PLAN_ROWS: AtomicU64 = AtomicU64::new(0);
static PLAN_NS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of every engine counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Closure-cache lookups served without a rebuild.
    pub closure_hits: u64,
    /// Closure-cache lookups that built a reachability matrix.
    pub closure_misses: u64,
    /// Total closure build wall time, nanoseconds.
    pub closure_build_ns: u64,
    /// Closures currently resident in the hierarchy cache.
    pub closure_entries: usize,
    /// Subsumption-graph cache lookups served from cache.
    pub subsumption_hits: u64,
    /// Subsumption-graph cache lookups that built the graph.
    pub subsumption_misses: u64,
    /// Total subsumption-graph build wall time, nanoseconds.
    pub subsumption_build_ns: u64,
    /// Tuples removed by `consolidate` since the last reset.
    pub tuples_eliminated: u64,
    /// Tuples emitted by `explicate` since the last reset.
    pub tuples_expanded: u64,
    /// `consolidate` invocations.
    pub consolidate_calls: u64,
    /// Total `consolidate` wall time, nanoseconds.
    pub consolidate_ns: u64,
    /// `explicate` invocations.
    pub explicate_calls: u64,
    /// Total `explicate` wall time, nanoseconds.
    pub explicate_ns: u64,
    /// `find_conflicts` invocations.
    pub conflict_calls: u64,
    /// Total conflict-detection wall time, nanoseconds.
    pub conflict_ns: u64,
    /// `join` invocations.
    pub join_calls: u64,
    /// Total `join` wall time, nanoseconds.
    pub join_ns: u64,
    /// Logical-plan executions ([`crate::plan::LogicalPlan::execute`]).
    pub plan_execs: u64,
    /// Plan operator nodes evaluated across all plan executions.
    pub plan_nodes: u64,
    /// Rows produced by plan operator nodes (summed over all nodes).
    pub plan_rows: u64,
    /// Total plan-node wall time, nanoseconds.
    pub plan_ns: u64,
}

impl EngineStats {
    /// Closure-cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn closure_hit_rate(&self) -> Option<f64> {
        let total = self.closure_hits + self.closure_misses;
        (total > 0).then(|| self.closure_hits as f64 / total as f64)
    }

    /// Subsumption-cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn subsumption_hit_rate(&self) -> Option<f64> {
        let total = self.subsumption_hits + self.subsumption_misses;
        (total > 0).then(|| self.subsumption_hits as f64 / total as f64)
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rate(hits: u64, misses: u64) -> String {
            let total = hits + misses;
            if total == 0 {
                "n/a".to_string()
            } else {
                format!("{:.0}%", 100.0 * hits as f64 / total as f64)
            }
        }
        writeln!(
            f,
            "closure cache     {} hits / {} misses ({} hit rate), {} resident, {} building",
            self.closure_hits,
            self.closure_misses,
            rate(self.closure_hits, self.closure_misses),
            self.closure_entries,
            fmt_ns(self.closure_build_ns),
        )?;
        writeln!(
            f,
            "subsumption cache {} hits / {} misses ({} hit rate), {} building",
            self.subsumption_hits,
            self.subsumption_misses,
            rate(self.subsumption_hits, self.subsumption_misses),
            fmt_ns(self.subsumption_build_ns),
        )?;
        writeln!(
            f,
            "consolidate       {} calls, {}, {} tuples eliminated",
            self.consolidate_calls,
            fmt_ns(self.consolidate_ns),
            self.tuples_eliminated,
        )?;
        writeln!(
            f,
            "explicate         {} calls, {}, {} tuples expanded",
            self.explicate_calls,
            fmt_ns(self.explicate_ns),
            self.tuples_expanded,
        )?;
        writeln!(
            f,
            "conflict check    {} calls, {}",
            self.conflict_calls,
            fmt_ns(self.conflict_ns),
        )?;
        writeln!(
            f,
            "join              {} calls, {}",
            self.join_calls,
            fmt_ns(self.join_ns),
        )?;
        write!(
            f,
            "plan exec         {} plan(s), {} node(s), {} row(s), {}",
            self.plan_execs,
            self.plan_nodes,
            self.plan_rows,
            fmt_ns(self.plan_ns),
        )
    }
}

/// Snapshot every counter, merging the hierarchy crate's closure-cache
/// stats with the core-side operator counters.
pub fn snapshot() -> EngineStats {
    let closure = hrdm_hierarchy::cache::stats();
    EngineStats {
        closure_hits: closure.hits,
        closure_misses: closure.misses,
        closure_build_ns: closure.build_ns,
        closure_entries: closure.entries,
        subsumption_hits: SUBSUMPTION_HITS.load(Ordering::Relaxed),
        subsumption_misses: SUBSUMPTION_MISSES.load(Ordering::Relaxed),
        subsumption_build_ns: SUBSUMPTION_BUILD_NS.load(Ordering::Relaxed),
        tuples_eliminated: TUPLES_ELIMINATED.load(Ordering::Relaxed),
        tuples_expanded: TUPLES_EXPANDED.load(Ordering::Relaxed),
        consolidate_calls: CONSOLIDATE_CALLS.load(Ordering::Relaxed),
        consolidate_ns: CONSOLIDATE_NS.load(Ordering::Relaxed),
        explicate_calls: EXPLICATE_CALLS.load(Ordering::Relaxed),
        explicate_ns: EXPLICATE_NS.load(Ordering::Relaxed),
        conflict_calls: CONFLICT_CALLS.load(Ordering::Relaxed),
        conflict_ns: CONFLICT_NS.load(Ordering::Relaxed),
        join_calls: JOIN_CALLS.load(Ordering::Relaxed),
        join_ns: JOIN_NS.load(Ordering::Relaxed),
        plan_execs: PLAN_EXECS.load(Ordering::Relaxed),
        plan_nodes: PLAN_NODES.load(Ordering::Relaxed),
        plan_rows: PLAN_ROWS.load(Ordering::Relaxed),
        plan_ns: PLAN_NS.load(Ordering::Relaxed),
    }
}

/// Zero every counter, including the hierarchy closure-cache counters
/// (resident cache entries are kept).
pub fn reset() {
    hrdm_hierarchy::cache::reset_stats();
    for c in [
        &SUBSUMPTION_HITS,
        &SUBSUMPTION_MISSES,
        &SUBSUMPTION_BUILD_NS,
        &TUPLES_ELIMINATED,
        &TUPLES_EXPANDED,
        &CONSOLIDATE_CALLS,
        &CONSOLIDATE_NS,
        &EXPLICATE_CALLS,
        &EXPLICATE_NS,
        &CONFLICT_CALLS,
        &CONFLICT_NS,
        &JOIN_CALLS,
        &JOIN_NS,
        &PLAN_EXECS,
        &PLAN_NODES,
        &PLAN_ROWS,
        &PLAN_NS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

pub(crate) fn record_subsumption_hit() {
    SUBSUMPTION_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_subsumption_miss(build: Duration) {
    SUBSUMPTION_MISSES.fetch_add(1, Ordering::Relaxed);
    SUBSUMPTION_BUILD_NS.fetch_add(build.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_consolidate(elapsed: Duration, eliminated: usize) {
    CONSOLIDATE_CALLS.fetch_add(1, Ordering::Relaxed);
    CONSOLIDATE_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    TUPLES_ELIMINATED.fetch_add(eliminated as u64, Ordering::Relaxed);
}

pub(crate) fn record_explicate(elapsed: Duration, expanded: usize) {
    EXPLICATE_CALLS.fetch_add(1, Ordering::Relaxed);
    EXPLICATE_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    TUPLES_EXPANDED.fetch_add(expanded as u64, Ordering::Relaxed);
}

pub(crate) fn record_conflict(elapsed: Duration) {
    CONFLICT_CALLS.fetch_add(1, Ordering::Relaxed);
    CONFLICT_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_join(elapsed: Duration) {
    JOIN_CALLS.fetch_add(1, Ordering::Relaxed);
    JOIN_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_plan_exec() {
    PLAN_EXECS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_plan_node(rows: usize, wall_ns: u64) {
    PLAN_NODES.fetch_add(1, Ordering::Relaxed);
    PLAN_ROWS.fetch_add(rows as u64, Ordering::Relaxed);
    PLAN_NS.fetch_add(wall_ns, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Counters are global; only check deltas and monotonicity.
        let before = snapshot();
        record_consolidate(Duration::from_nanos(500), 3);
        record_explicate(Duration::from_nanos(200), 7);
        record_subsumption_hit();
        let after = snapshot();
        assert!(after.consolidate_calls > before.consolidate_calls);
        assert!(after.tuples_eliminated >= before.tuples_eliminated + 3);
        assert!(after.tuples_expanded >= before.tuples_expanded + 7);
        assert!(after.subsumption_hits > before.subsumption_hits);
    }

    #[test]
    fn display_mentions_every_section() {
        let s = snapshot();
        let text = s.to_string();
        for needle in [
            "closure cache",
            "subsumption",
            "consolidate",
            "explicate",
            "join",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn hit_rates() {
        let s = EngineStats {
            closure_hits: 3,
            closure_misses: 1,
            ..EngineStats::default()
        };
        assert_eq!(s.closure_hit_rate(), Some(0.75));
        assert_eq!(s.subsumption_hit_rate(), None);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert!(fmt_ns(1_500).contains("µs"));
        assert!(fmt_ns(2_000_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).contains('s'));
    }
}
