//! The equivalent flat relation: a hierarchical relation's unique model.
//!
//! "Every hierarchical relation must be equivalent to a unique flat
//! relation for a given item hierarchy; that is, it has a unique model
//! of the atomic items that satisfy the given relation. Any
//! manipulations on hierarchical relations should have the same effect
//! whether performed on the hierarchical relations or on the equivalent
//! flat relations" (§3).
//!
//! [`FlatRelation`] is that model: the set of atomic items for which the
//! relation holds. It is the ground truth every operator in [`crate::ops`]
//! is property-tested against, and the representation the flat-baseline
//! storage engine (`hrdm-storage`) persists.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::explicate::explicate_all;
use crate::item::Item;
use crate::relation::HRelation;
use crate::schema::Schema;
use crate::truth::Truth;

/// The atomic extension of a hierarchical relation.
#[derive(Clone)]
pub struct FlatRelation {
    schema: Arc<Schema>,
    atoms: BTreeSet<Item>,
}

impl PartialEq for FlatRelation {
    fn eq(&self, other: &FlatRelation) -> bool {
        self.schema.compatible(&other.schema) && self.atoms == other.atoms
    }
}

impl Eq for FlatRelation {}

impl FlatRelation {
    /// An empty flat relation.
    pub fn new(schema: Arc<Schema>) -> FlatRelation {
        FlatRelation {
            schema,
            atoms: BTreeSet::new(),
        }
    }

    /// Build from an explicit atom set.
    pub fn from_atoms(schema: Arc<Schema>, atoms: BTreeSet<Item>) -> FlatRelation {
        FlatRelation { schema, atoms }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of atomic items in the extension.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the extension is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, item: &Item) -> bool {
        self.atoms.contains(item)
    }

    /// Iterate atoms in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.atoms.iter()
    }

    /// Add an atom.
    pub fn insert(&mut self, item: Item) -> bool {
        self.atoms.insert(item)
    }

    /// The underlying set.
    pub fn atoms(&self) -> &BTreeSet<Item> {
        &self.atoms
    }

    /// Consume into the underlying set.
    pub fn into_atoms(self) -> BTreeSet<Item> {
        self.atoms
    }
}

impl std::fmt::Debug for FlatRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "FlatRelation({} atoms)", self.len())?;
        for a in &self.atoms {
            writeln!(f, "  {}", self.schema.display_item(a))?;
        }
        Ok(())
    }
}

/// The flat extension of `relation`, computed by full explication
/// (reverse-topological insertion; linear in the extension size).
///
/// Requires a consistent relation — conflicted items resolve
/// arbitrarily otherwise.
pub fn flatten(relation: &HRelation) -> FlatRelation {
    let full = explicate_all(relation);
    let atoms = full
        .iter()
        .filter(|&(_, t)| t == Truth::Positive)
        .map(|(i, _)| i.clone())
        .collect();
    FlatRelation {
        schema: relation.schema().clone(),
        atoms,
    }
}

/// The flat extension computed the slow, definitional way: enumerate
/// every candidate atom and evaluate its binding. Used as the oracle in
/// property tests for [`flatten`] and the operators.
pub fn flatten_via_binding(relation: &HRelation) -> FlatRelation {
    let product = relation.schema().product();
    let mut atoms = BTreeSet::new();
    let mut seen = BTreeSet::new();
    for (item, truth) in relation.iter() {
        if truth != Truth::Positive {
            continue; // only atoms under a positive tuple can ever hold
        }
        for atom in product.extension(item.components()) {
            let atom = Item::new(atom);
            if seen.insert(atom.clone()) && relation.holds(&atom) {
                atoms.insert(atom);
            }
        }
    }
    FlatRelation {
        schema: relation.schema().clone(),
        atoms,
    }
}

/// Are two hierarchical relations equivalent (same flat model)?
///
/// The §3 notion of equality that `consolidate` and `explicate` preserve.
pub fn equivalent(a: &HRelation, b: &HRelation) -> bool {
    a.schema().compatible(b.schema()) && flatten(a).atoms == flatten(b).atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::consolidate;
    use crate::schema::Attribute;
    use hrdm_hierarchy::HierarchyGraph;

    fn flying() -> HRelation {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", penguin).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        r
    }

    #[test]
    fn flatten_lists_flying_creatures() {
        let r = flying();
        let flat = flatten(&r);
        assert!(flat.contains(&r.item(&["Tweety"]).unwrap()));
        assert!(flat.contains(&r.item(&["Pamela"]).unwrap()));
        assert!(!flat.contains(&r.item(&["Paul"]).unwrap()));
        assert_eq!(flat.len(), 2);
        assert!(!flat.is_empty());
    }

    #[test]
    fn flatten_agrees_with_binding_oracle() {
        let r = flying();
        assert_eq!(flatten(&r).atoms, flatten_via_binding(&r).atoms);
    }

    #[test]
    fn consolidation_preserves_equivalence() {
        let r = flying();
        let c = consolidate(&r);
        assert!(equivalent(&r, &c.relation));
    }

    #[test]
    fn equivalence_distinguishes_different_extensions() {
        let r = flying();
        let mut r2 = r.clone();
        r2.remove(&r.item(&["Penguin"]).unwrap());
        assert!(
            !equivalent(&r, &r2),
            "dropping the exception changes the model"
        );
    }

    #[test]
    fn empty_relation_has_empty_model() {
        let r = flying();
        let empty = HRelation::new(r.schema().clone());
        let flat = flatten(&empty);
        assert!(flat.is_empty());
        assert_eq!(flatten_via_binding(&empty).len(), 0);
    }

    #[test]
    fn negative_only_relation_has_empty_model() {
        let r = flying();
        let mut neg = HRelation::new(r.schema().clone());
        neg.assert_fact(&["Bird"], Truth::Negative).unwrap();
        assert!(flatten(&neg).is_empty());
        // ...and is equivalent to the empty relation.
        assert!(equivalent(&neg, &HRelation::new(r.schema().clone())));
    }

    #[test]
    fn manual_construction_and_iteration() {
        let r = flying();
        let mut f = FlatRelation::new(r.schema().clone());
        let tweety = r.item(&["Tweety"]).unwrap();
        assert!(f.insert(tweety.clone()));
        assert!(!f.insert(tweety.clone()), "set semantics");
        assert_eq!(f.iter().count(), 1);
        assert_eq!(f.atoms().len(), 1);
        let atoms = f.clone().into_atoms();
        let f2 = FlatRelation::from_atoms(r.schema().clone(), atoms);
        assert_eq!(f, f2);
        assert!(format!("{f:?}").contains("Tweety"));
    }
}
