//! Conflict detection and the §3.1 conflict-resolution sets.
//!
//! "If, for an item, there are multiple tuples of differing truth values
//! as its immediate predecessors in the tuple-binding graph, (and there
//! is no tuple associated with the item itself), then we have a
//! conflict. We treat such a conflict as an inconsistent state of the
//! database and do not permit it."
//!
//! Detection is *optimistic* (§3.1): two classes are assumed disjoint
//! unless a defined node of the hierarchy — an instance, or a class
//! "whether or not there exist any instances of this class" — is a
//! subset of both. Every conflicted item is a common descendant of an
//! opposite-truth tuple pair, so scanning the common descendants of all
//! such pairs and evaluating their bindings is a complete check in every
//! preemption mode.

use std::collections::BTreeSet;
use std::time::Instant;

use crate::binding::Binding;
use crate::item::Item;
use crate::parallel;
use crate::relation::HRelation;
use crate::schema::Schema;
use crate::stats;
use crate::truth::Truth;

/// An ambiguity-constraint violation at one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The item whose strongest binders disagree.
    pub item: Item,
    /// Immediate predecessors asserting the relation holds.
    pub positive: Vec<Item>,
    /// Immediate predecessors asserting it does not.
    pub negative: Vec<Item>,
}

/// The common descendants (instances *and* classes) of two items in the
/// product item hierarchy: the Cartesian product of the per-attribute
/// common-descendant sets (endpoints included when subsumed).
///
/// This is §3.1's *complete conflict resolution set* `C` for the pair:
/// asserting a tuple for every member resolves the pair's conflict.
pub fn complete_resolution_set(schema: &Schema, a: &Item, b: &Item) -> Vec<Item> {
    let axes: Vec<Vec<hrdm_hierarchy::NodeId>> = (0..schema.arity())
        .map(|i| {
            schema
                .domain(i)
                .intersection_candidates(a.component(i), b.component(i))
        })
        .collect();
    if axes.iter().any(|ax| ax.is_empty()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cursor = vec![0usize; axes.len()];
    loop {
        let item = Item::new(cursor.iter().zip(&axes).map(|(&c, ax)| ax[c]).collect());
        // C excludes the conflicting items themselves (they are not
        // subsets of each other when incomparable; guard for the
        // comparable case).
        if item != *a && item != *b {
            out.push(item);
        }
        let mut pos = axes.len();
        loop {
            if pos == 0 {
                out.sort();
                return out;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < axes[pos].len() {
                break;
            }
            cursor[pos] = 0;
        }
    }
}

/// §3.1's *minimal conflict resolution set* `M`: the members of the
/// complete set not strictly contained in another member. "The minimal
/// conflict resolution set can be derived uniquely from \[C\] by virtue of
/// the transitivity of subsumption."
pub fn minimal_resolution_set(schema: &Schema, a: &Item, b: &Item) -> Vec<Item> {
    let complete = complete_resolution_set(schema, a, b);
    let product = schema.product();
    complete
        .iter()
        .filter(|x| {
            !complete
                .iter()
                .any(|y| *y != **x && product.subsumes(y.components(), x.components()))
        })
        .cloned()
        .collect()
}

/// Find every conflicted item in `relation` (§3.1's ambiguity
/// constraint), in deterministic item order.
pub fn find_conflicts(relation: &HRelation) -> Vec<Conflict> {
    let mut span = hrdm_obs::span!("core.conflict");
    let start = Instant::now();
    let candidates: Vec<Item> = conflict_candidates(relation).into_iter().collect();
    if span.is_active() {
        span.field_u64("candidates", candidates.len() as u64);
    }
    // Each candidate's binding is evaluated independently; fan the
    // lookups out across threads and keep the deterministic item order.
    let verdicts = parallel::par_map(&candidates, |item| match relation.bind(item) {
        Binding::Conflict { positive, negative } => Some((positive, negative)),
        _ => None,
    });
    let out = candidates
        .into_iter()
        .zip(verdicts)
        .filter_map(|(item, verdict)| {
            verdict.map(|(positive, negative)| Conflict {
                item,
                positive,
                negative,
            })
        })
        .collect();
    stats::record_conflict(start.elapsed());
    out
}

/// Is the relation free of unresolved conflicts?
pub fn is_consistent(relation: &HRelation) -> bool {
    let mut span = hrdm_obs::span!("core.conflict");
    let start = Instant::now();
    let candidates: Vec<Item> = conflict_candidates(relation).into_iter().collect();
    if span.is_active() {
        span.field_u64("candidates", candidates.len() as u64);
    }
    let verdicts = parallel::par_map(&candidates, |item| relation.bind(item).is_conflict());
    stats::record_conflict(start.elapsed());
    !verdicts.into_iter().any(|conflicted| conflicted)
}

/// Candidate items at which a conflict could possibly occur: the common
/// descendants of every opposite-truth tuple pair, minus items with
/// stored tuples (those bind explicitly).
fn conflict_candidates(relation: &HRelation) -> BTreeSet<Item> {
    let schema = relation.schema();
    let tuples: Vec<(Item, Truth)> = relation.iter().map(|(i, t)| (i.clone(), t)).collect();
    let mut candidates = BTreeSet::new();
    for (i, (a, ta)) in tuples.iter().enumerate() {
        for (b, tb) in tuples.iter().skip(i + 1) {
            if ta == tb {
                continue;
            }
            for item in complete_resolution_set(schema, a, b) {
                if !relation.contains(&item) {
                    candidates.insert(item);
                }
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// Figs. 2–3: Students × Teachers.
    fn respects_base() -> HRelation {
        let mut s = HierarchyGraph::new("Student");
        let ob = s.add_class("Obsequious Student", s.root()).unwrap();
        s.add_instance("John", ob).unwrap();
        let mut t = HierarchyGraph::new("Teacher");
        t.add_class("Incoherent Teacher", t.root()).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Student", Arc::new(s)),
            Attribute::new("Teacher", Arc::new(t)),
        ]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        r
    }

    #[test]
    fn fig3_conflict_detected_without_resolver() {
        // "Given that all Obsequious students respect all teachers, and
        // that no student respects any incoherent teacher, we cannot
        // determine whether obsequious students respect incoherent
        // teachers."
        let r = respects_base();
        let conflicts = find_conflicts(&r);
        assert!(!is_consistent(&r));
        // Conflicts at (ObsStudent, IncoTeacher) and at (John,
        // IncoTeacher) — both common descendants without stored tuples.
        let items: Vec<&Item> = conflicts.iter().map(|c| &c.item).collect();
        let oi = r
            .item(&["Obsequious Student", "Incoherent Teacher"])
            .unwrap();
        let ji = r.item(&["John", "Incoherent Teacher"]).unwrap();
        assert!(items.contains(&&oi));
        assert!(items.contains(&&ji));
        // Each conflict cites both sides.
        let c = conflicts.iter().find(|c| c.item == oi).unwrap();
        assert_eq!(c.positive.len(), 1);
        assert_eq!(c.negative.len(), 1);
    }

    #[test]
    fn fig3_resolver_restores_consistency() {
        // "The conflict is resolved through an explicit tuple asserting
        // that all obsequious students do indeed respect all incoherent
        // teachers."
        let mut r = respects_base();
        r.assert_fact(
            &["Obsequious Student", "Incoherent Teacher"],
            Truth::Positive,
        )
        .unwrap();
        assert!(is_consistent(&r));
        assert!(find_conflicts(&r).is_empty());
    }

    #[test]
    fn resolution_sets_for_fig3() {
        let r = respects_base();
        let a = r.item(&["Obsequious Student", "Teacher"]).unwrap();
        let b = r.item(&["Student", "Incoherent Teacher"]).unwrap();
        let complete = complete_resolution_set(r.schema(), &a, &b);
        // ObsStudent×IncoTeacher, John×IncoTeacher.
        assert_eq!(complete.len(), 2);
        let minimal = minimal_resolution_set(r.schema(), &a, &b);
        assert_eq!(
            minimal,
            vec![r
                .item(&["Obsequious Student", "Incoherent Teacher"])
                .unwrap()]
        );
    }

    #[test]
    fn optimistic_disjoint_classes_do_not_conflict() {
        // §3.1: sets are assumed disjoint without evidence.
        let mut g = HierarchyGraph::new("D");
        g.add_class("A", g.root()).unwrap();
        g.add_class("B", g.root()).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap();
        assert!(is_consistent(&r));
    }

    #[test]
    fn empty_intersection_class_forces_pessimism() {
        // §3.1: "Through the creation of empty intersection classes
        // wherever appropriate, a front-end could force a more
        // pessimistic integrity maintenance."
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_class_multi("A∩B", &[a, b]).unwrap(); // no instances!
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap();
        let conflicts = find_conflicts(&r);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].item, r.item(&["A∩B"]).unwrap());
    }

    #[test]
    fn comparable_opposite_tuples_are_exceptions_not_conflicts() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.add_instance("x", b).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap(); // exception
        assert!(is_consistent(&r));
    }

    #[test]
    fn no_preemption_conflicts_everywhere_below_mixed_tuples() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", a).unwrap();
        g.add_instance("x", b).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::with_preemption(schema, crate::preemption::Preemption::NoPreemption);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap();
        // Under no-preemption even the comparable pair conflicts at x.
        let conflicts = find_conflicts(&r);
        assert!(conflicts.iter().any(|c| c.item == r.item(&["x"]).unwrap()));
    }

    #[test]
    fn resolution_set_empty_for_provably_disjoint_items() {
        let r = respects_base();
        let john_any = r.item(&["John", "Teacher"]).unwrap();
        // Another student would be disjoint from John; simulate with the
        // pair (John, T) vs (John, T) trivial case instead: complete set
        // of an item with itself excludes the item, leaving descendants.
        let c = complete_resolution_set(r.schema(), &john_any, &john_any);
        // Descendants of (John, Teacher): (John, IncoTeacher).
        assert_eq!(c, vec![r.item(&["John", "Incoherent Teacher"]).unwrap()]);
    }

    #[test]
    fn stored_tuple_on_candidate_suppresses_conflict_there_only() {
        let mut r = respects_base();
        // Resolve only at the class level; John inherits the resolution.
        r.assert_fact(
            &["Obsequious Student", "Incoherent Teacher"],
            Truth::Positive,
        )
        .unwrap();
        assert!(is_consistent(&r));
        let ji = r.item(&["John", "Incoherent Teacher"]).unwrap();
        assert_eq!(r.bind(&ji).truth(), Some(Truth::Positive));
    }
}
