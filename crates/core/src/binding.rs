//! Tuple binding: which stored tuple determines an item's truth (§2.1).
//!
//! "The nodes of the tuple-binding graph represent all tuples in the
//! relation that are relevant to the determination of the truth value of
//! the item in question. If there is a tuple associated with the item
//! itself, then the tuple binds strongest to the item in question.
//! Otherwise the strongest binding tuple(s) is the immediate
//! predecessor(s) of the item. The truth value of an item is obtained as
//! the truth value of the tuple that binds strongest to it."
//!
//! This module computes just the *strongest binders* of one item — the
//! item's immediate predecessors in its tuple-binding graph — without
//! materializing the graph (see [`crate::subsumption`] for the full
//! graphs used by consolidation and the figures). The three preemption
//! semantics differ only here:
//!
//! * **off-path**: an applicable tuple `x` is immediate iff the original
//!   item hierarchy has a direct edge `x → q`, or no other applicable
//!   tuple lies strictly between `x` and `q` (the closed form of the
//!   paper's node-elimination procedure, property-tested against it in
//!   the hierarchy crate);
//! * **on-path**: `x` is immediate iff some hierarchy path `x → q`
//!   avoids every other applicable tuple;
//! * **no-preemption**: every applicable tuple is immediate.

use crate::item::Item;
use crate::preemption::Preemption;
use crate::relation::HRelation;
use crate::truth::Truth;

/// The outcome of looking up an item's truth value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// A tuple is stored for the item itself; it binds strongest.
    Explicit(Truth),
    /// The item inherits from its strongest-binding tuple(s), all of
    /// which agree on this truth value.
    Inherited(Truth, Vec<Item>),
    /// Ambiguity-constraint violation: strongest binders disagree.
    Conflict {
        /// Immediate predecessors asserting the relation holds.
        positive: Vec<Item>,
        /// Immediate predecessors asserting it does not.
        negative: Vec<Item>,
    },
    /// No applicable tuple: under the closed-world assumption the
    /// relation does not hold; under the §4 three-valued reading the
    /// truth is unknown.
    Unspecified,
}

impl Binding {
    /// The determined truth value, if unambiguous.
    pub fn truth(&self) -> Option<Truth> {
        match self {
            Binding::Explicit(t) => Some(*t),
            Binding::Inherited(t, _) => Some(*t),
            Binding::Conflict { .. } | Binding::Unspecified => None,
        }
    }

    /// Is this binding a conflict?
    pub fn is_conflict(&self) -> bool {
        matches!(self, Binding::Conflict { .. })
    }
}

/// All stored tuples applicable to `q`: those whose item reaches `q` in
/// the (binding) item hierarchy, including a tuple on `q` itself.
/// Returned in deterministic stored order.
pub fn applicable(relation: &HRelation, q: &Item) -> Vec<(Item, Truth)> {
    let product = relation.schema().product();
    relation
        .iter()
        .filter(|(x, _)| product.reaches(x.components(), q.components()))
        .map(|(x, t)| (x.clone(), t))
        .collect()
}

/// The item's strongest binders: its immediate predecessors in the
/// tuple-binding graph, under the relation's preemption semantics.
///
/// Assumes no tuple is stored on `q` itself (callers check that first);
/// if one is, it would preempt everything anyway.
pub fn strongest_binders(relation: &HRelation, q: &Item) -> Vec<(Item, Truth)> {
    let candidates = applicable(relation, q);
    immediate_among(relation, q, &candidates)
}

/// Of `candidates` (applicable tuples), those binding immediately to `q`.
fn immediate_among(
    relation: &HRelation,
    q: &Item,
    candidates: &[(Item, Truth)],
) -> Vec<(Item, Truth)> {
    let product = relation.schema().product();
    match relation.preemption() {
        Preemption::NoPreemption => candidates.iter().filter(|(x, _)| x != q).cloned().collect(),
        Preemption::OffPath => candidates
            .iter()
            .filter(|(x, _)| {
                if x == q {
                    return false;
                }
                if product
                    .direct_edge(x.components(), q.components())
                    .is_some()
                {
                    return true;
                }
                !candidates.iter().any(|(z, _)| {
                    z != x
                        && z != q
                        && product.reaches(x.components(), z.components())
                        && product.reaches(z.components(), q.components())
                })
            })
            .cloned()
            .collect(),
        Preemption::OnPath => {
            let kept: Vec<&Item> = candidates.iter().map(|(x, _)| x).collect();
            candidates
                .iter()
                .filter(|(x, _)| x != q && path_avoiding(product, x, q, &kept))
                .cloned()
                .collect()
        }
    }
}

/// Is there a hierarchy path `from → to` whose *interior* nodes avoid
/// every item in `kept`? (On-path preemption's immediacy test.)
///
/// BFS over product children, pruned to the interval `[to, from]` via
/// reachability, so only nodes that could lie on a path are expanded.
pub(crate) fn path_avoiding(
    product: &hrdm_hierarchy::ProductHierarchy,
    from: &Item,
    to: &Item,
    kept: &[&Item],
) -> bool {
    if from == to {
        return true;
    }
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<Item> = vec![from.clone()];
    seen.insert(from.clone());
    while let Some(node) = stack.pop() {
        for child in product.children(node.components()) {
            let child = Item::new(child);
            if child == *to {
                return true;
            }
            if seen.contains(&child) {
                continue;
            }
            // Prune to the interval: the child must still reach `to`.
            if !product.reaches(child.components(), to.components()) {
                continue;
            }
            // Interior nodes may not be kept tuples.
            if kept.iter().any(|&k| *k == child) {
                continue;
            }
            seen.insert(child.clone());
            stack.push(child);
        }
    }
    false
}

/// Determine the truth value binding of `q` in `relation` (§2.1).
pub fn bind(relation: &HRelation, q: &Item) -> Binding {
    if let Some(t) = relation.stored(q) {
        return Binding::Explicit(t);
    }
    let binders = strongest_binders(relation, q);
    if binders.is_empty() {
        return Binding::Unspecified;
    }
    let (positive, negative): (Vec<_>, Vec<_>) = binders.into_iter().partition(|(_, t)| t.holds());
    match (positive.is_empty(), negative.is_empty()) {
        (false, true) => Binding::Inherited(
            Truth::Positive,
            positive.into_iter().map(|(i, _)| i).collect(),
        ),
        (true, false) => Binding::Inherited(
            Truth::Negative,
            negative.into_iter().map(|(i, _)| i).collect(),
        ),
        _ => Binding::Conflict {
            positive: positive.into_iter().map(|(i, _)| i).collect(),
            negative: negative.into_iter().map(|(i, _)| i).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// Fig. 1a + 1b: the flying-creatures relation.
    fn flying() -> HRelation {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Peter"], Truth::Positive).unwrap();
        r
    }

    #[test]
    fn fig1_tweety_flies() {
        let r = flying();
        let tweety = r.item(&["Tweety"]).unwrap();
        let b = r.bind(&tweety);
        assert_eq!(b.truth(), Some(Truth::Positive));
        // Inherited from the Bird tuple specifically.
        match b {
            Binding::Inherited(_, binders) => {
                assert_eq!(binders, vec![r.item(&["Bird"]).unwrap()]);
            }
            other => panic!("expected inherited binding, got {other:?}"),
        }
        assert!(r.holds(&tweety));
    }

    #[test]
    fn fig1_paul_does_not_fly() {
        let r = flying();
        let paul = r.item(&["Paul"]).unwrap();
        assert_eq!(r.bind(&paul).truth(), Some(Truth::Negative));
        assert!(!r.holds(&paul));
    }

    #[test]
    fn fig1_pamela_flies_via_afp() {
        let r = flying();
        let pamela = r.item(&["Pamela"]).unwrap();
        match r.bind(&pamela) {
            Binding::Inherited(Truth::Positive, binders) => {
                assert_eq!(binders, vec![r.item(&["Amazing Flying Penguin"]).unwrap()]);
            }
            other => panic!("expected positive inheritance, got {other:?}"),
        }
    }

    #[test]
    fn fig1_peter_explicit() {
        let r = flying();
        let peter = r.item(&["Peter"]).unwrap();
        assert_eq!(r.bind(&peter), Binding::Explicit(Truth::Positive));
    }

    #[test]
    fn fig1_patricia_no_conflict() {
        // "Since nothing has been asserted about Galapagos penguins
        // specifically not being flying creatures, there is no conflict.
        // Patricia's only predecessor in the tuple binding graph is the
        // tuple regarding Amazing Flying Penguins."
        let r = flying();
        let patricia = r.item(&["Patricia"]).unwrap();
        match r.bind(&patricia) {
            Binding::Inherited(Truth::Positive, binders) => {
                assert_eq!(binders, vec![r.item(&["Amazing Flying Penguin"]).unwrap()]);
            }
            other => panic!("expected positive inheritance, got {other:?}"),
        }
    }

    #[test]
    fn fig1_patricia_conflicts_if_galapagos_negated() {
        // "However, if a tuple were to be included in the relation
        // stating that Galapagos penguins cannot fly, then we have a
        // conflict."
        let mut r = flying();
        r.assert_fact(&["Galapagos Penguin"], Truth::Negative)
            .unwrap();
        let patricia = r.item(&["Patricia"]).unwrap();
        match r.bind(&patricia) {
            Binding::Conflict { positive, negative } => {
                assert_eq!(positive, vec![r.item(&["Amazing Flying Penguin"]).unwrap()]);
                assert_eq!(negative, vec![r.item(&["Galapagos Penguin"]).unwrap()]);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn unspecified_for_unrelated_item() {
        let r = flying();
        // The root Animal class is *above* every tuple: nothing binds.
        let animal = r.item(&["Animal"]).unwrap();
        assert_eq!(r.bind(&animal), Binding::Unspecified);
        assert!(!r.holds(&animal));
    }

    #[test]
    fn applicable_lists_all_reaching_tuples() {
        let r = flying();
        let patricia = r.item(&["Patricia"]).unwrap();
        let app = applicable(&r, &patricia);
        // Bird, Penguin, AFP apply; Peter does not.
        assert_eq!(app.len(), 3);
        assert!(!app.iter().any(|(i, _)| *i == r.item(&["Peter"]).unwrap()));
    }

    #[test]
    fn no_preemption_reports_conflict_for_paul() {
        // Under no-preemption, Paul inherits both +Bird and -Penguin.
        let mut r = flying();
        r.set_preemption(Preemption::NoPreemption);
        let paul = r.item(&["Paul"]).unwrap();
        assert!(r.bind(&paul).is_conflict());
        // Peter's explicit tuple still wins.
        let peter = r.item(&["Peter"]).unwrap();
        assert_eq!(r.bind(&peter), Binding::Explicit(Truth::Positive));
    }

    #[test]
    fn on_path_patricia_conflicts() {
        // Appendix: "on-path preemption would suggest that since
        // Patricia is a Galapagos penguin, it may or may not be able to
        // fly, in spite of its being an amazing flying penguin":
        // the path Penguin -> Galapagos Penguin -> Patricia avoids the
        // AFP tuple, so -Penguin stays immediate and conflicts with +AFP.
        let mut r = flying();
        r.set_preemption(Preemption::OnPath);
        let patricia = r.item(&["Patricia"]).unwrap();
        assert!(r.bind(&patricia).is_conflict());
        // Pamela (only an AFP) is NOT conflicted even on-path: every
        // Penguin -> Pamela path passes through AFP.
        let pamela = r.item(&["Pamela"]).unwrap();
        assert_eq!(r.bind(&pamela).truth(), Some(Truth::Positive));
    }

    #[test]
    fn off_path_with_redundant_edge_creates_conflict() {
        // Appendix: a redundant edge Penguin -> Pamela makes Penguin
        // bind Pamela directly despite the AFP tuple in between.
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        let pamela = g.add_instance("Pamela", afp).unwrap();
        g.add_edge(penguin, pamela).unwrap(); // redundant, deliberate
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        let pam = r.item(&["Pamela"]).unwrap();
        assert!(
            r.bind(&pam).is_conflict(),
            "direct edge keeps Penguin immediate"
        );
    }

    #[test]
    fn preference_edge_resolves_conflict() {
        // Appendix: preference edges induce off-path domination. The
        // conflicting tuples sit above the item (A -> A1 -> x,
        // B -> B1 -> x) as in the paper's scenario; the special edge
        // B -> A then takes A "off the path" of B.
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        let a1 = g.add_class("A1", a).unwrap();
        let b1 = g.add_class("B1", b).unwrap();
        g.add_instance_multi("x", &[a1, b1]).unwrap();
        // Without preference: conflict at x.
        let schema = Arc::new(Schema::new(vec![Attribute::new("D", Arc::new(g.clone()))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap();
        let xi = r.item(&["x"]).unwrap();
        assert!(r.bind(&xi).is_conflict());
        // With preference edge B -> A (A dominates B): A preempts.
        hrdm_hierarchy::preference::prefer(&mut g, a, b).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("D", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap();
        let xi = r.item(&["x"]).unwrap();
        assert_eq!(r.bind(&xi).truth(), Some(Truth::Positive));
    }

    #[test]
    fn preference_edge_cannot_override_a_direct_parent_edge() {
        // Procedural off-path semantics retain direct edges between kept
        // nodes (the Pamela redundant-edge behaviour), so a preference
        // edge does NOT demote a tuple on a *direct parent* of the item.
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        g.add_instance_multi("x", &[a, b]).unwrap();
        hrdm_hierarchy::preference::prefer(&mut g, a, b).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("D", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["A"], Truth::Positive).unwrap();
        r.assert_fact(&["B"], Truth::Negative).unwrap();
        let xi = r.item(&["x"]).unwrap();
        assert!(r.bind(&xi).is_conflict(), "direct edge keeps B immediate");
    }

    #[test]
    fn binding_truth_and_conflict_accessors() {
        assert_eq!(
            Binding::Explicit(Truth::Negative).truth(),
            Some(Truth::Negative)
        );
        assert_eq!(Binding::Unspecified.truth(), None);
        assert!(!Binding::Unspecified.is_conflict());
        let c = Binding::Conflict {
            positive: vec![],
            negative: vec![],
        };
        assert!(c.is_conflict());
        assert_eq!(c.truth(), None);
    }
}
