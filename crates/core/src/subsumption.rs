//! Subsumption graphs and tuple-binding graphs (§2.1, §3.3).
//!
//! "For a relation, a subsumption graph is obtained by eliminating all
//! nodes in the hierarchy graph for which no tuples have been asserted."
//! Because the (product) item hierarchy is exponential, we never run the
//! elimination literally; instead the surviving edge set is computed in
//! closed form, which the hierarchy crate property-tests against the
//! literal node-elimination procedure:
//!
//! * **off-path**: edge `x → y` iff `x` reaches `y` and either the item
//!   hierarchy has a *direct* edge `x → y`, or no other tuple item lies
//!   strictly between;
//! * **on-path**: edge `x → y` iff some hierarchy path `x → y` has no
//!   tuple item in its interior;
//! * **no-preemption**: edge `x → y` iff `x` reaches `y`.
//!
//! §3.3.1's **universal negated tuple** is included as a virtual node
//! (index [`SubsumptionGraph::UNIVERSAL`]) "defined over D*", with an
//! arc to every tuple node that has no other predecessor — this is what
//! makes parentless negated tuples detectably redundant.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use hrdm_obs::attrib::{self, AttribKey};

use crate::binding::path_avoiding;
use crate::item::Item;
use crate::parallel;
use crate::preemption::Preemption;
use crate::relation::HRelation;
use crate::stats;
use crate::truth::Truth;

/// The immutable node/edge data of a subsumption graph, shared via
/// `Arc` between the cache and every [`SubsumptionGraph`] handle so a
/// cache hit is a pointer copy, never a rebuild.
struct SubsumptionCore {
    items: Vec<Item>,
    truths: Vec<Truth>,
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
}

/// Upper bound on cached subsumption cores, FIFO-evicted.
const MAX_CACHED: usize = 64;

/// Cache key: per-attribute domain versions (see
/// [`hrdm_hierarchy::graph::HierarchyGraph::version`]), the preemption
/// mode (it changes the edge set), and a fingerprint of the tuple set.
/// A hit additionally verifies the stored items/truths byte-for-byte,
/// so a fingerprint collision can never alias two relations.
#[derive(PartialEq, Eq, Hash, Clone)]
struct CacheKey {
    domains: Vec<(u64, u64)>,
    preemption: Preemption,
    fingerprint: u64,
}

#[derive(Default)]
struct CacheStore {
    map: HashMap<CacheKey, Arc<SubsumptionCore>>,
    order: Vec<CacheKey>,
}

fn cache() -> &'static Mutex<CacheStore> {
    static CACHE: OnceLock<Mutex<CacheStore>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheStore::default()))
}

fn fingerprint(items: &[Item], truths: &[Truth]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (item, truth) in items.iter().zip(truths) {
        for &c in item.components() {
            eat(c.index() as u64 + 1);
        }
        eat(matches!(truth, Truth::Positive) as u64 + 0x10);
    }
    eat(items.len() as u64);
    h
}

/// Drop every cached subsumption core. Exposed so parity tests and
/// benchmarks can measure cold builds deliberately.
pub fn clear_cache() {
    let mut s = cache().lock().unwrap();
    s.map.clear();
    s.order.clear();
}

/// The subsumption graph of a relation (optionally extended with one
/// extra item, which turns it into that item's tuple-binding graph).
///
/// Node indexes: 0 is the virtual universal negated tuple; `1..` are the
/// relation's stored tuples in deterministic item order (plus the extra
/// item, if any, at the returned position).
///
/// Whole-relation graphs ([`SubsumptionGraph::build`]) are cached by
/// (domain versions, preemption, tuple set): consolidate, explicate,
/// and conflict detection over the same unchanged relation share one
/// construction. Binding graphs
/// ([`SubsumptionGraph::build_for_item`]) are query-specific and always
/// built fresh.
pub struct SubsumptionGraph {
    core: Arc<SubsumptionCore>,
    /// Index of the extra (query) item, when built as a tuple-binding
    /// graph for an item with no stored tuple.
    extra: Option<usize>,
}

impl SubsumptionGraph {
    /// Index of the virtual universal negated tuple.
    pub const UNIVERSAL: usize = 0;

    /// Build the subsumption graph of `relation` (§3.3.1), reusing the
    /// shared cache when the relation's domains, preemption mode, and
    /// tuple set are unchanged.
    pub fn build(relation: &HRelation) -> SubsumptionGraph {
        let (items, truths, _) = collect_nodes(relation, None);
        let key = CacheKey {
            domains: (0..relation.schema().arity())
                .map(|i| relation.schema().domain(i).version())
                .collect(),
            preemption: relation.preemption(),
            fingerprint: fingerprint(&items, &truths),
        };
        if let Some(hit) = cache().lock().unwrap().map.get(&key) {
            // Verify content, not just the fingerprint.
            if hit.items == items && hit.truths == truths {
                stats::record_subsumption_hit();
                attrib::bump(AttribKey::SubsumptionHit);
                return SubsumptionGraph {
                    core: Arc::clone(hit),
                    extra: None,
                };
            }
        }
        attrib::bump(AttribKey::SubsumptionMiss);
        let mut span = hrdm_obs::span!("core.subsumption.build");
        if span.is_active() {
            span.field_u64("tuples", items.len() as u64);
        }
        let start = Instant::now();
        let core = Arc::new(build_core(relation, items, truths));
        stats::record_subsumption_miss(start.elapsed());
        drop(span);
        let mut s = cache().lock().unwrap();
        if !s.map.contains_key(&key) {
            s.map.insert(key.clone(), Arc::clone(&core));
            s.order.push(key);
            while s.map.len() > MAX_CACHED {
                let victim = s.order.remove(0);
                s.map.remove(&victim);
            }
        }
        SubsumptionGraph { core, extra: None }
    }

    /// Build the tuple-binding graph for `item` (§2.1): the subsumption
    /// graph restricted to tuples that reach `item`, with `item` added.
    ///
    /// Returns the graph and the node index of `item`.
    pub fn build_for_item(relation: &HRelation, item: &Item) -> (SubsumptionGraph, usize) {
        let (items, truths, extra) = collect_nodes(relation, Some(item));
        let core = Arc::new(build_core(relation, items, truths));
        let idx = core
            .items
            .iter()
            .position(|i| i == item)
            .expect("query item always present");
        (SubsumptionGraph { core, extra }, idx)
    }

    /// Whether two graphs share one cached core (observability hook for
    /// the cache tests — `Arc` identity, not structural equality).
    #[cfg(test)]
    pub(crate) fn shares_core(&self, other: &SubsumptionGraph) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Total nodes including the universal virtual node.
    pub fn node_count(&self) -> usize {
        self.core.items.len()
    }

    /// The item at a node (the universal node maps to `D*` itself).
    pub fn item(&self, i: usize) -> &Item {
        &self.core.items[i]
    }

    /// The truth value at a node (the universal node is negative).
    pub fn truth(&self, i: usize) -> Truth {
        self.core.truths[i]
    }

    /// Immediate successors.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.core.children[i]
    }

    /// Immediate predecessors.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.core.parents[i]
    }

    /// The node index of a stored item, if present.
    pub fn index_of(&self, item: &Item) -> Option<usize> {
        self.core.items[1..]
            .iter()
            .position(|i| i == item)
            .map(|p| p + 1)
    }

    /// Index of the query item when built via
    /// [`SubsumptionGraph::build_for_item`] and the item had no stored
    /// tuple.
    pub fn extra_index(&self) -> Option<usize> {
        self.extra
    }

    /// Real (non-virtual) node indexes in a topological order of the
    /// graph (general before specific), deterministic.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut indeg = vec![0usize; n];
        for x in 0..n {
            for &y in &self.core.children[x] {
                indeg[y] += 1;
            }
        }
        let mut frontier: Vec<usize> = (0..n).filter(|&x| indeg[x] == 0).collect();
        frontier.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut next = 0;
        while next < frontier.len() {
            let x = frontier[next];
            next += 1;
            order.push(x);
            let mut freed: Vec<usize> = Vec::new();
            for &y in &self.core.children[x] {
                indeg[y] -= 1;
                if indeg[y] == 0 {
                    freed.push(y);
                }
            }
            freed.sort_unstable();
            frontier.extend(freed);
            frontier[next..].sort_unstable();
        }
        debug_assert_eq!(order.len(), n, "subsumption graphs are acyclic");
        order.retain(|&x| x != Self::UNIVERSAL);
        order
    }

    /// Decompose into a mutable [`SmallDigraph`] for consolidation.
    pub(crate) fn to_digraph(&self) -> SmallDigraph {
        SmallDigraph {
            children: self.core.children.clone(),
            parents: self.core.parents.clone(),
            alive: vec![true; self.node_count()],
        }
    }
}

/// Node set of the (binding-)graph: the universal virtual node + stored
/// tuples (restricted to those reaching the query item when building a
/// binding graph) + the query item itself.
fn collect_nodes(
    relation: &HRelation,
    query: Option<&Item>,
) -> (Vec<Item>, Vec<Truth>, Option<usize>) {
    let product = relation.schema().product();
    let mut items: Vec<Item> = vec![relation.schema().universal_item()];
    let mut truths: Vec<Truth> = vec![Truth::Negative];
    let mut extra = None;
    for (i, t) in relation.iter() {
        if let Some(q) = query {
            if !product.reaches(i.components(), q.components()) {
                continue;
            }
        }
        items.push(i.clone());
        truths.push(t);
    }
    if let Some(q) = query {
        if !items[1..].contains(q) {
            items.push(q.clone());
            // Truth placeholder; the query node's truth is what the
            // binding computes, not an assertion.
            truths.push(Truth::Negative);
            extra = Some(items.len() - 1);
        }
    }
    (items, truths, extra)
}

/// Closed-form edge construction over the collected nodes. Each node's
/// successor row is independent of every other row, so rows are built in
/// parallel (index-ordered, hence byte-identical to the serial sweep)
/// and the predecessor lists are derived in one sequential pass.
fn build_core(relation: &HRelation, items: Vec<Item>, truths: Vec<Truth>) -> SubsumptionCore {
    let product = relation.schema().product();
    let preemption = relation.preemption();
    let n = items.len();
    let items_ref = &items;
    let reaches =
        |a: usize, b: usize| product.reaches(items_ref[a].components(), items_ref[b].components());

    // Edges among real nodes (indexes 1..n), one row per source.
    let mut children: Vec<Vec<usize>> = parallel::par_map_indexed(n, |x| {
        let mut row = Vec::new();
        if x == SubsumptionGraph::UNIVERSAL {
            return row;
        }
        for y in 1..n {
            if x == y || !reaches(x, y) || items_ref[x] == items_ref[y] {
                continue;
            }
            let edge = match preemption {
                Preemption::NoPreemption => true,
                Preemption::OffPath => {
                    product
                        .direct_edge(items_ref[x].components(), items_ref[y].components())
                        .is_some()
                        || !(1..n).any(|z| z != x && z != y && reaches(x, z) && reaches(z, y))
                }
                Preemption::OnPath => {
                    let kept: Vec<&Item> =
                        (1..n).filter(|&z| z != y).map(|z| &items_ref[z]).collect();
                    path_avoiding(product, &items_ref[x], &items_ref[y], &kept)
                }
            };
            if edge {
                row.push(y);
            }
        }
        row
    });
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (x, row) in children.iter().enumerate().skip(1) {
        for &y in row {
            parents[y].push(x);
        }
    }

    // Universal negated tuple: arc to every parentless real node.
    for (y, preds) in parents.iter_mut().enumerate().skip(1) {
        if preds.is_empty() {
            children[SubsumptionGraph::UNIVERSAL].push(y);
            preds.push(SubsumptionGraph::UNIVERSAL);
        }
    }

    SubsumptionCore {
        items,
        truths,
        children,
        parents,
    }
}

/// A tiny mutable digraph over `usize` nodes supporting the paper's
/// node-elimination procedure; used by consolidation, where the
/// subsumption graph must be updated as redundant tuples are deleted.
#[derive(Clone, Debug)]
pub(crate) struct SmallDigraph {
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
    alive: Vec<bool>,
}

impl SmallDigraph {
    pub(crate) fn predecessors(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    pub(crate) fn has_path(&self, from: usize, to: usize) -> bool {
        if from == to {
            return self.alive[from];
        }
        if !self.alive[from] || !self.alive[to] {
            return false;
        }
        let mut seen = vec![false; self.children.len()];
        seen[from] = true;
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for &c in &self.children[n] {
                if c == to {
                    return true;
                }
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// The paper's node-elimination procedure with the off-path (no
    /// redundant edges) rule. Consolidation always uses this variant:
    /// §3.3.1 prescribes "the node elimination procedure presented in
    /// Sec. 2.1", which is the redundancy-free one.
    pub(crate) fn eliminate(&mut self, i: usize) {
        if !self.alive[i] {
            return;
        }
        self.alive[i] = false;
        let preds = std::mem::take(&mut self.parents[i]);
        let succs = std::mem::take(&mut self.children[i]);
        for &p in &preds {
            self.children[p].retain(|&c| c != i);
        }
        for &s in &succs {
            self.parents[s].retain(|&p| p != i);
        }
        for &j in &preds {
            for &k in &succs {
                if !self.has_path(j, k) {
                    self.children[j].push(k);
                    self.parents[k].push(j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// The Fig. 1 flying-creatures relation.
    fn flying() -> HRelation {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Peter"], Truth::Positive).unwrap();
        r
    }

    #[test]
    fn fig1c_subsumption_graph_is_a_chain() {
        // Fig. 1c: Bird -> Penguin -> Amazing Flying Penguin -> Peter.
        let r = flying();
        let g = SubsumptionGraph::build(&r);
        assert_eq!(g.node_count(), 5); // universal + 4 tuples
        let bird = g.index_of(&r.item(&["Bird"]).unwrap()).unwrap();
        let penguin = g.index_of(&r.item(&["Penguin"]).unwrap()).unwrap();
        let afp = g
            .index_of(&r.item(&["Amazing Flying Penguin"]).unwrap())
            .unwrap();
        let peter = g.index_of(&r.item(&["Peter"]).unwrap()).unwrap();
        assert_eq!(g.children(bird), &[penguin]);
        assert_eq!(g.children(penguin), &[afp]);
        assert_eq!(g.children(afp), &[peter]);
        assert_eq!(g.children(peter), &[] as &[usize]);
        // Universal arcs only to the parentless Bird tuple.
        assert_eq!(g.children(SubsumptionGraph::UNIVERSAL), &[bird]);
        assert_eq!(g.truth(SubsumptionGraph::UNIVERSAL), Truth::Negative);
    }

    #[test]
    fn fig1d_patricia_binding_graph() {
        // Fig. 1d: Patricia's tuple-binding graph — the chain with
        // Patricia hanging off Amazing Flying Penguin only.
        let r = flying();
        let patricia = r.item(&["Patricia"]).unwrap();
        let (g, qi) = SubsumptionGraph::build_for_item(&r, &patricia);
        assert_eq!(g.extra_index(), Some(qi));
        assert_eq!(g.item(qi), &patricia);
        let afp = g
            .index_of(&r.item(&["Amazing Flying Penguin"]).unwrap())
            .unwrap();
        assert_eq!(g.parents(qi), &[afp]);
        // Peter's tuple does not reach Patricia, so it is absent.
        assert!(g.index_of(&r.item(&["Peter"]).unwrap()).is_none());
        // 5 nodes: universal + Bird + Penguin + AFP + Patricia.
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn binding_graph_for_item_with_stored_tuple() {
        let r = flying();
        let peter = r.item(&["Peter"]).unwrap();
        let (g, qi) = SubsumptionGraph::build_for_item(&r, &peter);
        // Peter has a stored tuple, so no extra node is added.
        assert_eq!(g.extra_index(), None);
        assert_eq!(g.item(qi), &peter);
        assert_eq!(g.truth(qi), Truth::Positive);
    }

    #[test]
    fn topo_order_respects_edges_and_skips_universal() {
        let r = flying();
        let g = SubsumptionGraph::build(&r);
        let order = g.topo_order();
        assert_eq!(order.len(), 4);
        assert!(!order.contains(&SubsumptionGraph::UNIVERSAL));
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        for x in order.iter().copied() {
            for &y in g.children(x) {
                assert!(pos(x) < pos(y));
            }
        }
    }

    #[test]
    fn no_preemption_graph_is_transitively_closed() {
        let mut r = flying();
        r.set_preemption(crate::preemption::Preemption::NoPreemption);
        let g = SubsumptionGraph::build(&r);
        let bird = g.index_of(&r.item(&["Bird"]).unwrap()).unwrap();
        let peter = g.index_of(&r.item(&["Peter"]).unwrap()).unwrap();
        // Bird reaches Peter transitively; under no-preemption the edge
        // is present directly.
        assert!(g.children(bird).contains(&peter));
    }

    #[test]
    fn small_digraph_elimination_bridges() {
        let mut d = SmallDigraph {
            children: vec![vec![1], vec![2], vec![]],
            parents: vec![vec![], vec![0], vec![1]],
            alive: vec![true; 3],
        };
        assert!(d.has_path(0, 2));
        d.eliminate(1);
        assert!(d.has_path(0, 2));
        assert_eq!(d.children[0], vec![2]);
        assert_eq!(d.predecessors(2), &[0]);
        // Re-eliminating is a no-op.
        d.eliminate(1);
        assert_eq!(d.children[0], vec![2]);
    }

    #[test]
    fn small_digraph_elimination_avoids_redundant_bridge() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3; eliminating 1 must not duplicate
        // 0 -> 3 since the path through 2 survives.
        let mut d = SmallDigraph {
            children: vec![vec![1, 2], vec![3], vec![3], vec![]],
            parents: vec![vec![], vec![0], vec![0], vec![1, 2]],
            alive: vec![true; 4],
        };
        d.eliminate(1);
        assert_eq!(d.children[0], vec![2]);
        assert_eq!(d.predecessors(3), &[2]);
    }

    #[test]
    fn repeated_builds_share_one_cached_core() {
        let mut r = flying();
        let g1 = SubsumptionGraph::build(&r);
        let g2 = SubsumptionGraph::build(&r);
        assert!(g1.shares_core(&g2), "unchanged relation must hit");

        // A tuple change invalidates (the fingerprint differs).
        r.assert_fact(&["Pamela"], Truth::Negative).unwrap();
        let g3 = SubsumptionGraph::build(&r);
        assert!(!g3.shares_core(&g1));
        assert!(g3.shares_core(&SubsumptionGraph::build(&r)));

        // Preemption mode is part of the key.
        r.set_preemption(crate::preemption::Preemption::OnPath);
        let g4 = SubsumptionGraph::build(&r);
        assert!(!g4.shares_core(&g3));

        // Binding graphs are query-specific: never cached.
        let peter = r.item(&["Peter"]).unwrap();
        let (b1, _) = SubsumptionGraph::build_for_item(&r, &peter);
        let (b2, _) = SubsumptionGraph::build_for_item(&r, &peter);
        assert!(!b1.shares_core(&b2));
    }

    #[test]
    fn identical_twin_relations_do_not_cross_hit() {
        // Two structurally identical relations over *different* graph
        // instances have different domain versions: no false sharing.
        let r1 = flying();
        let r2 = flying();
        let g1 = SubsumptionGraph::build(&r1);
        let g2 = SubsumptionGraph::build(&r2);
        assert!(!g1.shares_core(&g2));
    }
}
