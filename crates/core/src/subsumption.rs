//! Subsumption graphs and tuple-binding graphs (§2.1, §3.3).
//!
//! "For a relation, a subsumption graph is obtained by eliminating all
//! nodes in the hierarchy graph for which no tuples have been asserted."
//! Because the (product) item hierarchy is exponential, we never run the
//! elimination literally; instead the surviving edge set is computed in
//! closed form, which the hierarchy crate property-tests against the
//! literal node-elimination procedure:
//!
//! * **off-path**: edge `x → y` iff `x` reaches `y` and either the item
//!   hierarchy has a *direct* edge `x → y`, or no other tuple item lies
//!   strictly between;
//! * **on-path**: edge `x → y` iff some hierarchy path `x → y` has no
//!   tuple item in its interior;
//! * **no-preemption**: edge `x → y` iff `x` reaches `y`.
//!
//! §3.3.1's **universal negated tuple** is included as a virtual node
//! (index [`SubsumptionGraph::UNIVERSAL`]) "defined over D*", with an
//! arc to every tuple node that has no other predecessor — this is what
//! makes parentless negated tuples detectably redundant.

use crate::binding::path_avoiding;
use crate::item::Item;
use crate::preemption::Preemption;
use crate::relation::HRelation;
use crate::truth::Truth;

/// The subsumption graph of a relation (optionally extended with one
/// extra item, which turns it into that item's tuple-binding graph).
///
/// Node indexes: 0 is the virtual universal negated tuple; `1..` are the
/// relation's stored tuples in deterministic item order (plus the extra
/// item, if any, at the returned position).
pub struct SubsumptionGraph {
    items: Vec<Item>,
    truths: Vec<Truth>,
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
    /// Index of the extra (query) item, when built as a tuple-binding
    /// graph for an item with no stored tuple.
    extra: Option<usize>,
}

impl SubsumptionGraph {
    /// Index of the virtual universal negated tuple.
    pub const UNIVERSAL: usize = 0;

    /// Build the subsumption graph of `relation` (§3.3.1).
    pub fn build(relation: &HRelation) -> SubsumptionGraph {
        Self::build_inner(relation, None)
    }

    /// Build the tuple-binding graph for `item` (§2.1): the subsumption
    /// graph restricted to tuples that reach `item`, with `item` added.
    ///
    /// Returns the graph and the node index of `item`.
    pub fn build_for_item(relation: &HRelation, item: &Item) -> (SubsumptionGraph, usize) {
        let g = Self::build_inner(relation, Some(item));
        let idx = g
            .items
            .iter()
            .position(|i| i == item)
            .expect("query item always present");
        (g, idx)
    }

    fn build_inner(relation: &HRelation, query: Option<&Item>) -> SubsumptionGraph {
        let product = relation.schema().product();
        let universal = relation.schema().universal_item();

        // Node set: universal virtual node + stored tuples (restricted to
        // those reaching the query item when building a binding graph)
        // + the query item itself.
        let mut items: Vec<Item> = vec![universal];
        let mut truths: Vec<Truth> = vec![Truth::Negative];
        let mut extra = None;
        for (i, t) in relation.iter() {
            if let Some(q) = query {
                if !product.reaches(i.components(), q.components()) {
                    continue;
                }
            }
            items.push(i.clone());
            truths.push(t);
        }
        if let Some(q) = query {
            if !items[1..].contains(q) {
                items.push(q.clone());
                // Truth placeholder; the query node's truth is what the
                // binding computes, not an assertion.
                truths.push(Truth::Negative);
                extra = Some(items.len() - 1);
            }
        }

        let n = items.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];

        // Closed-form edges among real nodes (indexes 1..n).
        let reaches = |a: usize, b: usize| {
            product.reaches(items[a].components(), items[b].components())
        };
        for x in 1..n {
            for y in 1..n {
                if x == y || !reaches(x, y) || items[x] == items[y] {
                    continue;
                }
                let edge = match relation.preemption() {
                    Preemption::NoPreemption => true,
                    Preemption::OffPath => {
                        product
                            .direct_edge(items[x].components(), items[y].components())
                            .is_some()
                            || !(1..n).any(|z| {
                                z != x && z != y && reaches(x, z) && reaches(z, y)
                            })
                    }
                    Preemption::OnPath => {
                        let kept: Vec<&Item> =
                            (1..n).filter(|&z| z != y).map(|z| &items[z]).collect();
                        path_avoiding(product, &items[x], &items[y], &kept)
                    }
                };
                if edge {
                    children[x].push(y);
                    parents[y].push(x);
                }
            }
        }

        // Universal negated tuple: arc to every parentless real node.
        for (y, preds) in parents.iter_mut().enumerate().skip(1) {
            if preds.is_empty() {
                children[Self::UNIVERSAL].push(y);
                preds.push(Self::UNIVERSAL);
            }
        }

        SubsumptionGraph {
            items,
            truths,
            children,
            parents,
            extra,
        }
    }

    /// Total nodes including the universal virtual node.
    pub fn node_count(&self) -> usize {
        self.items.len()
    }

    /// The item at a node (the universal node maps to `D*` itself).
    pub fn item(&self, i: usize) -> &Item {
        &self.items[i]
    }

    /// The truth value at a node (the universal node is negative).
    pub fn truth(&self, i: usize) -> Truth {
        self.truths[i]
    }

    /// Immediate successors.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Immediate predecessors.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// The node index of a stored item, if present.
    pub fn index_of(&self, item: &Item) -> Option<usize> {
        self.items[1..].iter().position(|i| i == item).map(|p| p + 1)
    }

    /// Index of the query item when built via
    /// [`SubsumptionGraph::build_for_item`] and the item had no stored
    /// tuple.
    pub fn extra_index(&self) -> Option<usize> {
        self.extra
    }

    /// Real (non-virtual) node indexes in a topological order of the
    /// graph (general before specific), deterministic.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut indeg = vec![0usize; n];
        for x in 0..n {
            for &y in &self.children[x] {
                indeg[y] += 1;
            }
        }
        let mut frontier: Vec<usize> = (0..n).filter(|&x| indeg[x] == 0).collect();
        frontier.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut next = 0;
        while next < frontier.len() {
            let x = frontier[next];
            next += 1;
            order.push(x);
            let mut freed: Vec<usize> = Vec::new();
            for &y in &self.children[x] {
                indeg[y] -= 1;
                if indeg[y] == 0 {
                    freed.push(y);
                }
            }
            freed.sort_unstable();
            frontier.extend(freed);
            frontier[next..].sort_unstable();
        }
        debug_assert_eq!(order.len(), n, "subsumption graphs are acyclic");
        order.retain(|&x| x != Self::UNIVERSAL);
        order
    }

    /// Decompose into a mutable [`SmallDigraph`] for consolidation.
    pub(crate) fn to_digraph(&self) -> SmallDigraph {
        SmallDigraph {
            children: self.children.clone(),
            parents: self.parents.clone(),
            alive: vec![true; self.node_count()],
        }
    }
}

/// A tiny mutable digraph over `usize` nodes supporting the paper's
/// node-elimination procedure; used by consolidation, where the
/// subsumption graph must be updated as redundant tuples are deleted.
#[derive(Clone, Debug)]
pub(crate) struct SmallDigraph {
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
    alive: Vec<bool>,
}

impl SmallDigraph {
    pub(crate) fn predecessors(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    pub(crate) fn has_path(&self, from: usize, to: usize) -> bool {
        if from == to {
            return self.alive[from];
        }
        if !self.alive[from] || !self.alive[to] {
            return false;
        }
        let mut seen = vec![false; self.children.len()];
        seen[from] = true;
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for &c in &self.children[n] {
                if c == to {
                    return true;
                }
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// The paper's node-elimination procedure with the off-path (no
    /// redundant edges) rule. Consolidation always uses this variant:
    /// §3.3.1 prescribes "the node elimination procedure presented in
    /// Sec. 2.1", which is the redundancy-free one.
    pub(crate) fn eliminate(&mut self, i: usize) {
        if !self.alive[i] {
            return;
        }
        self.alive[i] = false;
        let preds = std::mem::take(&mut self.parents[i]);
        let succs = std::mem::take(&mut self.children[i]);
        for &p in &preds {
            self.children[p].retain(|&c| c != i);
        }
        for &s in &succs {
            self.parents[s].retain(|&p| p != i);
        }
        for &j in &preds {
            for &k in &succs {
                if !self.has_path(j, k) {
                    self.children[j].push(k);
                    self.parents[k].push(j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// The Fig. 1 flying-creatures relation.
    fn flying() -> HRelation {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Peter"], Truth::Positive).unwrap();
        r
    }

    #[test]
    fn fig1c_subsumption_graph_is_a_chain() {
        // Fig. 1c: Bird -> Penguin -> Amazing Flying Penguin -> Peter.
        let r = flying();
        let g = SubsumptionGraph::build(&r);
        assert_eq!(g.node_count(), 5); // universal + 4 tuples
        let bird = g.index_of(&r.item(&["Bird"]).unwrap()).unwrap();
        let penguin = g.index_of(&r.item(&["Penguin"]).unwrap()).unwrap();
        let afp = g
            .index_of(&r.item(&["Amazing Flying Penguin"]).unwrap())
            .unwrap();
        let peter = g.index_of(&r.item(&["Peter"]).unwrap()).unwrap();
        assert_eq!(g.children(bird), &[penguin]);
        assert_eq!(g.children(penguin), &[afp]);
        assert_eq!(g.children(afp), &[peter]);
        assert_eq!(g.children(peter), &[] as &[usize]);
        // Universal arcs only to the parentless Bird tuple.
        assert_eq!(g.children(SubsumptionGraph::UNIVERSAL), &[bird]);
        assert_eq!(g.truth(SubsumptionGraph::UNIVERSAL), Truth::Negative);
    }

    #[test]
    fn fig1d_patricia_binding_graph() {
        // Fig. 1d: Patricia's tuple-binding graph — the chain with
        // Patricia hanging off Amazing Flying Penguin only.
        let r = flying();
        let patricia = r.item(&["Patricia"]).unwrap();
        let (g, qi) = SubsumptionGraph::build_for_item(&r, &patricia);
        assert_eq!(g.extra_index(), Some(qi));
        assert_eq!(g.item(qi), &patricia);
        let afp = g
            .index_of(&r.item(&["Amazing Flying Penguin"]).unwrap())
            .unwrap();
        assert_eq!(g.parents(qi), &[afp]);
        // Peter's tuple does not reach Patricia, so it is absent.
        assert!(g.index_of(&r.item(&["Peter"]).unwrap()).is_none());
        // 5 nodes: universal + Bird + Penguin + AFP + Patricia.
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn binding_graph_for_item_with_stored_tuple() {
        let r = flying();
        let peter = r.item(&["Peter"]).unwrap();
        let (g, qi) = SubsumptionGraph::build_for_item(&r, &peter);
        // Peter has a stored tuple, so no extra node is added.
        assert_eq!(g.extra_index(), None);
        assert_eq!(g.item(qi), &peter);
        assert_eq!(g.truth(qi), Truth::Positive);
    }

    #[test]
    fn topo_order_respects_edges_and_skips_universal() {
        let r = flying();
        let g = SubsumptionGraph::build(&r);
        let order = g.topo_order();
        assert_eq!(order.len(), 4);
        assert!(!order.contains(&SubsumptionGraph::UNIVERSAL));
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        for x in order.iter().copied() {
            for &y in g.children(x) {
                assert!(pos(x) < pos(y));
            }
        }
    }

    #[test]
    fn no_preemption_graph_is_transitively_closed() {
        let mut r = flying();
        r.set_preemption(crate::preemption::Preemption::NoPreemption);
        let g = SubsumptionGraph::build(&r);
        let bird = g.index_of(&r.item(&["Bird"]).unwrap()).unwrap();
        let peter = g.index_of(&r.item(&["Peter"]).unwrap()).unwrap();
        // Bird reaches Peter transitively; under no-preemption the edge
        // is present directly.
        assert!(g.children(bird).contains(&peter));
    }

    #[test]
    fn small_digraph_elimination_bridges() {
        let mut d = SmallDigraph {
            children: vec![vec![1], vec![2], vec![]],
            parents: vec![vec![], vec![0], vec![1]],
            alive: vec![true; 3],
        };
        assert!(d.has_path(0, 2));
        d.eliminate(1);
        assert!(d.has_path(0, 2));
        assert_eq!(d.children[0], vec![2]);
        assert_eq!(d.predecessors(2), &[0]);
        // Re-eliminating is a no-op.
        d.eliminate(1);
        assert_eq!(d.children[0], vec![2]);
    }

    #[test]
    fn small_digraph_elimination_avoids_redundant_bridge() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3; eliminating 1 must not duplicate
        // 0 -> 3 since the path through 2 survives.
        let mut d = SmallDigraph {
            children: vec![vec![1, 2], vec![3], vec![3], vec![]],
            parents: vec![vec![], vec![0], vec![0], vec![1, 2]],
            alive: vec![true; 4],
        };
        d.eliminate(1);
        assert_eq!(d.children[0], vec![2]);
        assert_eq!(d.predecessors(3), &[2]);
    }
}
