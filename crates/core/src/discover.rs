//! Mechanical hierarchy discovery (§4 extension).
//!
//! "We can relax the assumption … that the class hierarchy is specified
//! by the user based upon some semantic notions. Instead, the database
//! system could mechanically organize traditional relation(s) given
//! into hierarchical relations with 'classes' being defined in such a
//! way that storage is minimized."
//!
//! Exact minimization is intractable — §3.2 already notes that the
//! special case is the NP-complete minimum-cover problem — so this is a
//! greedy gain heuristic: repeatedly pick the class item whose positive
//! assertion saves the most tuples (newly covered target atoms, minus
//! the negative exception tuples it forces, minus the tuple itself),
//! then close the remainder with atomic tuples and the accumulated
//! exceptions. The result is guaranteed equivalent to the input flat
//! relation (property-tested); only its *size* is heuristic.

use std::collections::BTreeSet;

use crate::flat::{flatten, FlatRelation};
use crate::item::Item;
use crate::ops::cartesian_items;
use crate::relation::HRelation;
use crate::tuple::Tuple;

/// Bound on the candidate class-item enumeration. When the product of
/// domain sizes exceeds this, candidates generalize one attribute at a
/// time instead of all combinations.
const FULL_ENUMERATION_LIMIT: u128 = 200_000;

/// Statistics of one discovery run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Atoms in the input flat relation.
    pub flat_tuples: usize,
    /// Tuples in the discovered hierarchical relation.
    pub hierarchical_tuples: usize,
    /// Positive class tuples chosen by the greedy cover.
    pub classes_used: usize,
    /// Negative exception tuples the classes forced.
    pub exceptions: usize,
}

/// Result of [`discover`].
pub struct Discovery {
    /// The equivalent hierarchical relation.
    pub relation: HRelation,
    /// Size accounting.
    pub stats: DiscoveryStats,
}

/// Mechanically organize a flat relation into an equivalent hierarchical
/// relation using the schema's class hierarchies.
pub fn discover(flat: &FlatRelation) -> Discovery {
    let schema = flat.schema();
    let product = schema.product();
    let target: &BTreeSet<Item> = flat.atoms();

    // Candidate class items.
    let axes_full: Vec<Vec<hrdm_hierarchy::NodeId>> = (0..schema.arity())
        .map(|i| schema.domain(i).node_ids().collect())
        .collect();
    let total: u128 = axes_full
        .iter()
        .map(|a| a.len() as u128)
        .fold(1, |p, n| p.saturating_mul(n));
    let candidates: Vec<Item> = if total <= FULL_ENUMERATION_LIMIT {
        cartesian_items(&axes_full)
    } else {
        // One generalized attribute at a time, seeded from target atoms.
        let mut out = BTreeSet::new();
        for atom in target {
            for i in 0..schema.arity() {
                for anc in schema.domain(i).ancestors(atom.component(i)) {
                    out.insert(atom.with_component(i, anc));
                }
            }
        }
        out.into_iter().collect()
    };

    // Pre-filter: keep candidates that are composite (some class
    // component) and whose extension is non-trivial.
    struct Cand {
        item: Item,
        ext: BTreeSet<Item>,
    }
    let candidates: Vec<Cand> = candidates
        .into_iter()
        .filter(|c| !product.is_atomic(c.components()))
        .map(|item| {
            let ext: BTreeSet<Item> = product
                .extension(item.components())
                .map(Item::new)
                .collect();
            Cand { item, ext }
        })
        .filter(|c| c.ext.len() > 1)
        .collect();

    let mut remaining: BTreeSet<Item> = target.clone();
    let mut chosen: Vec<Item> = Vec::new();
    let mut exceptions: BTreeSet<Item> = BTreeSet::new();

    loop {
        let mut best: Option<(i64, usize)> = None;
        for (idx, c) in candidates.iter().enumerate() {
            let newly = c.ext.intersection(&remaining).count() as i64;
            if newly == 0 {
                continue;
            }
            let outside = c.ext.iter().filter(|a| !target.contains(*a)).count() as i64;
            let gain = newly - outside - 1;
            if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, idx));
            }
        }
        let Some((_, idx)) = best else { break };
        let c = &candidates[idx];
        chosen.push(c.item.clone());
        for a in &c.ext {
            if target.contains(a) {
                remaining.remove(a);
            } else {
                exceptions.insert(a.clone());
            }
        }
    }

    let mut relation = HRelation::new(schema.clone());
    for item in &chosen {
        relation
            .insert(Tuple::positive(item.clone()))
            .expect("candidate items come from the schema");
    }
    for atom in &remaining {
        relation
            .insert(Tuple::positive(atom.clone()))
            .expect("target atoms come from the schema");
    }
    // Exceptions: only where the positive cover actually over-asserts.
    let mut exception_count = 0usize;
    for e in &exceptions {
        if relation.holds(e) {
            relation
                .insert(Tuple::negative(e.clone()))
                .expect("exception atoms come from the schema");
            exception_count += 1;
        }
    }

    let stats = DiscoveryStats {
        flat_tuples: target.len(),
        hierarchical_tuples: relation.len(),
        classes_used: chosen.len(),
        exceptions: exception_count,
    };
    Discovery { relation, stats }
}

/// Round-trip convenience: re-discover the minimal-ish hierarchical form
/// of an existing relation.
pub fn rediscover(relation: &HRelation) -> Discovery {
    discover(&flatten(relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::truth::Truth;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    fn schema_with_classes() -> Arc<Schema> {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        for n in ["b1", "b2", "b3", "b4", "b5"] {
            g.add_instance(n, bird).unwrap();
        }
        let fish = g.add_class("Fish", g.root()).unwrap();
        for n in ["f1", "f2", "f3"] {
            g.add_instance(n, fish).unwrap();
        }
        Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]))
    }

    fn flat_of(schema: &Arc<Schema>, names: &[&str]) -> FlatRelation {
        let atoms = names.iter().map(|n| schema.item(&[n]).unwrap()).collect();
        FlatRelation::from_atoms(schema.clone(), atoms)
    }

    #[test]
    fn full_class_compresses_to_one_tuple() {
        let schema = schema_with_classes();
        let flat = flat_of(&schema, &["b1", "b2", "b3", "b4", "b5"]);
        let d = discover(&flat);
        assert_eq!(d.stats.hierarchical_tuples, 1);
        assert_eq!(d.stats.classes_used, 1);
        assert_eq!(d.stats.exceptions, 0);
        assert_eq!(flatten(&d.relation).atoms(), flat.atoms());
    }

    #[test]
    fn near_full_class_uses_exception() {
        // 4 of 5 birds: +Bird, -b5 (2 tuples) beats 4 atoms.
        let schema = schema_with_classes();
        let flat = flat_of(&schema, &["b1", "b2", "b3", "b4"]);
        let d = discover(&flat);
        assert_eq!(d.stats.hierarchical_tuples, 2);
        assert_eq!(d.stats.exceptions, 1);
        assert_eq!(flatten(&d.relation).atoms(), flat.atoms());
    }

    #[test]
    fn sparse_membership_stays_atomic() {
        // 2 of 5 birds: class gains nothing; atoms win.
        let schema = schema_with_classes();
        let flat = flat_of(&schema, &["b1", "b2"]);
        let d = discover(&flat);
        assert_eq!(d.stats.classes_used, 0);
        assert_eq!(d.stats.hierarchical_tuples, 2);
        assert_eq!(flatten(&d.relation).atoms(), flat.atoms());
    }

    #[test]
    fn multiple_classes_combine() {
        // All birds + all fish: root class covers everything in one
        // tuple (Animal), since every instance is in the target.
        let schema = schema_with_classes();
        let flat = flat_of(&schema, &["b1", "b2", "b3", "b4", "b5", "f1", "f2", "f3"]);
        let d = discover(&flat);
        assert_eq!(d.stats.hierarchical_tuples, 1);
        assert_eq!(flatten(&d.relation).atoms(), flat.atoms());
    }

    #[test]
    fn empty_flat_relation() {
        let schema = schema_with_classes();
        let flat = flat_of(&schema, &[]);
        let d = discover(&flat);
        assert!(d.relation.is_empty());
        assert_eq!(d.stats.flat_tuples, 0);
    }

    #[test]
    fn rediscover_compresses_explicated_relation() {
        let schema = schema_with_classes();
        let mut r = HRelation::new(schema.clone());
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["b3"], Truth::Negative).unwrap();
        let explicated = crate::explicate::explicate_all(&r);
        assert_eq!(explicated.len(), 5);
        let d = rediscover(&explicated);
        assert!(d.stats.hierarchical_tuples <= 2 + 1);
        assert!(crate::flat::equivalent(&d.relation, &r));
    }

    #[test]
    fn two_attribute_discovery() {
        let mut a = HierarchyGraph::new("Animal");
        let bird = a.add_class("Bird", a.root()).unwrap();
        for n in ["b1", "b2", "b3"] {
            a.add_instance(n, bird).unwrap();
        }
        let mut f = HierarchyGraph::new("Food");
        let seed = f.add_class("Seed", f.root()).unwrap();
        for n in ["s1", "s2"] {
            f.add_instance(n, seed).unwrap();
        }
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", Arc::new(a)),
            Attribute::new("Food", Arc::new(f)),
        ]));
        // Full rectangle Bird × Seed.
        let mut atoms = BTreeSet::new();
        for b in ["b1", "b2", "b3"] {
            for s in ["s1", "s2"] {
                atoms.insert(schema.item(&[b, s]).unwrap());
            }
        }
        let flat = FlatRelation::from_atoms(schema.clone(), atoms);
        let d = discover(&flat);
        assert_eq!(d.stats.hierarchical_tuples, 1, "one (∀Bird, ∀Seed) tuple");
        assert_eq!(flatten(&d.relation).atoms(), flat.atoms());
    }

    #[test]
    fn discovery_result_is_consistent() {
        let schema = schema_with_classes();
        let flat = flat_of(&schema, &["b1", "b2", "b3", "b4", "f1", "f2", "f3"]);
        let d = discover(&flat);
        assert!(crate::conflict::is_consistent(&d.relation));
        assert_eq!(flatten(&d.relation).atoms(), flat.atoms());
    }
}
