//! Selection over hierarchical relations (§3.4, Figs. 7–9).
//!
//! A selection is specified by a *region*: an item whose components
//! restrict each attribute to a class (or instance) subtree — e.g.
//! "who do obsequious students respect?" selects the region
//! `(∀Obsequious Student, ∀Teacher)` of the Respects relation.
//!
//! Evaluation: every stored tuple intersecting the region is restricted
//! to it (componentwise maximal intersection), and each restricted item
//! is assigned the truth value it *binds to in the argument* — so a
//! generalization restricted into the scope of one of its exceptions
//! comes out carrying the exception's truth, preserving the equivalent
//! flat semantics (property-tested against `σ(flat(R))`).

use std::collections::BTreeSet;

use crate::error::Result;
use crate::item::Item;
use crate::ops::{class_holds, resolve_conflicts_fixpoint, restrict};
use crate::relation::HRelation;
use crate::truth::Truth;
use crate::tuple::Tuple;

/// Select the sub-relation of `relation` within `region`.
///
/// The result ranges over the same schema; items outside the region are
/// absent (negated tuples about them are not generated — absence already
/// excludes them under the closed world).
pub fn select(relation: &HRelation, region: &Item) -> Result<HRelation> {
    let schema = relation.schema();
    schema.check_item(region)?;

    // Candidate result items: restrictions of every stored tuple item.
    let mut candidates: BTreeSet<Item> = BTreeSet::new();
    for (item, _) in relation.iter() {
        for restricted in restrict(schema, item, region) {
            candidates.insert(restricted);
        }
    }

    let mut result = HRelation::with_preemption(schema.clone(), relation.preemption());
    for item in candidates {
        let truth = Truth::from_bool(class_holds(relation, &item)?);
        result.insert(Tuple::new(item, truth))?;
    }
    resolve_conflicts_fixpoint(&mut result, |item| {
        Ok(Truth::from_bool(class_holds(relation, item)?))
    })?;
    Ok(result)
}

/// Convenience: select on a single attribute by name, leaving the others
/// unrestricted — `select_eq(r, "Student", "John")` is Fig. 8's
/// "who does John respect?".
pub fn select_eq(relation: &HRelation, attr: &str, value: &str) -> Result<HRelation> {
    let schema = relation.schema();
    let i = schema.index_of(attr)?;
    let node = schema.domain(i).node(value)?;
    let region = schema.universal_item().with_component(i, node);
    select(relation, &region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flatten, FlatRelation};
    use crate::ops::test_fixtures::*;

    /// σ(flat(R)) — the specification the operator must match.
    fn flat_select(relation: &HRelation, region: &Item) -> FlatRelation {
        let product = relation.schema().product();
        let atoms = flatten(relation)
            .into_atoms()
            .into_iter()
            .filter(|a| product.subsumes(region.components(), a.components()))
            .collect();
        FlatRelation::from_atoms(relation.schema().clone(), atoms)
    }

    #[test]
    fn fig7_who_do_obsequious_students_respect() {
        let r = respects();
        let region = r.item(&["Obsequious Student", "Teacher"]).unwrap();
        let result = select(&r, &region).unwrap();
        // All of (ObsStudent, Teacher) holds: John respects Smith and
        // Jones; Mary (not obsequious) is absent.
        let flat = flatten(&result);
        assert!(flat.contains(&r.item(&["John", "Smith"]).unwrap()));
        assert!(flat.contains(&r.item(&["John", "Jones"]).unwrap()));
        assert!(!flat.contains(&r.item(&["Mary", "Jones"]).unwrap()));
        assert_eq!(flat.atoms(), flat_select(&r, &region).atoms());
        // And the hierarchical form stays condensed: one positive class
        // tuple is enough.
        assert!(result
            .stored(&r.item(&["Obsequious Student", "Teacher"]).unwrap())
            .is_some());
    }

    #[test]
    fn fig8_who_does_john_respect() {
        let r = respects();
        let result = select_eq(&r, "Student", "John").unwrap();
        let flat = flatten(&result);
        assert!(flat.contains(&r.item(&["John", "Smith"]).unwrap()));
        assert!(flat.contains(&r.item(&["John", "Jones"]).unwrap()));
        assert_eq!(flat.len(), 2);
        let region = r.item(&["John", "Teacher"]).unwrap();
        assert_eq!(flat.atoms(), flat_select(&r, &region).atoms());
    }

    #[test]
    fn selection_preserves_exception_structure() {
        // Selecting the penguins from the flying relation must keep the
        // exception-to-the-exception.
        let schema = animal_schema();
        let r = flying(&schema);
        let region = r.item(&["Penguin"]).unwrap();
        let result = select(&r, &region).unwrap();
        let flat = flatten(&result);
        assert!(!flat.contains(&r.item(&["Paul"]).unwrap()));
        assert!(flat.contains(&r.item(&["Pamela"]).unwrap()));
        assert!(flat.contains(&r.item(&["Peter"]).unwrap()));
        assert!(flat.contains(&r.item(&["Patricia"]).unwrap()));
        assert_eq!(flat.atoms(), flat_select(&r, &region).atoms());
        // The Bird generalization restricted into the penguin region
        // carries the exception's truth (negative), not its own.
        assert_eq!(
            result.stored(&r.item(&["Penguin"]).unwrap()),
            Some(Truth::Negative)
        );
    }

    #[test]
    fn selection_on_instance_region() {
        let schema = animal_schema();
        let r = flying(&schema);
        let region = r.item(&["Tweety"]).unwrap();
        let result = select(&r, &region).unwrap();
        let flat = flatten(&result);
        assert_eq!(flat.len(), 1);
        assert!(flat.contains(&region));
    }

    #[test]
    fn selection_outside_any_tuple_is_empty() {
        let schema = animal_schema();
        let r = flying(&schema);
        // Canaries are birds, so they fly — but select a disjoint region
        // with no applicable tuples by using a fresh sibling class.
        let region = r.item(&["Canary"]).unwrap();
        let result = select(&r, &region).unwrap();
        // Canary region: +Bird applies, so tweety flies.
        assert!(flatten(&result).contains(&r.item(&["Tweety"]).unwrap()));
        // Whole-domain selection is identity on the flat model.
        let all = select(&r, &r.schema().universal_item()).unwrap();
        assert_eq!(flatten(&all).atoms(), flatten(&r).atoms());
    }

    #[test]
    fn multi_condition_region_select() {
        // Both attributes restricted at once: obsequious students AND
        // incoherent teachers.
        let r = respects();
        let region = r
            .item(&["Obsequious Student", "Incoherent Teacher"])
            .unwrap();
        let result = select(&r, &region).unwrap();
        let flat = flatten(&result);
        assert!(flat.contains(&r.item(&["John", "Smith"]).unwrap()));
        assert!(!flat.contains(&r.item(&["John", "Jones"]).unwrap()));
        assert!(!flat.contains(&r.item(&["Mary", "Smith"]).unwrap()));
        assert_eq!(flat.atoms(), flat_select(&r, &region).atoms());
    }

    #[test]
    fn select_eq_unknown_attribute_or_value() {
        let r = respects();
        assert!(select_eq(&r, "Professor", "John").is_err());
        assert!(select_eq(&r, "Student", "Nobody").is_err());
    }

    #[test]
    fn selection_region_arity_checked() {
        let r = respects();
        let bad = Item::new(vec![hrdm_hierarchy::NodeId::ROOT]);
        assert!(select(&r, &bad).is_err());
    }
}
