//! Natural join (§3.4, Fig. 11).
//!
//! Attributes are matched by name (their domain graphs must be the same
//! shared `Arc` — a natural join across different taxonomies of the
//! "same" domain is almost certainly a modelling error). For every pair
//! of argument tuples, the shared attributes are intersected
//! componentwise; each resulting candidate item is assigned the
//! conjunction of the truths its two *projections* bind to in the
//! respective arguments, so exceptions stored in either argument
//! propagate into the join (Fig. 11b's negated rows). A final §3.1
//! conflict-resolution fixpoint restores the ambiguity constraint when
//! incomparable candidates disagree.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::ops::{cartesian_items, class_holds, resolve_conflicts_fixpoint};
use crate::parallel;
use crate::relation::HRelation;
use crate::schema::{Attribute, Schema};
use crate::stats;
use crate::truth::Truth;
use crate::tuple::Tuple;

/// Natural join of two hierarchical relations.
///
/// The membership intersections (`maximal_intersection`) run over the
/// shared subset-closure cache, and the per-candidate truth evaluation —
/// two binding-graph lookups per candidate — fans out across threads.
pub fn join(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    let mut span = hrdm_obs::span!("core.join");
    let start = Instant::now();
    let ls = left.schema();
    let rs = right.schema();

    // Pair up shared attributes by name; validate shared domains.
    let mut shared: Vec<(usize, usize)> = Vec::new();
    for (i, la) in ls.attributes().iter().enumerate() {
        if let Ok(j) = rs.index_of(la.name()) {
            if !Arc::ptr_eq(la.domain(), rs.attribute(j).domain()) {
                return Err(CoreError::SchemaMismatch);
            }
            shared.push((i, j));
        }
    }
    if shared.is_empty() {
        return Err(CoreError::NoJoinAttributes);
    }
    let right_only: Vec<usize> = (0..rs.arity())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();

    // Result schema: all of left's attributes, then right's non-shared.
    let mut attrs: Vec<Attribute> = ls
        .attributes()
        .iter()
        .map(|a| Attribute::new(a.name(), a.domain().clone()))
        .collect();
    for &j in &right_only {
        let a = rs.attribute(j);
        attrs.push(Attribute::new(a.name(), a.domain().clone()));
    }
    let out_schema = Arc::new(Schema::new(attrs));

    // Projections of a result item back onto the argument schemas.
    let left_arity = ls.arity();
    let project_left =
        |item: &Item| -> Item { Item::new(item.components()[..left_arity].to_vec()) };
    let project_right = |item: &Item| -> Item {
        Item::new(
            (0..rs.arity())
                .map(|j| {
                    if let Some(&(i, _)) = shared.iter().find(|&&(_, sj)| sj == j) {
                        item.component(i)
                    } else {
                        let pos = right_only.iter().position(|&r| r == j).expect("partition");
                        item.component(left_arity + pos)
                    }
                })
                .collect(),
        )
    };

    // Candidate result items from every tuple pair.
    let mut candidates: BTreeSet<Item> = BTreeSet::new();
    for (li, _) in left.iter() {
        for (ri, _) in right.iter() {
            let mut axes: Vec<Vec<hrdm_hierarchy::NodeId>> = Vec::with_capacity(out_schema.arity());
            for i in 0..left_arity {
                if let Some(&(_, j)) = shared.iter().find(|&&(si, _)| si == i) {
                    axes.push(
                        ls.domain(i)
                            .maximal_intersection(li.component(i), ri.component(j)),
                    );
                } else {
                    axes.push(vec![li.component(i)]);
                }
            }
            for &j in &right_only {
                axes.push(vec![ri.component(j)]);
            }
            for item in cartesian_items(&axes) {
                candidates.insert(item);
            }
        }
    }

    let truth_of = |item: &Item| -> Result<Truth> {
        let l = class_holds(left, &project_left(item))?;
        let r = class_holds(right, &project_right(item))?;
        Ok(Truth::from_bool(l && r))
    };

    let candidates: Vec<Item> = candidates.into_iter().collect();
    let truths = parallel::par_map(&candidates, truth_of);
    let mut result = HRelation::with_preemption(out_schema, left.preemption());
    for (item, t) in candidates.into_iter().zip(truths) {
        result.insert(Tuple::new(item, t?))?;
    }
    resolve_conflicts_fixpoint(&mut result, truth_of)?;
    stats::record_join(start.elapsed());
    if span.is_active() {
        span.field_u64("left_rows", left.len() as u64);
        span.field_u64("right_rows", right.len() as u64);
        span.field_u64("rows", result.len() as u64);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::flatten;
    use crate::ops::project::project_names;
    use crate::ops::test_fixtures::animal_graph;
    use hrdm_hierarchy::HierarchyGraph;

    /// Fig. 4 + Fig. 11a: elephants with colours and enclosure sizes.
    fn elephant_world() -> (HRelation, HRelation) {
        let mut a = HierarchyGraph::new("Animal");
        let elephant = a.add_class("Elephant", a.root()).unwrap();
        let royal = a.add_class("Royal Elephant", elephant).unwrap();
        let indian = a.add_class("Indian Elephant", elephant).unwrap();
        a.add_instance_multi("Appu", &[royal, indian]).unwrap();
        a.add_instance("Clyde", royal).unwrap();
        let a = Arc::new(a);

        let mut c = HierarchyGraph::new("Color");
        c.add_instance("Grey", c.root()).unwrap();
        c.add_instance("White", c.root()).unwrap();
        c.add_instance("Dappled", c.root()).unwrap();
        let c = Arc::new(c);

        let mut e = HierarchyGraph::new("Enclosure Size");
        e.add_instance("3000", e.root()).unwrap();
        e.add_instance("2000", e.root()).unwrap();
        let e = Arc::new(e);

        let color_schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", a.clone()),
            Attribute::new("Color", c),
        ]));
        let mut color = HRelation::new(color_schema);
        color
            .assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        color
            .assert_fact(&["Royal Elephant", "Grey"], Truth::Negative)
            .unwrap();
        color
            .assert_fact(&["Royal Elephant", "White"], Truth::Positive)
            .unwrap();
        color
            .assert_fact(&["Clyde", "White"], Truth::Negative)
            .unwrap();
        color
            .assert_fact(&["Clyde", "Dappled"], Truth::Positive)
            .unwrap();

        let size_schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", a),
            Attribute::new("Enclosure Size", e),
        ]));
        let mut size = HRelation::new(size_schema);
        // Fig. 11a: elephants get 3000, Indian elephants 2000.
        size.assert_fact(&["Elephant", "3000"], Truth::Positive)
            .unwrap();
        size.assert_fact(&["Indian Elephant", "3000"], Truth::Negative)
            .unwrap();
        size.assert_fact(&["Indian Elephant", "2000"], Truth::Positive)
            .unwrap();
        (color, size)
    }

    #[test]
    fn fig11b_join_carries_exceptions() {
        let (color, size) = elephant_world();
        let joined = join(&size, &color).unwrap();
        assert_eq!(joined.schema().arity(), 3);
        // Clyde: dappled, enclosure 3000.
        let clyde = joined.item(&["Clyde", "3000", "Dappled"]).unwrap();
        assert!(flatten(&joined).contains(&clyde));
        // Appu: white, enclosure 2000 (Indian overrides the size,
        // royal overrides the colour).
        let appu = joined.item(&["Appu", "2000", "White"]).unwrap();
        assert!(flatten(&joined).contains(&appu));
        // Appu is NOT (grey, anything) nor (-, 3000).
        let wrong = joined.item(&["Appu", "3000", "White"]).unwrap();
        assert!(!flatten(&joined).contains(&wrong));
        let wrong = joined.item(&["Appu", "2000", "Grey"]).unwrap();
        assert!(!flatten(&joined).contains(&wrong));
    }

    #[test]
    fn join_flat_semantics_matches_flat_join() {
        let (color, size) = elephant_world();
        let joined = join(&size, &color).unwrap();
        // Specification: flat(join) == flat(size) ⋈ flat(color).
        let fs = flatten(&size);
        let fc = flatten(&color);
        let mut expected = std::collections::BTreeSet::new();
        for s in fs.iter() {
            for c in fc.iter() {
                if s.component(0) == c.component(0) {
                    expected.insert(Item::new(vec![
                        s.component(0),
                        s.component(1),
                        c.component(1),
                    ]));
                }
            }
        }
        assert_eq!(flatten(&joined).atoms(), &expected);
    }

    #[test]
    fn fig11c_projection_back_loses_nothing() {
        // "the join of two relations followed by a projection back on
        // one of the original relation[s]. Notice that there is no loss
        // of information."
        let (color, size) = elephant_world();
        let joined = join(&size, &color).unwrap();
        let back = project_names(&joined, &["Animal", "Color"]).unwrap();
        // Same flat model as the original colour relation, restricted to
        // animals that have an enclosure size (all elephants here).
        let fb = flatten(&back);
        let fc = flatten(&color);
        assert_eq!(fb.atoms(), fc.atoms());
    }

    #[test]
    fn join_requires_shared_attribute() {
        let (color, _) = elephant_world();
        let other_schema = Arc::new(Schema::single("Creature", animal_graph()));
        let other = HRelation::new(other_schema);
        assert!(matches!(
            join(&color, &other),
            Err(CoreError::NoJoinAttributes)
        ));
    }

    #[test]
    fn join_rejects_same_name_different_graph() {
        let (color, _) = elephant_world();
        let imposter_schema = Arc::new(Schema::single("Animal", animal_graph()));
        let imposter = HRelation::new(imposter_schema);
        assert!(matches!(
            join(&color, &imposter),
            Err(CoreError::SchemaMismatch)
        ));
    }

    #[test]
    fn join_on_single_shared_attribute_self() {
        // Self-join of the colour relation reproduces its flat model on
        // (Animal, Color, Color').
        let (color, _) = elephant_world();
        let renamed = crate::ops::rename(&color, "Color", "Color2").unwrap();
        let joined = join(&color, &renamed).unwrap();
        let f = flatten(&joined);
        // Clyde is dappled only: exactly one (Clyde, x, y) combination.
        let clyde_rows: Vec<_> = f
            .iter()
            .filter(|i| color.schema().domain(0).name(i.component(0)).as_str() == "Clyde")
            .collect();
        assert_eq!(clyde_rows.len(), 1);
    }
}
