//! Set operations (§3.4, Fig. 10).
//!
//! "Set operations apply to the explicated item sets represented by the
//! relations, and not to the actual set of tuples physically used to
//! store the relations." The implementation nevertheless stays
//! hierarchical: candidate result items are the stored items of both
//! arguments, each assigned the Boolean combination of the truths it
//! *binds to* in the two arguments; a §3.1 conflict-resolution fixpoint
//! then synthesizes tuples at common descendants where incomparable
//! candidates disagree. Results may contain redundant tuples —
//! "redundant tuples are present in the result even when there were no
//! redundant tuples in the arguments" — removable by a following
//! consolidate.

use std::collections::BTreeSet;

use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::ops::{class_holds, resolve_conflicts_fixpoint};
use crate::relation::HRelation;
use crate::truth::Truth;
use crate::tuple::Tuple;

fn combine(
    left: &HRelation,
    right: &HRelation,
    op: impl Fn(bool, bool) -> bool + Copy,
) -> Result<HRelation> {
    if !left.schema().compatible(right.schema()) {
        return Err(CoreError::SchemaMismatch);
    }
    let mut candidates: BTreeSet<Item> = BTreeSet::new();
    candidates.extend(left.items().cloned());
    candidates.extend(right.items().cloned());
    // Pairwise intersections across the two relations: the op's outcome
    // can change exactly where one relation's tuple region meets the
    // other's (e.g. the intersection of two incomparable positive
    // classes holds only strictly below both), so those meeting items
    // must be candidates too.
    let schema = left.schema();
    for (li, _) in left.iter() {
        for (ri, _) in right.iter() {
            for item in crate::ops::restrict(schema, li, ri) {
                candidates.insert(item);
            }
        }
    }

    let truth_of = |item: &Item| -> Result<Truth> {
        let l = class_holds(left, item)?;
        let r = class_holds(right, item)?;
        Ok(Truth::from_bool(op(l, r)))
    };

    let mut result = HRelation::with_preemption(left.schema().clone(), left.preemption());
    for item in candidates {
        let t = truth_of(&item)?;
        result.insert(Tuple::new(item, t))?;
    }
    resolve_conflicts_fixpoint(&mut result, truth_of)?;
    Ok(result)
}

/// Union: holds where either argument holds (Fig. 10c, "Jack and Jill
/// between them love").
pub fn union(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    combine(left, right, |l, r| l || r)
}

/// Intersection: holds where both arguments hold (Fig. 10d, "Jack and
/// Jill both love").
pub fn intersection(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    combine(left, right, |l, r| l && r)
}

/// Difference: holds where `left` holds and `right` does not
/// (Figs. 10e/f, "Jack loves but Jill does not").
pub fn difference(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    combine(left, right, |l, r| l && !r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::consolidate;
    use crate::flat::flatten;
    use crate::ops::test_fixtures::{animal_schema, flying};

    /// Fig. 10a/b over the Fig. 1 taxonomy: what Jack and Jill love.
    fn jack_and_jill() -> (HRelation, HRelation) {
        let schema = animal_schema();
        // Jack loves birds, except penguins, but does love Peter.
        let mut jack = HRelation::new(schema.clone());
        jack.assert_fact(&["Bird"], Truth::Positive).unwrap();
        jack.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        jack.assert_fact(&["Peter"], Truth::Positive).unwrap();
        // Jill loves penguins.
        let mut jill = HRelation::new(schema);
        jill.assert_fact(&["Penguin"], Truth::Positive).unwrap();
        (jack, jill)
    }

    fn flat_op(
        a: &HRelation,
        b: &HRelation,
        op: impl Fn(bool, bool) -> bool,
    ) -> std::collections::BTreeSet<Item> {
        let fa = flatten(a);
        let fb = flatten(b);
        let mut all: std::collections::BTreeSet<Item> = fa.atoms().clone();
        all.extend(fb.atoms().iter().cloned());
        all.into_iter()
            .filter(|i| op(fa.contains(i), fb.contains(i)))
            .collect()
    }

    #[test]
    fn fig10c_union() {
        let (jack, jill) = jack_and_jill();
        let between_them = union(&jack, &jill).unwrap();
        assert_eq!(
            flatten(&between_them).atoms(),
            &flat_op(&jack, &jill, |l, r| l || r)
        );
        // Every bird: Tweety, and all four penguins.
        assert_eq!(flatten(&between_them).len(), 5);
    }

    #[test]
    fn fig10d_intersection() {
        let (jack, jill) = jack_and_jill();
        let both = intersection(&jack, &jill).unwrap();
        assert_eq!(
            flatten(&both).atoms(),
            &flat_op(&jack, &jill, |l, r| l && r)
        );
        // Only Peter: the one penguin Jack loves.
        let schema = jack.schema();
        let atoms = flatten(&both);
        assert_eq!(atoms.len(), 1);
        assert!(atoms.contains(&schema.item(&["Peter"]).unwrap()));
    }

    #[test]
    fn fig10e_difference_jack_not_jill() {
        let (jack, jill) = jack_and_jill();
        let only_jack = difference(&jack, &jill).unwrap();
        assert_eq!(
            flatten(&only_jack).atoms(),
            &flat_op(&jack, &jill, |l, r| l && !r)
        );
        // Tweety (bird, not penguin).
        let schema = jack.schema();
        assert!(flatten(&only_jack).contains(&schema.item(&["Tweety"]).unwrap()));
        assert!(!flatten(&only_jack).contains(&schema.item(&["Peter"]).unwrap()));
    }

    #[test]
    fn fig10f_difference_jill_not_jack() {
        let (jack, jill) = jack_and_jill();
        let only_jill = difference(&jill, &jack).unwrap();
        assert_eq!(
            flatten(&only_jill).atoms(),
            &flat_op(&jill, &jack, |l, r| l && !r)
        );
        // Penguins minus Peter: Paul, Patricia, Pamela.
        assert_eq!(flatten(&only_jill).len(), 3);
    }

    #[test]
    fn results_stay_condensed() {
        // The union's physical form keeps class tuples — it does not
        // degenerate into the flat extension.
        let (jack, jill) = jack_and_jill();
        let u = union(&jack, &jill).unwrap();
        assert!(u.len() <= jack.len() + jill.len() + 1);
        let schema = jack.schema();
        assert_eq!(
            u.stored(&schema.item(&["Bird"]).unwrap()),
            Some(Truth::Positive)
        );
    }

    #[test]
    fn consolidation_shrinks_set_op_results() {
        // "redundant tuples are present in the result…": +Penguin under
        // +Bird becomes redundant in the union.
        let (jack, jill) = jack_and_jill();
        let u = union(&jack, &jill).unwrap();
        let c = consolidate(&u);
        assert!(c.relation.len() < u.len());
        assert!(crate::flat::equivalent(&u, &c.relation));
    }

    #[test]
    fn conflict_fixpoint_handles_incomparable_classes() {
        // Jack loves Galapagos penguins, Jill loves amazing flying
        // penguins; difference needs a resolution tuple at Patricia.
        let schema = animal_schema();
        let mut jack = HRelation::new(schema.clone());
        jack.assert_fact(&["Galapagos Penguin"], Truth::Positive)
            .unwrap();
        let mut jill = HRelation::new(schema.clone());
        jill.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        let only_jack = difference(&jack, &jill).unwrap();
        assert_eq!(
            flatten(&only_jack).atoms(),
            &flat_op(&jack, &jill, |l, r| l && !r)
        );
        // Patricia (both) excluded, Paul (Galapagos only) included.
        assert!(flatten(&only_jack).contains(&schema.item(&["Paul"]).unwrap()));
        assert!(!flatten(&only_jack).contains(&schema.item(&["Patricia"]).unwrap()));
        // The fixpoint synthesized a tuple at Patricia.
        assert_eq!(
            only_jack.stored(&schema.item(&["Patricia"]).unwrap()),
            Some(Truth::Negative)
        );
    }

    #[test]
    fn schema_mismatch_rejected() {
        let (jack, _) = jack_and_jill();
        let other = HRelation::new(animal_schema()); // fresh Arc graph
        assert!(matches!(
            union(&jack, &other),
            Err(CoreError::SchemaMismatch)
        ));
    }

    #[test]
    fn union_with_empty_is_identity_on_the_model() {
        let (jack, _) = jack_and_jill();
        let empty = HRelation::new(jack.schema().clone());
        let u = union(&jack, &empty).unwrap();
        assert!(crate::flat::equivalent(&u, &jack));
        let i = intersection(&jack, &empty).unwrap();
        assert!(flatten(&i).is_empty());
        let d = difference(&jack, &empty).unwrap();
        assert!(crate::flat::equivalent(&d, &jack));
    }

    #[test]
    fn flying_relation_as_union_operand() {
        // Exercise a deeper exception chain through the machinery.
        let schema = animal_schema();
        let r = flying(&schema);
        let mut extra = HRelation::new(schema.clone());
        extra.assert_fact(&["Paul"], Truth::Positive).unwrap();
        let u = union(&r, &extra).unwrap();
        assert_eq!(flatten(&u).atoms(), &flat_op(&r, &extra, |l, x| l || x));
        assert!(flatten(&u).contains(&schema.item(&["Paul"]).unwrap()));
    }
}
