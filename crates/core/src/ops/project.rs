//! Projection and renaming (§3.4, Fig. 11).
//!
//! Projection is **tuple-wise**: each stored tuple keeps the selected
//! components and its truth value, exactly as Fig. 11c projects the
//! joined relation back onto (Animal, Color) "with no loss of
//! information" — the universally quantified reading of a tuple
//! survives componentwise. When a positive and a negated tuple collapse
//! onto the same projected item, the positive one wins (the flat
//! semantics of projection is existential).
//!
//! Caveat, documented in DESIGN.md: tuple-wise projection of a tuple
//! whose *dropped* components are intensional classes with empty
//! extensions keeps the tuple, whereas a strictly extensional projection
//! would drop it. The paper's reading of classes as intensional sets
//! ("a potentially infinite relation … stored in constant space") makes
//! tuple-wise the faithful choice.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::relation::HRelation;
use crate::schema::{Attribute, Schema};
use crate::truth::Truth;

/// Project `relation` onto the attribute positions `attrs` (order taken
/// from `attrs`, so projection doubles as column reordering).
pub fn project(relation: &HRelation, attrs: &[usize]) -> Result<HRelation> {
    let schema = relation.schema();
    for &a in attrs {
        if a >= schema.arity() {
            return Err(CoreError::AttributeIndexOutOfRange(a));
        }
    }
    let new_schema = Arc::new(Schema::new(
        attrs
            .iter()
            .map(|&a| {
                let attr = schema.attribute(a);
                Attribute::new(attr.name(), attr.domain().clone())
            })
            .collect(),
    ));
    let mut out: BTreeMap<Item, Truth> = BTreeMap::new();
    for (item, truth) in relation.iter() {
        let projected = item.select_components(attrs);
        out.entry(projected)
            .and_modify(|t| {
                // Existential semantics: positive evidence wins.
                if truth == Truth::Positive {
                    *t = Truth::Positive;
                }
            })
            .or_insert(truth);
    }
    let mut result = HRelation::with_preemption(new_schema, relation.preemption());
    result.replace_tuples(out);
    Ok(result)
}

/// Project onto attributes by name.
pub fn project_names(relation: &HRelation, names: &[&str]) -> Result<HRelation> {
    let schema = relation.schema();
    let attrs: Vec<usize> = names
        .iter()
        .map(|n| schema.index_of(n))
        .collect::<Result<_>>()?;
    project(relation, &attrs)
}

/// Rename one attribute, keeping tuples untouched.
pub fn rename(relation: &HRelation, old: &str, new: &str) -> Result<HRelation> {
    let schema = relation.schema();
    let idx = schema.index_of(old)?;
    let new_schema = Arc::new(Schema::new(
        schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let name = if i == idx { new } else { a.name() };
                Attribute::new(name, a.domain().clone())
            })
            .collect(),
    ));
    let mut result = HRelation::with_preemption(new_schema, relation.preemption());
    for (item, truth) in relation.iter() {
        result.insert(crate::tuple::Tuple::new(item.clone(), truth))?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::flatten;
    use crate::ops::test_fixtures::*;

    #[test]
    fn projection_keeps_class_tuples_and_truths() {
        let r = respects();
        let students = project_names(&r, &["Student"]).unwrap();
        assert_eq!(students.schema().arity(), 1);
        // +(ObsStudent, Teacher) -> +ObsStudent; the negation projects to
        // -Student but the resolver tuple projects to +ObsStudent (dup).
        let obs = students.item(&["Obsequious Student"]).unwrap();
        assert_eq!(students.stored(&obs), Some(Truth::Positive));
        let flat = flatten(&students);
        assert!(flat.contains(&students.item(&["John"]).unwrap()));
        assert!(!flat.contains(&students.item(&["Mary"]).unwrap()));
    }

    #[test]
    fn positive_wins_on_collision() {
        // +(ObsStud, Teacher) and -(ObsStud, IncoTeacher): projecting on
        // Student collapses them to one item; existential semantics keep
        // the positive.
        let mut r = respects();
        // Replace the resolver with a negation to force the collision.
        let resolver = r
            .item(&["Obsequious Student", "Incoherent Teacher"])
            .unwrap();
        r.insert(crate::tuple::Tuple::negative(resolver)).unwrap();
        let students = project_names(&r, &["Student"]).unwrap();
        let obs = students.item(&["Obsequious Student"]).unwrap();
        assert_eq!(students.stored(&obs), Some(Truth::Positive));
    }

    #[test]
    fn projection_for_positive_relations_matches_flat_semantics() {
        let r = respects();
        let students = project_names(&r, &["Student"]).unwrap();
        let flat_direct = flatten(&students);
        // Flat spec: exists a teacher the student respects.
        let full = flatten(&r);
        let mut expected = std::collections::BTreeSet::new();
        for atom in full.iter() {
            expected.insert(atom.select_components(&[0]));
        }
        assert_eq!(flat_direct.atoms(), &expected);
    }

    #[test]
    fn projection_reorders_columns() {
        let r = respects();
        let swapped = project_names(&r, &["Teacher", "Student"]).unwrap();
        assert_eq!(swapped.schema().attribute(0).name(), "Teacher");
        assert_eq!(swapped.schema().attribute(1).name(), "Student");
        let item = swapped.item(&["Teacher", "Obsequious Student"]).unwrap();
        assert_eq!(swapped.stored(&item), Some(Truth::Positive));
        assert_eq!(swapped.len(), r.len());
    }

    #[test]
    fn rename_changes_schema_only() {
        let r = respects();
        let renamed = rename(&r, "Student", "Pupil").unwrap();
        assert_eq!(renamed.schema().attribute(0).name(), "Pupil");
        assert_eq!(renamed.len(), r.len());
        assert!(rename(&r, "Nope", "X").is_err());
        // Tuples unchanged.
        let item = renamed.item(&["Obsequious Student", "Teacher"]).unwrap();
        assert_eq!(renamed.stored(&item), Some(Truth::Positive));
    }

    #[test]
    fn out_of_range_projection_rejected() {
        let r = respects();
        assert!(matches!(
            project(&r, &[5]),
            Err(CoreError::AttributeIndexOutOfRange(5))
        ));
        assert!(project_names(&r, &["Ghost"]).is_err());
    }

    #[test]
    fn empty_projection_yields_nullary_relation() {
        let r = respects();
        let unit = project(&r, &[]).unwrap();
        assert_eq!(unit.schema().arity(), 0);
        // All tuples collapse to the single empty item.
        assert_eq!(unit.len(), 1);
    }
}
