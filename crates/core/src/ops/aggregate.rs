//! Statistical operations over hierarchical relations (§3.3.2).
//!
//! "This operator \[explicate\] is useful when a count, average, or other
//! statistical operation is to be performed over the relation." These
//! aggregates make that pipeline first-class: they evaluate over the
//! relation's *flat model*, so a relation condensed to a handful of
//! class tuples still counts its whole extension.
//!
//! Counting the *extension* of a class tuple needs no explication at all
//! ([`cardinality`] multiplies per-attribute extension sizes and then
//! corrects for exceptions by explicating lazily only when negated or
//! overlapping tuples make the naive product wrong); grouped counts go
//! through the explicated model.

use std::collections::BTreeMap;

use hrdm_hierarchy::NodeId;

use crate::error::{CoreError, Result};
use crate::flat::flatten;
use crate::relation::HRelation;
use crate::truth::Truth;

/// The number of atomic items in the relation's flat model.
///
/// Fast path: a relation whose tuples are all positive with pairwise
/// provably-disjoint items is counted without explication (sum of
/// extension-size products — §1's "potentially infinite relation in
/// constant space" made countable in constant-ish time). Otherwise the
/// model is explicated.
pub fn cardinality(relation: &HRelation) -> u128 {
    let product = relation.schema().product();
    let tuples: Vec<_> = relation.iter().collect();
    let disjoint_positive = tuples.iter().all(|(_, t)| *t == Truth::Positive)
        && tuples.iter().enumerate().all(|(i, (a, _))| {
            tuples.iter().skip(i + 1).all(|(b, _)| {
                !(0..relation.schema().arity()).all(|k| {
                    relation
                        .schema()
                        .domain(k)
                        .provably_intersect(a.component(k), b.component(k))
                })
            })
        });
    if disjoint_positive {
        tuples
            .iter()
            .map(|(item, _)| product.extension_size(item.components()))
            .sum()
    } else {
        flatten(relation).len() as u128
    }
}

/// Count the flat model grouped by one attribute: how many atoms of the
/// extension carry each instance value in position `attr`.
///
/// Returns `(instance node, count)` pairs in node order; instances with
/// zero count are omitted.
pub fn group_count(relation: &HRelation, attr: usize) -> Result<Vec<(NodeId, u128)>> {
    if attr >= relation.schema().arity() {
        return Err(CoreError::AttributeIndexOutOfRange(attr));
    }
    let mut counts: BTreeMap<NodeId, u128> = BTreeMap::new();
    for atom in flatten(relation).iter() {
        *counts.entry(atom.component(attr)).or_insert(0) += 1;
    }
    Ok(counts.into_iter().collect())
}

/// Count by attribute name.
pub fn group_count_by_name(relation: &HRelation, attr: &str) -> Result<Vec<(String, u128)>> {
    let i = relation.schema().index_of(attr)?;
    let g = relation.schema().domain(i);
    Ok(group_count(relation, i)?
        .into_iter()
        .map(|(node, count)| (g.name(node).to_string(), count))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_fixtures::*;
    use crate::relation::HRelation;
    use crate::truth::Truth;

    #[test]
    fn cardinality_of_flying_creatures() {
        let schema = animal_schema();
        let r = flying(&schema);
        // Tweety, Patricia, Pamela, Peter.
        assert_eq!(cardinality(&r), 4);
        assert_eq!(cardinality(&r), flatten(&r).len() as u128);
    }

    #[test]
    fn cardinality_fast_path_for_disjoint_positive_classes() {
        let schema = animal_schema();
        let mut r = HRelation::new(schema.clone());
        // Canary and Galapagos Penguin are provably disjoint... not
        // quite: Patricia is under Galapagos. Use Canary + AFP:
        // Patricia is under AFP and Galapagos, but Canary ∩ AFP = ∅.
        r.assert_fact(&["Canary"], Truth::Positive).unwrap();
        r.assert_fact(&["Galapagos Penguin"], Truth::Positive)
            .unwrap();
        // Canary ext = {Tweety}; Galapagos ext = {Paul, Patricia}.
        assert_eq!(cardinality(&r), 3);
        assert_eq!(flatten(&r).len(), 3);
    }

    #[test]
    fn cardinality_with_overlap_uses_model_not_sum() {
        let schema = animal_schema();
        let mut r = HRelation::new(schema.clone());
        r.assert_fact(&["Galapagos Penguin"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        // Naive sum would double-count Patricia: 2 + 3 = 5; model = 4.
        assert_eq!(cardinality(&r), 4);
    }

    #[test]
    fn group_count_over_respects() {
        let r = respects();
        // Respects extension: John×{Smith, Jones}, Jane? no Jane here —
        // fixture has John, Mary students; only obsequious John respects.
        let by_student = group_count_by_name(&r, "Student").unwrap();
        assert_eq!(by_student, vec![("John".to_string(), 2)]);
        let by_teacher = group_count_by_name(&r, "Teacher").unwrap();
        assert_eq!(
            by_teacher,
            vec![("Smith".to_string(), 1), ("Jones".to_string(), 1)]
        );
    }

    #[test]
    fn group_count_errors() {
        let r = respects();
        assert!(matches!(
            group_count(&r, 5),
            Err(CoreError::AttributeIndexOutOfRange(5))
        ));
        assert!(group_count_by_name(&r, "Dean").is_err());
    }

    #[test]
    fn empty_relation_counts_zero() {
        let schema = animal_schema();
        let r = HRelation::new(schema);
        assert_eq!(cardinality(&r), 0);
        assert!(group_count(&r, 0).unwrap().is_empty());
    }
}
