//! Standard relational operators over hierarchical relations (§3.4).
//!
//! "Standard relational operators continue to work with hierarchical
//! relations" — with the invariant of §3 as their specification: *any
//! manipulation must have the same effect whether performed on the
//! hierarchical relation or on its equivalent flat relation*. Each
//! operator here is implemented directly on the stored tuples (never by
//! explicating) and property-tested against the flat baseline.
//!
//! The common evaluation pattern: generate *candidate* result items from
//! the argument tuples, evaluate each candidate's truth **through the
//! binding machinery of the arguments** (so that exceptions and
//! preemption carry over), and then run a conflict-resolution fixpoint —
//! when two incomparable candidates end up with opposite truth values,
//! the §3.1 resolution tuples are synthesized at their common
//! descendants. The fixpoint mirrors exactly what the paper requires of
//! a front end resolving conflicts by hand.

pub mod aggregate;
pub mod join;
pub mod project;
pub mod select;
pub mod set_ops;

pub use aggregate::{cardinality, group_count, group_count_by_name};
pub use join::join;
pub use project::{project, project_names, rename};
pub use select::{select, select_eq};
pub use set_ops::{difference, intersection, union};

use crate::binding::Binding;
use crate::conflict::find_conflicts;
use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::relation::HRelation;
use crate::truth::Truth;

/// The closed-world truth of a (possibly composite) item in `relation`:
/// positive binding → `true`; negative or unspecified → `false`;
/// conflict → the input violates its ambiguity constraint.
pub(crate) fn class_holds(relation: &HRelation, item: &Item) -> Result<bool> {
    match relation.bind(item) {
        Binding::Explicit(t) | Binding::Inherited(t, _) => Ok(t.holds()),
        Binding::Unspecified => Ok(false),
        Binding::Conflict { .. } => Err(CoreError::InputInconsistent(vec![item.clone()])),
    }
}

/// Componentwise restriction of `item` to `region`: the Cartesian
/// product of per-attribute maximal intersections. Empty when the two
/// items are provably disjoint in some attribute.
pub(crate) fn restrict(schema: &crate::schema::Schema, item: &Item, region: &Item) -> Vec<Item> {
    let axes: Vec<Vec<hrdm_hierarchy::NodeId>> = (0..schema.arity())
        .map(|i| {
            schema
                .domain(i)
                .maximal_intersection(item.component(i), region.component(i))
        })
        .collect();
    cartesian_items(&axes)
}

/// Cartesian product of per-attribute node lists as items.
pub(crate) fn cartesian_items(axes: &[Vec<hrdm_hierarchy::NodeId>]) -> Vec<Item> {
    if axes.iter().any(|a| a.is_empty()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cursor = vec![0usize; axes.len()];
    loop {
        out.push(Item::new(
            cursor.iter().zip(axes).map(|(&c, ax)| ax[c]).collect(),
        ));
        let mut pos = axes.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < axes[pos].len() {
                break;
            }
            cursor[pos] = 0;
        }
    }
}

/// Insert synthesized §3.1 resolution tuples until the result satisfies
/// its ambiguity constraint. `truth_of` computes the correct truth for a
/// conflicted item from the operator's arguments.
///
/// Terminates because each round inserts tuples only at items that had
/// none, strictly below existing tuples in the finite item hierarchy.
pub(crate) fn resolve_conflicts_fixpoint(
    result: &mut HRelation,
    mut truth_of: impl FnMut(&Item) -> Result<Truth>,
) -> Result<()> {
    loop {
        let conflicts = find_conflicts(result);
        if conflicts.is_empty() {
            return Ok(());
        }
        for c in conflicts {
            let t = truth_of(&c.item)?;
            result.insert(crate::tuple::Tuple::new(c.item, t))?;
        }
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! Shared relation fixtures for operator tests: the paper's running
    //! examples.

    use crate::relation::HRelation;
    use crate::schema::{Attribute, Schema};
    use crate::truth::Truth;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// Fig. 1a taxonomy as a shared graph.
    pub fn animal_graph() -> Arc<HierarchyGraph> {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        Arc::new(g)
    }

    /// Single-attribute schema over the Fig. 1a taxonomy.
    pub fn animal_schema() -> Arc<Schema> {
        Arc::new(Schema::single("Creature", animal_graph()))
    }

    /// The Fig. 1b flying-creatures relation.
    pub fn flying(schema: &Arc<Schema>) -> HRelation {
        let mut r = HRelation::new(schema.clone());
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Peter"], Truth::Positive).unwrap();
        r
    }

    /// Figs. 2–3 Respects relation (with the conflict resolved).
    pub fn respects() -> HRelation {
        let mut s = HierarchyGraph::new("Student");
        let ob = s.add_class("Obsequious Student", s.root()).unwrap();
        s.add_instance("John", ob).unwrap();
        s.add_instance("Mary", s.root()).unwrap();
        let mut t = HierarchyGraph::new("Teacher");
        let ic = t.add_class("Incoherent Teacher", t.root()).unwrap();
        t.add_instance("Smith", ic).unwrap();
        t.add_instance("Jones", t.root()).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Student", Arc::new(s)),
            Attribute::new("Teacher", Arc::new(t)),
        ]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Obsequious Student", "Teacher"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Student", "Incoherent Teacher"], Truth::Negative)
            .unwrap();
        r.assert_fact(
            &["Obsequious Student", "Incoherent Teacher"],
            Truth::Positive,
        )
        .unwrap();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_fixtures::*;

    #[test]
    fn class_holds_closed_world() {
        let schema = animal_schema();
        let r = flying(&schema);
        assert!(class_holds(&r, &r.item(&["Bird"]).unwrap()).unwrap());
        assert!(!class_holds(&r, &r.item(&["Penguin"]).unwrap()).unwrap());
        // Nothing asserted above Bird: closed world says false.
        assert!(!class_holds(&r, &r.item(&["Animal"]).unwrap()).unwrap());
    }

    #[test]
    fn class_holds_rejects_conflicted_input() {
        let schema = animal_schema();
        let mut r = flying(&schema);
        r.assert_fact(&["Galapagos Penguin"], Truth::Negative)
            .unwrap();
        let patricia = r.item(&["Patricia"]).unwrap();
        assert!(matches!(
            class_holds(&r, &patricia),
            Err(CoreError::InputInconsistent(_))
        ));
    }

    #[test]
    fn restrict_comparable_and_disjoint() {
        let schema = animal_schema();
        let r = flying(&schema);
        let bird = r.item(&["Bird"]).unwrap();
        let penguin = r.item(&["Penguin"]).unwrap();
        assert_eq!(restrict(&schema, &bird, &penguin), vec![penguin.clone()]);
        let canary = r.item(&["Canary"]).unwrap();
        assert!(restrict(&schema, &canary, &penguin).is_empty());
        // Incomparable with common instance: Patricia.
        let gala = r.item(&["Galapagos Penguin"]).unwrap();
        let afp = r.item(&["Amazing Flying Penguin"]).unwrap();
        assert_eq!(
            restrict(&schema, &gala, &afp),
            vec![r.item(&["Patricia"]).unwrap()]
        );
    }

    #[test]
    fn cartesian_items_shapes() {
        use hrdm_hierarchy::NodeId;
        let n = NodeId::from_index;
        assert!(cartesian_items(&[vec![], vec![n(0)]]).is_empty());
        let out = cartesian_items(&[vec![n(0), n(1)], vec![n(2), n(3)]]);
        assert_eq!(out.len(), 4);
    }
}
