//! Epoch-stamped snapshot publication for concurrent engines.
//!
//! The serving layer separates *snapshot reads* from *serialized
//! writes*: readers grab an `Arc`-shared, immutable copy of the whole
//! catalog state and evaluate against it without any lock held, while
//! the single writer prepares a fresh copy-on-write state and publishes
//! it atomically. [`SnapshotCell`] is that publication point — a
//! versioned `Arc` slot whose **epoch** counts successful publications,
//! so every state a reader can ever observe is exactly the state after
//! some serial prefix of the write history (the parity invariant the
//! concurrent-session tests assert byte-for-byte).
//!
//! The cell is deliberately tiny: readers pay one `RwLock` read
//! acquisition plus one `Arc` clone (`engine.snapshot_clone` counts
//! them), writers pay one write acquisition; nothing is ever mutated in
//! place, so a reader holding a snapshot can keep using it for as long
//! as it likes while later epochs are published past it.

use std::sync::{Arc, RwLock};

/// A published snapshot: the epoch it was published at plus the shared
/// immutable state.
pub struct Snapshot<T> {
    epoch: u64,
    state: Arc<T>,
}

impl<T> Snapshot<T> {
    /// The epoch this snapshot was published at (number of publications
    /// that happened-before it; the initial state is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared state.
    pub fn state(&self) -> &Arc<T> {
        &self.state
    }

    /// Consume the snapshot, keeping only the shared state.
    pub fn into_state(self) -> Arc<T> {
        self.state
    }
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Snapshot<T> {
        Snapshot {
            epoch: self.epoch,
            state: self.state.clone(),
        }
    }
}

impl<T> std::ops::Deref for Snapshot<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.state
    }
}

/// An epoch-versioned `Arc` slot: many concurrent readers, one
/// publication at a time.
pub struct SnapshotCell<T> {
    slot: RwLock<Snapshot<T>>,
}

fn clone_counter() -> &'static hrdm_obs::metrics::Counter {
    static C: std::sync::OnceLock<hrdm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| hrdm_obs::metrics::counter("engine.snapshot_clone"))
}

fn epoch_gauge() -> &'static hrdm_obs::metrics::Gauge {
    static G: std::sync::OnceLock<hrdm_obs::metrics::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| hrdm_obs::metrics::gauge("engine.epoch"))
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> SnapshotCell<T> {
        SnapshotCell::new(T::default())
    }
}

impl<T> SnapshotCell<T> {
    /// A cell holding `initial` at epoch 0.
    pub fn new(initial: T) -> SnapshotCell<T> {
        SnapshotCell {
            slot: RwLock::new(Snapshot {
                epoch: 0,
                state: Arc::new(initial),
            }),
        }
    }

    /// Grab the current snapshot (epoch + shared state). Costs one
    /// `Arc` clone; the returned snapshot stays valid forever, it just
    /// stops being current once a later epoch is published.
    pub fn load(&self) -> Snapshot<T> {
        let snap = self.slot.read().expect("snapshot slot poisoned").clone();
        clone_counter().incr();
        snap
    }

    /// The current epoch without cloning the state.
    pub fn epoch(&self) -> u64 {
        self.slot.read().expect("snapshot slot poisoned").epoch
    }

    /// Publish `state` as the next epoch and return that epoch.
    ///
    /// Publication is the *only* way the observable state advances, so
    /// callers that serialize their publications (the engine's writer
    /// lock) get a linear history: epoch *n* is exactly the state after
    /// the first *n* writes.
    pub fn publish(&self, state: Arc<T>) -> u64 {
        let mut slot = self.slot.write().expect("snapshot slot poisoned");
        slot.epoch += 1;
        slot.state = state;
        epoch_gauge().set(slot.epoch);
        slot.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_count_publications() {
        let cell = SnapshotCell::new(vec![1]);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load().state().as_slice(), [1]);
        assert_eq!(cell.publish(Arc::new(vec![1, 2])), 1);
        assert_eq!(cell.publish(Arc::new(vec![1, 2, 3])), 2);
        assert_eq!(cell.epoch(), 2);
        let snap = cell.load();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn readers_keep_their_snapshot_across_publications() {
        let cell = SnapshotCell::new(String::from("v0"));
        let old = cell.load();
        cell.publish(Arc::new(String::from("v1")));
        assert_eq!(*old.state().as_str(), *"v0", "old snapshot is immutable");
        assert_eq!(*cell.load().state().as_str(), *"v1");
        assert_eq!(old.clone().into_state().as_str(), "v0");
    }

    #[test]
    fn concurrent_readers_see_only_published_prefixes() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        let snap = cell.load();
                        // Invariant: the value IS the epoch it was
                        // published at — readers can never observe a
                        // half-written state.
                        assert_eq!(*snap.state().as_ref(), snap.epoch());
                    }
                });
            }
            s.spawn(|| {
                for i in 1..=100u64 {
                    cell.publish(Arc::new(i));
                }
            });
        });
        assert_eq!(cell.epoch(), 100);
    }
}
